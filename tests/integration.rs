//! Cross-crate integration tests: topology -> schedule -> simulator ->
//! measurement, allocator + placement -> simulation, and consistency with
//! the α-β models.

use hammingmesh::hxcollect::model::AlphaBeta;
use hammingmesh::hxcollect::simapp::ScheduleApp;
use hammingmesh::hxcollect::{bidirectional_ring_allreduce, disjoint_rings_allreduce};
use hammingmesh::hxmodels::schedule::{build_iteration, ScaledConfig};
use hammingmesh::hxmodels::DnnWorkload;
use hammingmesh::prelude::*;

/// The Fig. 1 tradeoff, end to end on the simulator: HxMesh keeps most of
/// the allreduce bandwidth of a fat tree while sacrificing alltoall.
#[test]
fn fig1_tradeoff_end_to_end() {
    let hx = HxMeshParams::square(2, 4).build(); // 64 accels
    let ft = FatTreeParams::scaled_nonblocking(64, 16).build();

    let ar_hx = experiments::allreduce_bandwidth(&hx, AllreduceAlgo::DisjointRings, 32 << 20);
    let ar_ft = experiments::allreduce_bandwidth(&ft, AllreduceAlgo::DisjointRings, 32 << 20);
    assert!(ar_hx.clean && ar_ft.clean);
    // HxMesh holds at least 60% of the fat tree's allreduce efficiency.
    assert!(
        ar_hx.bw_fraction > 0.6 * ar_ft.bw_fraction,
        "hx {:.2} vs ft {:.2}",
        ar_hx.bw_fraction,
        ar_ft.bw_fraction
    );

    let a2a_hx = experiments::alltoall_bandwidth(&hx, 64 << 10, 2);
    let a2a_ft = experiments::alltoall_bandwidth(&ft, 64 << 10, 2);
    assert!(a2a_hx.clean && a2a_ft.clean);
    // ... while alltoall drops towards the 1/2a cut bound.
    assert!(
        a2a_hx.bw_fraction < 0.6 * a2a_ft.bw_fraction,
        "hx {:.2} vs ft {:.2}",
        a2a_hx.bw_fraction,
        a2a_ft.bw_fraction
    );
}

/// Simulated ring allreduce must not beat the α-β lower bound, and should
/// be within a small factor of the model prediction at bandwidth-bound
/// sizes.
#[test]
fn simulation_respects_alpha_beta_bounds() {
    let net = HxMeshParams::square(2, 2).build(); // 16 accels
    let p = net.num_ranks();
    let elems = (16usize << 20) / 4;
    let s_bytes = (elems * 4) as u64;

    let sched = bidirectional_ring_allreduce(p, elems);
    let mut app = ScheduleApp::new(&sched);
    let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
    assert!(stats.clean());

    let model = AlphaBeta {
        alpha_ps: 0.0,
        beta_ps_per_byte: 20.0,
    };
    let bound = model.bidirectional_ring_allreduce(p, s_bytes);
    assert!(
        (stats.finish_ps as f64) > 0.95 * bound,
        "simulation {} ps beat the zero-latency bound {} ps",
        stats.finish_ps,
        bound
    );
    assert!(
        (stats.finish_ps as f64) < 3.0 * bound,
        "simulation {} ps is unreasonably far from the bound {} ps",
        stats.finish_ps,
        bound
    );
}

/// Allocate a job on a mesh with failures, map a collective onto the
/// placement's accelerators, and run it: the virtual sub-HxMesh must
/// behave like a dense mesh (§III-E "transparent to the application").
#[test]
fn virtual_submesh_placement_runs_collectives() {
    // Physical 4x4 Hx2Mesh; fail one board, allocate 2x4 job.
    let params = HxMeshParams::square(2, 4);
    let net = params.build();
    let mut mesh = BoardMesh::new(4, 4);
    mesh.fail_board(1, 2);
    let placement = mesh.allocate(7, 2, 4, Heuristics::all()).expect("2x4 fits");
    assert_eq!(placement.boards(), 8);

    // Map the job's logical accelerator grid (4 x 8 accels) onto the
    // placement's boards, row-major within each board.
    let mut mapping = Vec::new();
    for &br in &placement.rows {
        for r in 0..2 {
            for &bc in &placement.cols {
                for c in 0..2 {
                    let co = hammingmesh::hxnet::hammingmesh::HxCoord {
                        bi: br as u16,
                        bj: bc as u16,
                        r,
                        c,
                    };
                    mapping.push(params.rank_of(co) as u32);
                }
            }
        }
    }
    assert_eq!(mapping.len(), 32);

    // Disjoint-rings allreduce on the logical 4x8 grid.
    let (sched, ncycles) = disjoint_rings_allreduce(8, 4, 32 * 1024);
    assert_eq!(ncycles, 2);
    let mut app = ScheduleApp::with_mapping(&sched, mapping);
    let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
    assert!(stats.clean(), "{stats:?}");
    assert!(app.is_done());
}

/// A full scaled DNN iteration on every Table II topology completes and
/// the torus is slowest for GPT-3 (the §V-B5 headline).
#[test]
fn scaled_gpt3_shape_across_topologies() {
    let mut w = DnnWorkload::gpt3();
    // Shrink compute so communication dominates at this scale; otherwise
    // every topology ties at the compute time and the shape is invisible.
    w.compute_ps /= 100;
    let mut cfg = ScaledConfig::fit(&w, 16);
    cfg.bytes_scale = 0.02;
    let sched = build_iteration(&w, &cfg);

    let mut times = std::collections::BTreeMap::new();
    for choice in [
        TopologyChoice::FatTree,
        TopologyChoice::Hx2Mesh,
        TopologyChoice::Torus,
    ] {
        let net = choice.build_scaled(16);
        let mut app = ScheduleApp::new(&sched);
        let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{}: {stats:?}", choice.name());
        times.insert(choice.name(), stats.finish_ps);
    }
    // At 16 ranks a 4x4 torus has diameter 4 and four ports per endpoint,
    // so it is legitimately competitive; the paper's 2x torus penalty for
    // GPT-3 is a *scale* effect (diameter 32-128 across 96 pipeline
    // stages) covered by hxmodels' analytic-ordering test. Here we check
    // the simulations complete and stay within sane bounds of each other.
    let ft = times["nonblocking fat tree"] as f64;
    let torus = times["2D torus"] as f64;
    let hx2 = times["Hx2Mesh"] as f64;
    for (name, t) in [("torus", torus), ("hx2", hx2)] {
        assert!(
            t > 0.2 * ft && t < 5.0 * ft,
            "{name} time {t} wildly off the fat tree's {ft}"
        );
    }
}

/// Cost model consistency: graph-derived inventories are within the
/// packing differences documented in DESIGN.md of the closed forms.
#[test]
fn cost_model_graph_consistency() {
    use hammingmesh::hxcost::{table2_entries, Inventory};
    let entries = table2_entries(ClusterSize::Small);
    let hx2 = HxMeshParams::small_hx2().build();
    let inv = Inventory::from_network(&hx2, 4);
    let paper = &entries[5].inventory;
    assert_eq!(inv.dac_cables, paper.dac_cables);
    assert_eq!(inv.aoc_cables, paper.aoc_cables);
    // Switch counts differ only by line packing (64 one-per-line vs the
    // paper's 32 two-lines-per-switch), never in cables.
    assert!(inv.switches >= paper.switches);
}

/// Determinism: the same seed yields identical simulations end to end.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let net = HxMeshParams::square(2, 2).build();
        let m = experiments::allreduce_bandwidth(&net, AllreduceAlgo::Torus2D, 1 << 20);
        (m.time_ps, m.bw_fraction.to_bits())
    };
    assert_eq!(run(), run());
}
