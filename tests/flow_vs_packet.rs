//! Cross-validation of the two simulation backends: the flow-level fluid
//! engine must reproduce the packet engine's completion times within a
//! documented tolerance band on small alltoall / allreduce / permutation
//! scenarios, so that figure sweeps run on the fast path stay faithful to
//! the packet-level ground truth.
//!
//! ## Tolerance bands (flow time / packet time)
//!
//! | scenario class                         | band          |
//! |----------------------------------------|---------------|
//! | single transfers, large-message alltoall | [0.90, 1.25] |
//! | small-message alltoall (latency regime) | [0.65, 1.60]  |
//! | allreduce schedules (rings / torus)     | [0.70, 1.45]  |
//! | permutation mean receive bandwidth      | [0.80, 1.25]  |
//!
//! The widest band covers the latency-dominated small-message regime,
//! where the fluid model charges path latency once per message instead of
//! overlapping it per packet, and congested tori, where per-packet
//! adaptivity beats fixed fluid routes. Large-message scenarios — the
//! regime the flow engine exists for — agree within a few percent (see
//! BENCH_sim.json). These bands are asserted here and documented in
//! README.md; tighten them only together.
//!
//! ## Known fidelity weak spots (named band pins)
//!
//! Two scenario classes sit persistently at the optimistic edge of the
//! fluid model, where the packet engine's per-port NIC window throttles
//! in ways a fluid rate cannot express. Each is pinned by a named test
//! with a band re-centred on its measured ratio, so a solver change that
//! silently *worsens* (or accidentally "fixes") them trips CI:
//!
//! | weak spot                                       | measured | band         |
//! |-------------------------------------------------|----------|--------------|
//! | BidirRing allreduce, chunks near NIC port window | 1.23–1.26 | [1.05, 1.45] |
//! | congested small-message torus alltoall (win 4)   | 1.50–1.75 | [1.30, 1.95] |
//!
//! ## Tolerance bands under fault injection (failed cables)
//!
//! With cables failed, both engines route over the same failure-aware
//! candidate sets (`hxnet::route::FailoverTable`), so the agreement story
//! is unchanged in kind; the bands below are the healthy-class bands
//! re-centred on measured ratios (seeded, deterministic failure sets),
//! widened where failures push traffic into the latency regime:
//!
//! | failure scenario (alltoall)                  | measured | band         |
//! |----------------------------------------------|----------|--------------|
//! | fat tree, 1 MiB, 2 dead inter-switch cables  | 1.13     | [0.90, 1.40] |
//! | 2D torus, 32 KiB, 2 dead inter-board cables  | 1.32     | [0.80, 1.60] |
//! | Hx2Mesh, 256 KiB, 2 dead line cables         | 1.27     | [0.90, 1.55] |
//! | Dragonfly, 256 KiB, 2 dead cables            | 1.48     | [0.95, 1.80] |
//! | 2D HyperX, 64 KiB, 3 dead cables             | 0.84     | [0.65, 1.25] |
//!
//! The Dragonfly case sits high for the same reason its healthy
//! small-message case does: minimal-path Valiant suppression under load
//! is per-packet in the packet engine and per-message in the fluid model.

use hammingmesh::hxsim::apps::MessageBlast;
use hammingmesh::hxsim::{simulate, EngineKind, SimConfig};
use hammingmesh::prelude::*;
use rayon::prelude::*;

/// Assert `flow/packet` lies inside `band` for a scenario's time.
fn assert_ratio(label: &str, packet_ps: u64, flow_ps: u64, band: (f64, f64)) {
    let ratio = flow_ps as f64 / packet_ps as f64;
    assert!(
        ratio >= band.0 && ratio <= band.1,
        "{label}: flow {flow_ps} ps vs packet {packet_ps} ps, ratio {ratio:.3} outside \
         [{:.2}, {:.2}]",
        band.0,
        band.1
    );
}

#[test]
fn single_large_transfer_agrees() {
    let net = HxMeshParams::square(2, 2).build();
    let times: Vec<u64> = EngineKind::all()
        .into_iter()
        .map(|kind| {
            let mut app = MessageBlast::pairs(vec![(0, 15, 8 << 20)]);
            let stats = simulate(&net, SimConfig::default(), kind, &mut app);
            assert!(stats.clean(), "{kind}: {stats:?}");
            stats.finish_ps
        })
        .collect();
    assert_ratio("8MiB single transfer", times[0], times[1], (0.90, 1.25));
}

#[test]
fn alltoall_large_messages_agree() {
    // 1 MiB pairs — the bandwidth-dominated regime the flow engine is
    // built for; 16 ranks keeps the packet side affordable in CI.
    for (name, net) in [
        ("Hx2Mesh", HxMeshParams::square(2, 2).build()),
        (
            "fat tree",
            FatTreeParams::scaled_nonblocking(16, 16).build(),
        ),
    ] {
        let p = experiments::alltoall_bandwidth_on(&net, 1 << 20, 2, EngineKind::Packet);
        let f = experiments::alltoall_bandwidth_on(&net, 1 << 20, 2, EngineKind::Flow);
        assert!(p.clean && f.clean);
        assert_ratio(
            &format!("alltoall 1MiB on {name}"),
            p.time_ps,
            f.time_ps,
            (0.90, 1.25),
        );
    }
}

#[test]
fn alltoall_small_messages_agree_loosely() {
    for (name, net) in [
        ("Hx2Mesh", HxMeshParams::square(2, 2).build()),
        (
            "torus",
            TorusParams {
                cols: 4,
                rows: 4,
                board: 2,
            }
            .build(),
        ),
    ] {
        let p = experiments::alltoall_bandwidth_on(&net, 32 << 10, 2, EngineKind::Packet);
        let f = experiments::alltoall_bandwidth_on(&net, 32 << 10, 2, EngineKind::Flow);
        assert!(p.clean && f.clean);
        assert_ratio(
            &format!("alltoall 32KiB on {name}"),
            p.time_ps,
            f.time_ps,
            (0.65, 1.60),
        );
    }
}

#[test]
fn allreduce_schedules_agree() {
    // Independent (algorithm, engine) cells: run the matrix on the
    // thread pool (every simulation is deterministic, so the assertions
    // are thread-count-independent).
    let net = HxMeshParams::square(2, 2).build();
    [
        AllreduceAlgo::Ring,
        AllreduceAlgo::DisjointRings,
        AllreduceAlgo::Torus2D,
    ]
    .into_par_iter()
    .for_each(|algo| {
        let p = experiments::allreduce_bandwidth_on(&net, algo, 4 << 20, EngineKind::Packet);
        let f = experiments::allreduce_bandwidth_on(&net, algo, 4 << 20, EngineKind::Flow);
        assert!(p.clean && f.clean, "{algo:?}");
        assert_ratio(
            &format!("allreduce {algo:?} 4MiB"),
            p.time_ps,
            f.time_ps,
            (0.70, 1.45),
        );
    });
}

#[test]
fn permutation_mean_bandwidth_agrees() {
    let net = HxMeshParams::square(2, 2).build();
    let mean = |engine| {
        let bw = experiments::permutation_bandwidths_on(&net, 256 << 10, 2, 42, engine);
        bw.iter().sum::<f64>() / bw.len() as f64
    };
    let p = mean(EngineKind::Packet);
    let f = mean(EngineKind::Flow);
    let ratio = p / f;
    assert!(
        (0.80..=1.25).contains(&ratio),
        "permutation mean bw: packet {p:.3} vs flow {f:.3}, ratio {ratio:.3}"
    );
}

#[test]
fn engines_deliver_identical_message_sets() {
    let net = HxMeshParams::square(2, 2).build();
    let mut delivered = Vec::new();
    for kind in EngineKind::all() {
        let mut app = Alltoall::new(net.num_ranks(), 64 << 10, 2);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean());
        delivered.push((
            stats.messages_sent,
            stats.messages_delivered,
            stats.bytes_delivered,
        ));
    }
    assert_eq!(delivered[0], delivered[1]);
}

use hammingmesh::hxsim::apps::Alltoall;

/// The flow engine's raison d'être: at the paper's Fig. 11 message sizes
/// it must beat the packet engine by a wide margin on wall-clock time.
/// The CI perf-smoke job records the full numbers in BENCH_sim.json; this
/// is a cheap in-tree guard at a smaller scale (16 ranks, so the packet
/// side stays fast even under the debug profile).
#[test]
fn flow_engine_is_much_faster_at_bandwidth_scale() {
    let net = HxMeshParams::square(2, 2).build();
    let wall = |kind| {
        #[allow(clippy::disallowed_methods)] // coarse speedup report, not sim state
        let t0 = std::time::Instant::now();
        let m = experiments::alltoall_bandwidth_on(&net, 2 << 20, 2, kind);
        assert!(m.clean);
        t0.elapsed().as_secs_f64()
    };
    let packet = wall(EngineKind::Packet);
    let flow = wall(EngineKind::Flow);
    assert!(
        flow * 5.0 < packet,
        "flow {flow:.3}s should be >=5x faster than packet {packet:.3}s at 2MiB alltoall"
    );
}

// ---------------------------------------------------------------------------
// Named band pins for the two known fidelity weak spots (module header).
// ---------------------------------------------------------------------------

/// Weak spot 1: the bidirectional-ring allreduce at chunk sizes around
/// the packet engine's per-port NIC window (`nic_port_window_bytes`,
/// 4 packets = 16 KiB). Each ring step sends one chunk per direction;
/// when chunks are in the window's neighbourhood, the packet engine
/// stalls injection per port while the fluid model streams both
/// directions at the full max-min rate, so the flow engine runs *slow*
/// relative to packet by a steady ~1.23–1.26x (the stalls let the packet
/// side pipeline steps that the fluid model serializes). The band floor
/// above 1 is deliberate: if a solver change drags the ratio under 1.05
/// the model got optimistic somewhere else, and that is also a regression.
#[test]
fn bidir_ring_chunks_near_nic_port_window_band_pin() {
    let net = HxMeshParams::square(2, 2).build();
    for bytes in [64u64 << 10, 256 << 10] {
        let p = experiments::allreduce_bandwidth_on(
            &net,
            AllreduceAlgo::BidirRing,
            bytes,
            EngineKind::Packet,
        );
        let f = experiments::allreduce_bandwidth_on(
            &net,
            AllreduceAlgo::BidirRing,
            bytes,
            EngineKind::Flow,
        );
        assert!(p.clean && f.clean);
        assert_ratio(
            &format!("bidir ring allreduce {} B (chunk ~ NIC port window)", bytes),
            p.time_ps,
            f.time_ps,
            (1.05, 1.45),
        );
    }
}

/// Weak spot 2: congested small-message alltoall on a 2D torus with a
/// deep injection window. Four shifts in flight per rank pile latency-
/// regime messages onto the torus' long average paths; the packet
/// engine's per-packet adaptivity drains the hot spots while the fluid
/// model holds fixed routes at their max-min share, so flow runs
/// ~1.50–1.75x slower than packet — the widest steady divergence in the
/// portfolio. Pinned so the gap can only move on purpose.
#[test]
fn congested_small_message_torus_band_pin() {
    let net = TorusParams {
        cols: 4,
        rows: 4,
        board: 2,
    }
    .build();
    for (bytes, window) in [(4u64 << 10, 2u32), (8 << 10, 4)] {
        let p = experiments::alltoall_bandwidth_on(&net, bytes, window, EngineKind::Packet);
        let f = experiments::alltoall_bandwidth_on(&net, bytes, window, EngineKind::Flow);
        assert!(p.clean && f.clean);
        assert_ratio(
            &format!("congested torus alltoall {bytes} B window {window}"),
            p.time_ps,
            f.time_ps,
            (1.30, 1.95),
        );
    }
}

// ---------------------------------------------------------------------------
// Cross-validation under fault injection (see the module-header table).
// ---------------------------------------------------------------------------

use hammingmesh::hxnet::Network;

#[test]
fn alltoall_with_failed_cables_agrees() {
    /// (label, network, failed cables, bytes per pair, tolerance band).
    type FaultScenario = (&'static str, Network, usize, u64, (f64, f64));
    let scenarios: [FaultScenario; 5] = [
        (
            "fat tree 1MiB, 2 failed",
            FatTreeParams::scaled_nonblocking(16, 8).build(),
            2,
            1 << 20,
            (0.90, 1.40),
        ),
        (
            "torus 32KiB, 2 failed",
            TorusParams {
                cols: 4,
                rows: 4,
                board: 2,
            }
            .build(),
            2,
            32 << 10,
            (0.80, 1.60),
        ),
        (
            "Hx2Mesh 256KiB, 2 failed",
            HxMeshParams::square(2, 2).build(),
            2,
            256 << 10,
            (0.90, 1.55),
        ),
        (
            "Dragonfly 256KiB, 2 failed",
            DragonflyParams {
                a: 4,
                p: 2,
                h: 2,
                groups: 4,
            }
            .build(),
            2,
            256 << 10,
            (0.95, 1.80),
        ),
        (
            "HyperX 64KiB, 3 failed",
            HyperXParams {
                x: 4,
                y: 4,
                radix: 64,
            }
            .build(),
            3,
            64 << 10,
            (0.65, 1.25),
        ),
    ];
    // The five failure scenarios are independent; run them on the thread
    // pool (networks move into the workers, each simulation is
    // deterministic). A failed assertion in any worker panics the test
    // via the pool's panic propagation.
    scenarios
        .into_par_iter()
        .for_each(|(label, mut net, failures, bytes, band)| {
            assert_eq!(net.fail_spread_cables(failures), failures);
            let p = experiments::alltoall_bandwidth_on(&net, bytes, 2, EngineKind::Packet);
            let f = experiments::alltoall_bandwidth_on(&net, bytes, 2, EngineKind::Flow);
            assert!(p.clean && f.clean, "{label}: unclean run under failures");
            assert_ratio(label, p.time_ps, f.time_ps, band);
        });
}

/// Both engines must agree exactly on *what* is delivered under failures
/// (same message and byte counts), not just on how long it takes.
#[test]
fn engines_deliver_identical_message_sets_under_failures() {
    let mut net = HxMeshParams::square(2, 2).build();
    assert_eq!(net.fail_spread_cables(2), 2);
    let mut delivered = Vec::new();
    for kind in EngineKind::all() {
        let mut app = Alltoall::new(net.num_ranks(), 64 << 10, 2);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        delivered.push((
            stats.messages_sent,
            stats.messages_delivered,
            stats.bytes_delivered,
        ));
    }
    assert_eq!(delivered[0], delivered[1]);
}
