//! Cross-validation of the two simulation backends: the flow-level fluid
//! engine must reproduce the packet engine's completion times within a
//! documented tolerance band on small alltoall / allreduce / permutation
//! scenarios, so that figure sweeps run on the fast path stay faithful to
//! the packet-level ground truth.
//!
//! ## Tolerance bands (flow time / packet time)
//!
//! | scenario class                         | band          |
//! |----------------------------------------|---------------|
//! | single transfers, large-message alltoall | [0.90, 1.25] |
//! | small-message alltoall (latency regime) | [0.65, 1.60]  |
//! | allreduce schedules (rings / torus)     | [0.70, 1.45]  |
//! | permutation mean receive bandwidth      | [0.80, 1.25]  |
//!
//! The widest band covers the latency-dominated small-message regime,
//! where the fluid model charges path latency once per message instead of
//! overlapping it per packet, and congested tori, where per-packet
//! adaptivity beats fixed fluid routes. Large-message scenarios — the
//! regime the flow engine exists for — agree within a few percent (see
//! BENCH_sim.json). These bands are asserted here and documented in
//! README.md; tighten them only together.

use hammingmesh::hxsim::apps::MessageBlast;
use hammingmesh::hxsim::{simulate, EngineKind, SimConfig};
use hammingmesh::prelude::*;

/// Assert `flow/packet` lies inside `band` for a scenario's time.
fn assert_ratio(label: &str, packet_ps: u64, flow_ps: u64, band: (f64, f64)) {
    let ratio = flow_ps as f64 / packet_ps as f64;
    assert!(
        ratio >= band.0 && ratio <= band.1,
        "{label}: flow {flow_ps} ps vs packet {packet_ps} ps, ratio {ratio:.3} outside \
         [{:.2}, {:.2}]",
        band.0,
        band.1
    );
}

#[test]
fn single_large_transfer_agrees() {
    let net = HxMeshParams::square(2, 2).build();
    let times: Vec<u64> = EngineKind::all()
        .into_iter()
        .map(|kind| {
            let mut app = MessageBlast::pairs(vec![(0, 15, 8 << 20)]);
            let stats = simulate(&net, SimConfig::default(), kind, &mut app);
            assert!(stats.clean(), "{kind}: {stats:?}");
            stats.finish_ps
        })
        .collect();
    assert_ratio("8MiB single transfer", times[0], times[1], (0.90, 1.25));
}

#[test]
fn alltoall_large_messages_agree() {
    // 1 MiB pairs — the bandwidth-dominated regime the flow engine is
    // built for; 16 ranks keeps the packet side affordable in CI.
    for (name, net) in [
        ("Hx2Mesh", HxMeshParams::square(2, 2).build()),
        (
            "fat tree",
            FatTreeParams::scaled_nonblocking(16, 16).build(),
        ),
    ] {
        let p = experiments::alltoall_bandwidth_on(&net, 1 << 20, 2, EngineKind::Packet);
        let f = experiments::alltoall_bandwidth_on(&net, 1 << 20, 2, EngineKind::Flow);
        assert!(p.clean && f.clean);
        assert_ratio(
            &format!("alltoall 1MiB on {name}"),
            p.time_ps,
            f.time_ps,
            (0.90, 1.25),
        );
    }
}

#[test]
fn alltoall_small_messages_agree_loosely() {
    for (name, net) in [
        ("Hx2Mesh", HxMeshParams::square(2, 2).build()),
        (
            "torus",
            TorusParams {
                cols: 4,
                rows: 4,
                board: 2,
            }
            .build(),
        ),
    ] {
        let p = experiments::alltoall_bandwidth_on(&net, 32 << 10, 2, EngineKind::Packet);
        let f = experiments::alltoall_bandwidth_on(&net, 32 << 10, 2, EngineKind::Flow);
        assert!(p.clean && f.clean);
        assert_ratio(
            &format!("alltoall 32KiB on {name}"),
            p.time_ps,
            f.time_ps,
            (0.65, 1.60),
        );
    }
}

#[test]
fn allreduce_schedules_agree() {
    let net = HxMeshParams::square(2, 2).build();
    for algo in [
        AllreduceAlgo::Ring,
        AllreduceAlgo::DisjointRings,
        AllreduceAlgo::Torus2D,
    ] {
        let p = experiments::allreduce_bandwidth_on(&net, algo, 4 << 20, EngineKind::Packet);
        let f = experiments::allreduce_bandwidth_on(&net, algo, 4 << 20, EngineKind::Flow);
        assert!(p.clean && f.clean, "{algo:?}");
        assert_ratio(
            &format!("allreduce {algo:?} 4MiB"),
            p.time_ps,
            f.time_ps,
            (0.70, 1.45),
        );
    }
}

#[test]
fn permutation_mean_bandwidth_agrees() {
    let net = HxMeshParams::square(2, 2).build();
    let mean = |engine| {
        let bw = experiments::permutation_bandwidths_on(&net, 256 << 10, 2, 42, engine);
        bw.iter().sum::<f64>() / bw.len() as f64
    };
    let p = mean(EngineKind::Packet);
    let f = mean(EngineKind::Flow);
    let ratio = p / f;
    assert!(
        (0.80..=1.25).contains(&ratio),
        "permutation mean bw: packet {p:.3} vs flow {f:.3}, ratio {ratio:.3}"
    );
}

#[test]
fn engines_deliver_identical_message_sets() {
    let net = HxMeshParams::square(2, 2).build();
    let mut delivered = Vec::new();
    for kind in EngineKind::all() {
        let mut app = Alltoall::new(net.num_ranks(), 64 << 10, 2);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean());
        delivered.push((
            stats.messages_sent,
            stats.messages_delivered,
            stats.bytes_delivered,
        ));
    }
    assert_eq!(delivered[0], delivered[1]);
}

use hammingmesh::hxsim::apps::Alltoall;

/// The flow engine's raison d'être: at the paper's Fig. 11 message sizes
/// it must beat the packet engine by a wide margin on wall-clock time.
/// The CI perf-smoke job records the full numbers in BENCH_sim.json; this
/// is a cheap in-tree guard at a smaller scale (16 ranks, so the packet
/// side stays fast even under the debug profile).
#[test]
fn flow_engine_is_much_faster_at_bandwidth_scale() {
    let net = HxMeshParams::square(2, 2).build();
    let wall = |kind| {
        let t0 = std::time::Instant::now();
        let m = experiments::alltoall_bandwidth_on(&net, 2 << 20, 2, kind);
        assert!(m.clean);
        t0.elapsed().as_secs_f64()
    };
    let packet = wall(EngineKind::Packet);
    let flow = wall(EngineKind::Flow);
    assert!(
        flow * 5.0 < packet,
        "flow {flow:.3}s should be >=5x faster than packet {packet:.3}s at 2MiB alltoall"
    );
}
