//! Differential proof that `RateMode::Incremental` is observationally
//! identical to `RateMode::Full` (proptest).
//!
//! Random (topology, traffic pattern, message size class, connectivity-
//! preserving failure set, replica thread count) scenarios run under both
//! solver modes. Everything an application or a figure sweep can observe
//! must match **bitwise**: completion times, per-epoch max-min rates
//! (`SimStats::rate_trace`, recorded on every dirty epoch in either
//! mode), and all delivery counters.
//!
//! The four solver-effort counters (`rate_recomputes*`,
//! `rate_touched_flows`) are deliberately *excluded* from the bitwise
//! comparison: they measure how much work the solver did, not what it
//! computed, and the incremental solver is allowed to skip epochs whose
//! only seeds went stale (a seeded flow that drained in the same epoch).
//! For those the suite instead pins the direction of the O(affected)
//! claim: incremental effort never exceeds full effort.

use hammingmesh::hxnet::route::ShortestPathRouter;
use hammingmesh::hxnet::Network;
use hammingmesh::hxsim::apps::{Alltoall, MessageBlast, Permutation, UniformRandom};
use hammingmesh::hxsim::{Application, FlowEngine, RateMode, SimConfig, SimStats};
use hammingmesh::prelude::*;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// The topology x router combinations under test — the same portfolio the
/// fault-model proptests cover, small enough to build per case.
fn net_for(idx: usize) -> Network {
    match idx {
        0 => FatTreeParams::scaled_nonblocking(16, 8).build(),
        1 => DragonflyParams {
            a: 4,
            p: 2,
            h: 2,
            groups: 4,
        }
        .build(),
        2 => HyperXParams {
            x: 4,
            y: 4,
            radix: 64,
        }
        .build(),
        3 => TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build(),
        4 => HxMeshParams::square(2, 3).build(),
        5 | 6 => {
            let mut net = if idx == 5 {
                FatTreeParams::scaled_nonblocking(16, 8).build()
            } else {
                TorusParams {
                    cols: 4,
                    rows: 4,
                    board: 2,
                }
                .build()
            };
            net.router = Box::new(ShortestPathRouter::build(&net.topo, &net.endpoints));
            net
        }
        _ => unreachable!("net_for index out of range"),
    }
}

/// One fully-specified random scenario: everything needed to rebuild the
/// identical simulation any number of times (per mode, per replica).
#[derive(Clone, Copy, Debug)]
struct Scenario {
    net_idx: usize,
    kind: usize,
    bytes: u64,
    failures: usize,
    seed: u64,
}

impl Scenario {
    fn build_net(&self) -> Network {
        let mut net = net_for(self.net_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        net.fail_random_cables(self.failures, &mut rng);
        net
    }

    fn build_app(&self) -> Box<dyn Application> {
        let p = net_for(self.net_idx).num_ranks();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed ^ 0xA11CE);
        match self.kind {
            0 => {
                let n = 1 + (self.seed as usize % 12);
                let mut pairs = Vec::with_capacity(n);
                while pairs.len() < n {
                    let s = rng.random_range(0..p as u32);
                    let d = rng.random_range(0..p as u32);
                    if s != d {
                        pairs.push((s, d, self.bytes));
                    }
                }
                Box::new(MessageBlast::pairs(pairs))
            }
            1 => {
                let window = 1 + (self.seed % 2) as u32;
                let shifts = 1 + (self.seed % 4) as u32;
                Box::new(Alltoall::with_shifts(p, self.bytes, window, shifts))
            }
            2 => {
                let rounds = 1 + (self.seed % 3) as u32;
                Box::new(Permutation::new(p, self.bytes, rounds, self.seed))
            }
            3 => Box::new(UniformRandom::new(p, self.bytes, 3, self.seed)),
            _ => unreachable!("pattern kind out of range"),
        }
    }

    fn run(&self, mode: RateMode) -> SimStats {
        let net = self.build_net();
        let mut app = self.build_app();
        let cfg = SimConfig {
            rate_mode: mode,
            trace_rates: true,
            max_time_ps: 500_000_000_000,
            ..Default::default()
        };
        FlowEngine::new(&net, cfg).run(app.as_mut())
    }
}

/// Bitwise equality on every observable `SimStats` field; the solver
/// effort counters are pinned directionally instead (see module doc).
fn assert_equiv(full: &SimStats, inc: &SimStats) {
    assert_eq!(full.finish_ps, inc.finish_ps, "completion time diverged");
    assert_eq!(full.events, inc.events);
    assert_eq!(full.messages_sent, inc.messages_sent);
    assert_eq!(full.messages_delivered, inc.messages_delivered);
    assert_eq!(full.bytes_delivered, inc.bytes_delivered);
    assert_eq!(full.packets_forwarded, inc.packets_forwarded);
    assert_eq!(full.undelivered_messages, inc.undelivered_messages);
    assert_eq!(full.timed_out, inc.timed_out);
    assert_eq!(full.total_link_busy_ps, inc.total_link_busy_ps);
    assert_eq!(full.rank_recv_done_ps, inc.rank_recv_done_ps);
    assert_eq!(full.rank_recv_bytes, inc.rank_recv_bytes);
    assert_eq!(full.node_forwarded, inc.node_forwarded);
    assert_eq!(
        full.rate_trace, inc.rate_trace,
        "per-epoch max-min rates diverged"
    );
    // The O(affected) direction: component-scoped fills never do MORE
    // work than global refills.
    assert!(
        inc.rate_touched_flows <= full.rate_touched_flows,
        "incremental touched {} flows, full only {}",
        inc.rate_touched_flows,
        full.rate_touched_flows
    );
    assert!(
        inc.rate_recomputes <= full.rate_recomputes,
        "incremental ran {} fill epochs, full only {}",
        inc.rate_recomputes,
        full.rate_recomputes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline differential property: full and incremental solving
    /// are indistinguishable on any random scenario, and the incremental
    /// run is additionally reproducible across concurrent replicas (the
    /// engine owns all its state, so scheduling cannot leak in).
    #[test]
    fn prop_incremental_matches_full_bitwise(
        net_idx in 0usize..7,
        kind in 0usize..4,
        bytes in prop_oneof![
            64u64..2048,             // latency-bound small messages
            (16u64 << 10)..(64 << 10), // the figures' mid sizes
            (1u64 << 20)..(2 << 20),   // bandwidth-bound MiB class
        ],
        failures in 0usize..5,
        seed in 0u64..10_000,
        threads in 1usize..4,
    ) {
        let sc = Scenario { net_idx, kind, bytes, failures, seed };
        let full = sc.run(RateMode::Full);
        let inc = sc.run(RateMode::Incremental);
        // A universally timed-out suite would verify nothing: scenarios
        // keep endpoints connected, so every run must drain.
        prop_assert!(full.clean(), "{sc:?}: {full:?}");
        prop_assert!(!full.rate_trace.is_empty(), "vacuous trace: {sc:?}");
        assert_equiv(&full, &inc);
        // Replica determinism at the sampled thread count: concurrent
        // incremental runs of the same scenario are bitwise identical.
        let replicas: Vec<SimStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| sc.run(RateMode::Incremental)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for rep in &replicas {
            prop_assert_eq!(rep.finish_ps, inc.finish_ps);
            prop_assert_eq!(&rep.rate_trace, &inc.rate_trace);
        }
    }
}
