//! §IV-A(a) "Job interference": because each board belongs to at most one
//! job and every job's boards share rows/columns pairwise, packets of one
//! job never traverse accelerators of another job's boards. We verify this
//! *on the simulator*, using per-node forwarding counters.

use hammingmesh::hxalloc::{BoardMesh, Heuristics};
use hammingmesh::hxcollect::allreduce::ring_allreduce;
use hammingmesh::hxcollect::simapp::ScheduleApp;
use hammingmesh::hxnet::hammingmesh::{HxCoord, HxMeshParams};
use hammingmesh::prelude::*;

/// Map a placement's boards to simulator ranks, row-major.
fn mapping_for(params: &HxMeshParams, placement: &hammingmesh::hxalloc::Placement) -> Vec<u32> {
    let mut mapping = Vec::new();
    for &br in &placement.rows {
        for r in 0..params.a as u16 {
            for &bc in &placement.cols {
                for c in 0..params.b as u16 {
                    let co = HxCoord {
                        bi: br as u16,
                        bj: bc as u16,
                        r,
                        c,
                    };
                    mapping.push(params.rank_of(co) as u32);
                }
            }
        }
    }
    mapping
}

#[test]
fn job_traffic_never_crosses_foreign_boards() {
    // 4x4 Hx2Mesh; two jobs side by side.
    let params = HxMeshParams::square(2, 4);
    let net = params.build();
    let mut mesh = BoardMesh::new(4, 4);
    let job_a = mesh.allocate(1, 2, 2, Heuristics::none()).unwrap();
    let job_b = mesh.allocate(2, 2, 2, Heuristics::none()).unwrap();
    mesh.check_invariants().unwrap();

    // Run ONLY job A's traffic: a ring allreduce over its 16 accelerators.
    let map_a = mapping_for(&params, &job_a);
    let sched = ring_allreduce(map_a.len(), 4 * map_a.len());
    let mut app = ScheduleApp::with_mapping(&sched, map_a.clone());
    let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
    assert!(stats.clean());

    // No accelerator on job B's boards may have forwarded a single packet.
    let b_boards: std::collections::BTreeSet<(u16, u16)> =
        job_b.cells().map(|(r, c)| (r as u16, c as u16)).collect();
    for rank in 0..net.num_ranks() {
        let co = params.coord_of(rank);
        if b_boards.contains(&(co.bi, co.bj)) {
            let node = net.endpoints[rank];
            assert_eq!(
                stats.node_forwarded[node.idx()],
                0,
                "rank {rank} on job B's board ({},{}) forwarded job A traffic",
                co.bi,
                co.bj
            );
        }
    }
    // Sanity: job A's own accelerators did move traffic.
    let a_total: u64 = map_a
        .iter()
        .map(|&r| stats.node_forwarded[net.endpoints[r as usize].idx()])
        .sum();
    assert!(a_total > 0);
}

/// Even two *interleaved* jobs (non-contiguous virtual sub-meshes sharing
/// rows) stay isolated at the accelerator level.
#[test]
fn interleaved_jobs_stay_isolated() {
    let params = HxMeshParams::square(2, 4);
    let net = params.build();
    let mut mesh = BoardMesh::new(4, 4);
    // Job A takes columns {0, 2} of rows {0, 1}; job B gets {1, 3}.
    // Force the shapes through the greedy: fill columns alternately.
    let a = mesh.allocate(1, 2, 2, Heuristics::none()).unwrap();
    let b = mesh.allocate(2, 2, 2, Heuristics::none()).unwrap();
    assert!(a.cells().all(|cell| !b.cells().any(|c2| c2 == cell)));

    for (job, other) in [(&a, &b), (&b, &a)] {
        let map = mapping_for(&params, job);
        let sched = ring_allreduce(map.len(), 8 * map.len());
        let mut app = ScheduleApp::with_mapping(&sched, map);
        let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean());
        let foreign: std::collections::BTreeSet<(u16, u16)> =
            other.cells().map(|(r, c)| (r as u16, c as u16)).collect();
        for rank in 0..net.num_ranks() {
            let co = params.coord_of(rank);
            if foreign.contains(&(co.bi, co.bj)) {
                assert_eq!(
                    stats.node_forwarded[net.endpoints[rank].idx()],
                    0,
                    "job {} leaked through board ({},{})",
                    job.job,
                    co.bi,
                    co.bj
                );
            }
        }
    }
}

/// Defragmentation (§IV-A-b): after fragmenting the mesh by freeing
/// alternating jobs, a checkpoint/restart shuffle restores the ability to
/// place a large job.
#[test]
fn defragmentation_recovers_large_placements() {
    let mut mesh = BoardMesh::new(8, 8);
    // Fill with 1x2 strips, free every other one -> fragmented free space.
    let mut ids = Vec::new();
    for id in 0..32u32 {
        mesh.allocate(id, 1, 2, Heuristics::none()).unwrap();
        ids.push(id);
    }
    for id in ids.iter().step_by(2) {
        mesh.free(*id);
    }
    assert_eq!(mesh.allocated_boards(), 32);
    // A 4x8 job may or may not fit in the fragmented mesh; after
    // defragmentation it must.
    let before = mesh.allocate(100, 4, 8, Heuristics::none()).is_ok();
    if before {
        mesh.free(100);
    }
    let dropped = mesh.defragment(Heuristics::all());
    assert_eq!(dropped, 0, "defragmentation must not lose jobs");
    mesh.check_invariants().unwrap();
    assert_eq!(
        mesh.allocated_boards(),
        32,
        "defragmentation preserves all boards"
    );
    mesh.allocate(100, 4, 8, Heuristics::none())
        .expect("defragmented mesh must host the 4x8 job");
    mesh.check_invariants().unwrap();
}
