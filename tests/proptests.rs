//! Property-based tests over the core invariants (proptest).

use hammingmesh::hxalloc::{BoardMesh, Heuristics};
use hammingmesh::hxcollect::logical::check_allreduce;
use hammingmesh::hxcollect::rings::{
    disjoint_hamiltonian_cycles, feasible, validate_cycle, validate_disjoint,
};
use hammingmesh::hxcollect::{
    bidirectional_ring_allreduce, binomial_tree_allreduce, ring_allreduce, torus2d_allreduce,
};
use hammingmesh::hxnet::route::ShortestPathRouter;
use hammingmesh::hxnet::{Network, PortId};
use hammingmesh::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ring allreduce is numerically correct for arbitrary sizes.
    #[test]
    fn prop_ring_allreduce_correct(p in 2usize..12, n in 1usize..80) {
        let n = n.max(p);
        check_allreduce(&ring_allreduce(p, n)).unwrap();
    }

    #[test]
    fn prop_bidirectional_ring_correct(p in 2usize..10, n in 2usize..64) {
        let n = n.max(2 * p);
        check_allreduce(&bidirectional_ring_allreduce(p, n)).unwrap();
    }

    #[test]
    fn prop_torus2d_allreduce_correct(r in 2usize..6, c in 2usize..6, k in 1usize..4) {
        let n = r * c * k * 4;
        check_allreduce(&torus2d_allreduce(r, c, n, k % 2 == 0)).unwrap();
    }

    #[test]
    fn prop_binomial_tree_correct(p in 2usize..20, n in 1usize..40) {
        check_allreduce(&binomial_tree_allreduce(p, n)).unwrap();
    }

    /// Whenever Bae et al.'s conditions hold, the construction yields two
    /// valid edge-disjoint Hamiltonian cycles.
    #[test]
    fn prop_disjoint_cycles_valid(c in 2usize..9, k in 1usize..5) {
        let r = c * k;
        prop_assume!(feasible(r, c).is_ok());
        let (g, red) = disjoint_hamiltonian_cycles(r, c).unwrap();
        validate_cycle(&g, r, c).unwrap();
        validate_cycle(&red, r, c).unwrap();
        validate_disjoint(&g, &red).unwrap();
    }

    /// The allocator never double-books boards, never uses failed boards,
    /// and every placement's rows share one column set.
    #[test]
    fn prop_allocator_invariants(
        x in 2usize..12,
        y in 2usize..12,
        jobs in proptest::collection::vec((1usize..5, 1usize..5), 0..24),
        failures in proptest::collection::vec((0usize..12, 0usize..12), 0..6),
    ) {
        let mut mesh = BoardMesh::new(x, y);
        for (r, c) in failures {
            if r < y && c < x && mesh.owner(r, c).is_none() {
                mesh.fail_board(r, c);
            }
        }
        for (id, (u, v)) in jobs.into_iter().enumerate() {
            let _ = mesh.allocate(id as u32, u, v, Heuristics::all());
        }
        mesh.check_invariants().unwrap();
        prop_assert!(mesh.allocated_boards() <= mesh.working_boards());
    }

    /// Freeing everything returns the mesh to empty.
    #[test]
    fn prop_allocate_free_roundtrip(
        x in 2usize..10,
        y in 2usize..10,
        jobs in proptest::collection::vec((1usize..4, 1usize..4), 1..12),
    ) {
        let mut mesh = BoardMesh::new(x, y);
        let mut placed = Vec::new();
        for (id, (u, v)) in jobs.into_iter().enumerate() {
            if mesh.allocate(id as u32, u, v, Heuristics::all()).is_ok() {
                placed.push(id as u32);
            }
        }
        for id in placed {
            mesh.free(id);
        }
        prop_assert_eq!(mesh.allocated_boards(), 0);
        mesh.check_invariants().unwrap();
    }

    /// HxMesh routing reaches every destination within the diameter bound
    /// for random shapes, following random candidates.
    #[test]
    fn prop_hxmesh_routing_terminates(
        a in 1usize..4,
        b in 1usize..4,
        x in 1usize..5,
        y in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(a * b * x * y >= 2);
        prop_assume!(x >= 2 || y >= 2 || a * b >= 2);
        let net = HxMeshParams { a, b, x, y, taper: 0.0, radix: 64 }.build();
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = net.num_ranks();
        for _ in 0..16 {
            let s = rng.random_range(0..n);
            let d = rng.random_range(0..n);
            if s == d { continue; }
            let (mut node, dst) = (net.endpoints[s], net.endpoints[d]);
            let mut vc = 0u8;
            let mut hops = 0u32;
            while node != dst {
                let mut cand = Vec::new();
                net.router.candidates(&net.topo, node, vc, dst, &mut cand);
                prop_assert!(!cand.is_empty(), "stuck at {:?}", node);
                let h = cand[rng.random_range(0..cand.len())];
                prop_assert!(h.vc < net.router.num_vcs());
                node = net.topo.peer(node, h.port).node;
                vc = h.vc;
                hops += 1;
                prop_assert!(hops < 128, "livelock {}->{}", s, d);
            }
        }
    }

    /// Failure-aware routing, for every topology x router combination:
    /// under a random set of up to k failed cables that keeps all
    /// endpoints connected, every route — following *random* candidate
    /// choices — terminates within the hop bound, never traverses a
    /// failed link, and delivers to the destination.
    #[test]
    fn prop_failure_aware_routing_delivers(
        net_idx in 0usize..7,
        k in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let mut net = fault_net(net_idx);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let failed = net.fail_random_cables(k, &mut rng);
        prop_assert!(failed <= k);
        let n = net.num_ranks();
        let max_hops = 4 * net.topo.num_nodes() as u32;
        for _ in 0..12 {
            let s = rng.random_range(0..n);
            let d = rng.random_range(0..n);
            if s == d { continue; }
            let (mut node, dst) = (net.endpoints[s], net.endpoints[d]);
            let mut vc = 0u8;
            let mut hops = 0u32;
            while node != dst {
                let mut cand = Vec::new();
                net.router.candidates(&net.topo, node, vc, dst, &mut cand);
                prop_assert!(
                    !cand.is_empty(),
                    "{}: stuck at {:?} toward rank {} ({} failed cables)",
                    net.name, node, d, failed
                );
                let h = cand[rng.random_range(0..cand.len())];
                prop_assert!(
                    !net.topo.link_failed(node, h.port),
                    "{}: dead link {:?}:{:?} offered", net.name, node, h.port
                );
                node = net.topo.peer(node, h.port).node;
                vc = h.vc;
                hops += 1;
                prop_assert!(hops < max_hops, "{}: livelock {}->{}", net.name, s, d);
            }
        }
    }

    /// Disconnection is reported, not looped on: isolating an endpoint
    /// (all its links failed) makes every router return an empty
    /// candidate set toward it — and from it — instead of a dead link.
    #[test]
    fn prop_disconnected_endpoint_is_unreachable(
        net_idx in 0usize..7,
        victim in 0usize..16,
        probe in 0usize..16,
    ) {
        let mut net = fault_net(net_idx);
        let n = net.num_ranks();
        let (victim, probe) = (victim % n, probe % n);
        prop_assume!(victim != probe);
        let vnode = net.endpoints[victim];
        for p in 0..net.topo.num_ports(vnode) {
            net.topo.fail_link(vnode, PortId(p as u16));
        }
        let pnode = net.endpoints[probe];
        let mut cand = Vec::new();
        net.router.candidates(&net.topo, pnode, 0, vnode, &mut cand);
        prop_assert!(cand.is_empty(), "{}: {:?}", net.name, cand);
        cand.clear();
        net.router.candidates(&net.topo, vnode, 0, pnode, &mut cand);
        prop_assert!(cand.is_empty(), "{}: {:?}", net.name, cand);
        // Repair: routing between the pair works again.
        for p in 0..net.topo.num_ports(vnode) {
            net.topo.restore_link(vnode, PortId(p as u16));
        }
        cand.clear();
        net.router.candidates(&net.topo, pnode, 0, vnode, &mut cand);
        prop_assert!(!cand.is_empty(), "{}: no route after repair", net.name);
    }

    /// Any interleaving of allocate / deallocate / cable-fail / repair
    /// events — the full cluster-lifetime op mix `hxcluster` drives —
    /// leaves both substrates consistent after every single step: no
    /// double-allocated board, allocation never exceeds working boards,
    /// the incremental failed-link count matches the shadow set, and the
    /// failure-set id returns to pristine once everything is repaired.
    #[test]
    fn prop_interleaved_lifecycle_preserves_invariants(
        ops in proptest::collection::vec(
            (0usize..4, 0usize..64, 1usize..4, 1usize..4), 1..50),
    ) {
        use hammingmesh::hxnet::FailureSetId;
        let mut net = HxMeshParams::square(2, 3).build();
        let mut mesh = BoardMesh::new(3, 3);
        let cables = net.topo.cables();
        let mut failed: Vec<(_, _)> = Vec::new();
        // Shadow ledger (job id, boards granted), maintained by the test
        // itself: the mesh's allocation accounting is checked against an
        // independent count, like the failed-cable set below.
        let mut live: Vec<(u32, usize)> = Vec::new();
        let mut next_id = 0u32;
        for (op, sel, u, v) in ops {
            match op {
                0 => {
                    let _ = mesh.allocate(next_id, u, v, Heuristics::all())
                        .map(|p| live.push((next_id, p.boards())));
                    next_id += 1;
                }
                1 => {
                    if !live.is_empty() {
                        mesh.free(live.remove(sel % live.len()).0);
                    }
                }
                2 => {
                    let (n, p) = cables[sel % cables.len()];
                    if net.topo.fail_link(n, p) {
                        if net.endpoints_connected() {
                            failed.push((n, p));
                        } else {
                            net.topo.restore_link(n, p);
                        }
                    }
                }
                3 => {
                    if !failed.is_empty() {
                        let (n, p) = failed.remove(sel % failed.len());
                        prop_assert!(net.topo.restore_link(n, p));
                    }
                }
                _ => unreachable!(),
            }
            mesh.check_invariants().unwrap();
            prop_assert!(mesh.allocated_boards() <= mesh.working_boards());
            let shadow_boards: usize = live.iter().map(|&(_, b)| b).sum();
            prop_assert_eq!(mesh.allocated_boards(), shadow_boards);
            prop_assert_eq!(net.topo.count_failed_links(), failed.len());
            prop_assert_eq!(net.topo.has_failures(), !failed.is_empty());
            prop_assert_eq!(net.topo.failure_set_id().count as usize, failed.len());
            // The surviving failure set was connectivity-preserving at
            // every step, so all endpoints stay mutually reachable.
            prop_assert!(net.endpoints_connected(), "endpoints cut off");
        }
        // Drain everything: both substrates return to pristine.
        for (n, p) in failed {
            net.topo.restore_link(n, p);
        }
        for (id, _) in live {
            mesh.free(id);
        }
        prop_assert_eq!(net.topo.count_failed_links(), 0);
        prop_assert_eq!(net.topo.failure_set_id(), FailureSetId::default());
        prop_assert_eq!(mesh.allocated_boards(), 0);
        mesh.check_invariants().unwrap();
    }

    /// Random traffic on random small HxMeshes always drains (deadlock
    /// freedom of the 3-VC scheme under credit flow control).
    #[test]
    fn prop_hxmesh_simulation_drains(
        board in 1usize..3,
        n in 2usize..4,
        msgs in 2u32..6,
        seed in 0u64..500,
    ) {
        let net = HxMeshParams::square(board, n).build();
        let mut app = hammingmesh::hxsim::apps::UniformRandom::new(
            net.num_ranks(), 16 * 1024, msgs, seed);
        let cfg = SimConfig { max_time_ps: 100_000_000_000, ..Default::default() };
        let stats = Engine::new(&net, cfg).run(&mut app);
        prop_assert!(stats.clean(), "{:?}", stats);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random connectivity-preserving *mid-run* fail/repair schedules on
    /// every fault-model topology always deliver all traffic, on both
    /// engines. Connectivity is validated once with every drawn cable
    /// failed simultaneously — connectivity is monotone in the edge set,
    /// so every epoch the schedule can reach (a subset of the drawn
    /// cables down at a time) is connected too, and the run must end
    /// clean: flows re-route (flow engine) or dropped packets retransmit
    /// (packet engine) until every message lands.
    #[test]
    fn prop_midrun_fail_repair_always_delivers(
        net_idx in 0usize..7,
        engine_idx in 0usize..2,
        k in 1usize..4,
        with_repairs in 0usize..2,
        seed in 0u64..5_000,
    ) {
        use hammingmesh::hxsim::FailureSchedule;
        use rand::{Rng, SeedableRng};
        let mut net = fault_net(net_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cables = net.topo.cables();
        let mut sched = FailureSchedule::new();
        let mut drawn = Vec::new();
        for _ in 0..k {
            let (n, p) = cables[rng.random_range(0..cables.len())];
            if !net.topo.fail_link(n, p) {
                continue; // duplicate draw
            }
            if !net.endpoints_connected() {
                net.topo.restore_link(n, p);
                continue; // load-bearing cable: redraw
            }
            let at = rng.random_range(1_000..4_000_000u64);
            sched = sched.fail(at, n, p);
            if with_repairs == 1 {
                sched = sched.repair(at + rng.random_range(1_000..4_000_000u64), n, p);
            }
            drawn.push((n, p));
        }
        // The run starts on the pristine fabric; the engines advance
        // their private failure epoch from the schedule.
        for (n, p) in drawn {
            net.topo.restore_link(n, p);
        }
        prop_assume!(!sched.is_empty());
        let engine = [EngineKind::Packet, EngineKind::Flow][engine_idx];
        let mut app = hammingmesh::hxsim::apps::Alltoall::new(net.num_ranks(), 2048, 2);
        let cfg = SimConfig {
            max_time_ps: 200_000_000_000,
            failures: sched,
            ..Default::default()
        };
        let stats = simulate(&net, cfg, engine, &mut app);
        prop_assert!(
            stats.clean(),
            "{} / {:?}: mid-run schedule lost traffic: {:?}",
            net.name, engine, stats
        );
    }

    /// A schedule whose events all land beyond the horizon never touches
    /// the run: zero retransmissions, zero re-routes, zero stall time,
    /// zero applied epoch events — on either engine. No failure ever hits
    /// an in-flight packet, so the recovery counters must stay silent.
    #[test]
    fn prop_after_horizon_schedule_counters_stay_zero(
        net_idx in 0usize..7,
        engine_idx in 0usize..2,
        k in 1usize..5,
        seed in 0u64..5_000,
    ) {
        use hammingmesh::hxsim::FailureSchedule;
        use rand::{Rng, SeedableRng};
        let net = fault_net(net_idx);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cables = net.topo.cables();
        let mut sched = FailureSchedule::new();
        for i in 0..k {
            let (n, p) = cables[rng.random_range(0..cables.len())];
            let at = 1_000_000_000_000_000 + i as u64;
            sched = sched.fail(at, n, p).repair(at + 1_000, n, p);
        }
        let engine = [EngineKind::Packet, EngineKind::Flow][engine_idx];
        let mut app = hammingmesh::hxsim::apps::Alltoall::new(net.num_ranks(), 2048, 2);
        let cfg = SimConfig {
            failures: sched,
            ..Default::default()
        };
        let stats = simulate(&net, cfg, engine, &mut app);
        prop_assert!(stats.clean(), "{} / {:?}: {:?}", net.name, engine, stats);
        prop_assert_eq!(stats.packet_retransmits, 0);
        prop_assert_eq!(stats.flows_rerouted, 0);
        prop_assert_eq!(stats.flow_stall_ps, 0);
        prop_assert_eq!(stats.link_fail_events, 0);
        prop_assert_eq!(stats.link_repair_events, 0);
    }
}

/// The topology x router combinations the fault-model proptests cover:
/// every baseline topology under its own adaptive router, plus the
/// generic [`ShortestPathRouter`] over representative switch-centric and
/// accelerator-forwarding graphs. Shapes are kept small so each proptest
/// case builds its network from scratch in microseconds.
fn fault_net(idx: usize) -> Network {
    match idx {
        0 => FatTreeParams::scaled_nonblocking(16, 8).build(),
        1 => DragonflyParams {
            a: 4,
            p: 2,
            h: 2,
            groups: 4,
        }
        .build(),
        2 => HyperXParams {
            x: 4,
            y: 4,
            radix: 64,
        }
        .build(),
        3 => TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build(),
        4 => HxMeshParams::square(2, 3).build(),
        5 | 6 => {
            let mut net = if idx == 5 {
                FatTreeParams::scaled_nonblocking(16, 8).build()
            } else {
                TorusParams {
                    cols: 4,
                    rows: 4,
                    board: 2,
                }
                .build()
            };
            net.router = Box::new(ShortestPathRouter::build(&net.topo, &net.endpoints));
            net.name = format!("{} + shortest-path router", net.name);
            net
        }
        _ => unreachable!("fault_net index out of range"),
    }
}
