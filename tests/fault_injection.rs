//! Fault injection on HammingMesh routing: kill global cables with
//! [`hammingmesh::hxnet::Topology::fail_link`] and assert both simulation
//! engines still deliver every message — the HxMesh router must route
//! around dead cables (other board-line exit, other tree entry), closing
//! the ROADMAP gap that `fig10_failures` only exercised *allocation*
//! around failed boards, never *routing* around failed links.
//!
//! Scope: the failure-aware routing covers the HxMesh global cables
//! (accelerator <-> line-network switch, and intra-tree links); on-board
//! PCB traces are assumed reliable, as in the paper's fault model where
//! board replacement — not trace failure — is the repair unit.

use hammingmesh::hxnet::hammingmesh::{HxCoord, HxMeshParams};
use hammingmesh::hxnet::{Network, NodeId, PortId};
use hammingmesh::hxsim::apps::{Alltoall, MessageBlast, UniformRandom};
use hammingmesh::hxsim::{simulate, EngineKind, SimConfig};

/// Ports of `node` whose peer is a switch (global cables), in port order.
fn cable_ports(net: &Network, node: NodeId) -> Vec<PortId> {
    (0..net.topo.num_ports(node))
        .map(|p| PortId(p as u16))
        .filter(|&p| net.topo.kind(net.topo.peer(node, p).node).is_switch())
        .collect()
}

/// The accelerator wiring order makes the *row* cable (E or W) of a board
/// edge accelerator its first switch-facing port; the column cable (N or
/// S) is the second.
fn row_cable(net: &Network, node: NodeId) -> PortId {
    cable_ports(net, node)[0]
}

fn col_cable(net: &Network, node: NodeId) -> PortId {
    cable_ports(net, node)[1]
}

#[test]
fn targeted_send_routes_around_failed_row_cable() {
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    // Kill the West row cable of the accelerator at board (0,0), r=0, c=0.
    let co = HxCoord {
        bi: 0,
        bj: 0,
        r: 0,
        c: 0,
    };
    let src = net.endpoints[params.rank_of(co)];
    net.topo.fail_link(src, row_cable(&net, src));
    assert_eq!(net.topo.count_failed_links(), 1);

    // Traffic from that accelerator across its board row must now leave
    // through the East edge and still arrive, on both engines.
    let dst = params.rank_of(HxCoord {
        bi: 0,
        bj: 2,
        r: 0,
        c: 1,
    });
    for kind in EngineKind::all() {
        let mut app = MessageBlast::pairs(vec![(params.rank_of(co) as u32, dst as u32, 1 << 20)]);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.messages_delivered, 1);
    }
}

#[test]
fn targeted_send_routes_around_failed_entry_cable() {
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    // Kill the *destination-side* West entry cable: the row-line tree must
    // deliver through the East edge of the target board instead.
    let dco = HxCoord {
        bi: 1,
        bj: 3,
        r: 1,
        c: 0,
    };
    let entry = net.endpoints[params.rank_of(dco)];
    net.topo.fail_link(entry, row_cable(&net, entry));

    let src = params.rank_of(HxCoord {
        bi: 1,
        bj: 0,
        r: 1,
        c: 0,
    });
    for kind in EngineKind::all() {
        let mut app =
            MessageBlast::pairs(vec![(src as u32, params.rank_of(dco) as u32, 512 << 10)]);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
    }
}

#[test]
fn alltoall_survives_row_and_column_cable_failures() {
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    // One row cable and one column cable, on different boards.
    let a = net.endpoints[params.rank_of(HxCoord {
        bi: 0,
        bj: 1,
        r: 0,
        c: 0,
    })];
    net.topo.fail_link(a, row_cable(&net, a));
    let b = net.endpoints[params.rank_of(HxCoord {
        bi: 2,
        bj: 2,
        r: 0,
        c: 1,
    })];
    net.topo.fail_link(b, col_cable(&net, b));
    assert_eq!(net.topo.count_failed_links(), 2);

    for kind in EngineKind::all() {
        let mut app = Alltoall::new(net.num_ranks(), 16 << 10, 2);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.messages_delivered as usize, 64 * 63);
    }
}

#[test]
fn uniform_random_survives_failures_and_repair_restores_determinism() {
    let params = HxMeshParams::square(2, 2);
    let mut net = params.build();
    let baseline = {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        simulate(&net, SimConfig::default(), EngineKind::Packet, &mut app).finish_ps
    };
    // Fail a cable: the run still completes (likely slower routes).
    let e = net.endpoints[params.rank_of(HxCoord {
        bi: 0,
        bj: 0,
        r: 1,
        c: 1,
    })];
    let cable = row_cable(&net, e);
    net.topo.fail_link(e, cable);
    {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        let stats = simulate(&net, SimConfig::default(), EngineKind::Packet, &mut app);
        assert!(stats.clean(), "{stats:?}");
    }
    // Repair: behavior must be bit-identical to the pristine topology.
    net.topo.restore_link(e, cable);
    assert_eq!(net.topo.count_failed_links(), 0);
    let repaired = {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        simulate(&net, SimConfig::default(), EngineKind::Packet, &mut app).finish_ps
    };
    assert_eq!(baseline, repaired);
}

#[test]
fn failed_link_carries_no_traffic() {
    // The walk-based check: with the West cable of (0,0,r0,c0) dead, no
    // route produced by the router may use it.
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    let co = HxCoord {
        bi: 0,
        bj: 0,
        r: 0,
        c: 0,
    };
    let src = net.endpoints[params.rank_of(co)];
    let dead = row_cable(&net, src);
    net.topo.fail_link(src, dead);

    // Exhaustively walk from the affected accelerator to every other rank
    // following first candidates; the dead port must never be offered.
    for d in 0..net.num_ranks() {
        let dn = net.endpoints[d];
        if dn == src {
            continue;
        }
        let mut node = src;
        let mut vc = 0u8;
        let mut hops = 0;
        while node != dn {
            let mut cand = Vec::new();
            net.router.candidates(&net.topo, node, vc, dn, &mut cand);
            assert!(!cand.is_empty(), "stuck at {node:?} toward rank {d}");
            for h in &cand {
                assert!(
                    !net.topo.link_failed(node, h.port),
                    "router offered dead link {node:?}:{:?} toward rank {d}",
                    h.port
                );
            }
            node = net.topo.peer(node, cand[0].port).node;
            vc = cand[0].vc;
            hops += 1;
            assert!(hops < 64, "livelock routing to rank {d}");
        }
    }
}
