//! Fault injection end to end: kill cables with
//! [`hammingmesh::hxnet::Topology::fail_link`] and assert both simulation
//! engines still deliver every message. Every router is failure-aware —
//! the HxMesh router routes around dead cables (other board-line exit,
//! other tree entry), and the baseline routers (fat tree, Dragonfly,
//! HyperX, torus) re-route through `hxnet::route::FailoverTable`, closing
//! the ROADMAP gap that the comparison topologies could not be simulated
//! under faults at all.
//!
//! Scope: any cable (accelerator <-> switch, switch <-> switch, and the
//! torus' inter-board links) may fail; on-board PCB traces are assumed
//! reliable, as in the paper's fault model where board replacement — not
//! trace failure — is the repair unit.

use hammingmesh::hxnet::dragonfly::DragonflyParams;
use hammingmesh::hxnet::fattree::FatTreeParams;
use hammingmesh::hxnet::hammingmesh::{HxCoord, HxMeshParams};
use hammingmesh::hxnet::hyperx::HyperXParams;
use hammingmesh::hxnet::torus::TorusParams;
use hammingmesh::hxnet::{Cable, Network, NodeId, PortId};
use hammingmesh::hxsim::apps::{Alltoall, MessageBlast, UniformRandom};
use hammingmesh::hxsim::{simulate, EngineKind, SimConfig};

/// Ports of `node` whose peer is a switch (global cables), in port order.
fn cable_ports(net: &Network, node: NodeId) -> Vec<PortId> {
    (0..net.topo.num_ports(node))
        .map(|p| PortId(p as u16))
        .filter(|&p| net.topo.kind(net.topo.peer(node, p).node).is_switch())
        .collect()
}

/// The accelerator wiring order makes the *row* cable (E or W) of a board
/// edge accelerator its first switch-facing port; the column cable (N or
/// S) is the second.
fn row_cable(net: &Network, node: NodeId) -> PortId {
    cable_ports(net, node)[0]
}

fn col_cable(net: &Network, node: NodeId) -> PortId {
    cable_ports(net, node)[1]
}

#[test]
fn targeted_send_routes_around_failed_row_cable() {
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    // Kill the West row cable of the accelerator at board (0,0), r=0, c=0.
    let co = HxCoord {
        bi: 0,
        bj: 0,
        r: 0,
        c: 0,
    };
    let src = net.endpoints[params.rank_of(co)];
    net.topo.fail_link(src, row_cable(&net, src));
    assert_eq!(net.topo.count_failed_links(), 1);

    // Traffic from that accelerator across its board row must now leave
    // through the East edge and still arrive, on both engines.
    let dst = params.rank_of(HxCoord {
        bi: 0,
        bj: 2,
        r: 0,
        c: 1,
    });
    for kind in EngineKind::all() {
        let mut app = MessageBlast::pairs(vec![(params.rank_of(co) as u32, dst as u32, 1 << 20)]);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.messages_delivered, 1);
    }
}

#[test]
fn targeted_send_routes_around_failed_entry_cable() {
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    // Kill the *destination-side* West entry cable: the row-line tree must
    // deliver through the East edge of the target board instead.
    let dco = HxCoord {
        bi: 1,
        bj: 3,
        r: 1,
        c: 0,
    };
    let entry = net.endpoints[params.rank_of(dco)];
    net.topo.fail_link(entry, row_cable(&net, entry));

    let src = params.rank_of(HxCoord {
        bi: 1,
        bj: 0,
        r: 1,
        c: 0,
    });
    for kind in EngineKind::all() {
        let mut app =
            MessageBlast::pairs(vec![(src as u32, params.rank_of(dco) as u32, 512 << 10)]);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
    }
}

#[test]
fn alltoall_survives_row_and_column_cable_failures() {
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    // One row cable and one column cable, on different boards.
    let a = net.endpoints[params.rank_of(HxCoord {
        bi: 0,
        bj: 1,
        r: 0,
        c: 0,
    })];
    net.topo.fail_link(a, row_cable(&net, a));
    let b = net.endpoints[params.rank_of(HxCoord {
        bi: 2,
        bj: 2,
        r: 0,
        c: 1,
    })];
    net.topo.fail_link(b, col_cable(&net, b));
    assert_eq!(net.topo.count_failed_links(), 2);

    for kind in EngineKind::all() {
        let mut app = Alltoall::new(net.num_ranks(), 16 << 10, 2);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.messages_delivered as usize, 64 * 63);
    }
}

#[test]
fn uniform_random_survives_failures_and_repair_restores_determinism() {
    let params = HxMeshParams::square(2, 2);
    let mut net = params.build();
    let baseline = {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        simulate(&net, SimConfig::default(), EngineKind::Packet, &mut app).finish_ps
    };
    // Fail a cable: the run still completes (likely slower routes).
    let e = net.endpoints[params.rank_of(HxCoord {
        bi: 0,
        bj: 0,
        r: 1,
        c: 1,
    })];
    let cable = row_cable(&net, e);
    net.topo.fail_link(e, cable);
    {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        let stats = simulate(&net, SimConfig::default(), EngineKind::Packet, &mut app);
        assert!(stats.clean(), "{stats:?}");
    }
    // Repair: behavior must be bit-identical to the pristine topology.
    net.topo.restore_link(e, cable);
    assert_eq!(net.topo.count_failed_links(), 0);
    let repaired = {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        simulate(&net, SimConfig::default(), EngineKind::Packet, &mut app).finish_ps
    };
    assert_eq!(baseline, repaired);
}

#[test]
fn failed_link_carries_no_traffic() {
    // The walk-based check: with the West cable of (0,0,r0,c0) dead, no
    // route produced by the router may use it.
    let params = HxMeshParams::square(2, 4);
    let mut net = params.build();
    let co = HxCoord {
        bi: 0,
        bj: 0,
        r: 0,
        c: 0,
    };
    let src = net.endpoints[params.rank_of(co)];
    let dead = row_cable(&net, src);
    net.topo.fail_link(src, dead);

    // Exhaustively walk from the affected accelerator to every other rank
    // following first candidates; the dead port must never be offered.
    for d in 0..net.num_ranks() {
        let dn = net.endpoints[d];
        if dn == src {
            continue;
        }
        let mut node = src;
        let mut vc = 0u8;
        let mut hops = 0;
        while node != dn {
            let mut cand = Vec::new();
            net.router.candidates(&net.topo, node, vc, dn, &mut cand);
            assert!(!cand.is_empty(), "stuck at {node:?} toward rank {d}");
            for h in &cand {
                assert!(
                    !net.topo.link_failed(node, h.port),
                    "router offered dead link {node:?}:{:?} toward rank {d}",
                    h.port
                );
            }
            node = net.topo.peer(node, cand[0].port).node;
            vc = cand[0].vc;
            hops += 1;
            assert!(hops < 64, "livelock routing to rank {d}");
        }
    }
}

// ---------------------------------------------------------------------------
// Baseline topologies: the failure-aware routing extends beyond HxMesh.
// ---------------------------------------------------------------------------

/// Alltoall delivery on every baseline topology with failed cables, on
/// both engines: nothing is lost, nothing livelocks.
#[test]
fn baselines_deliver_alltoall_with_failed_cables() {
    let nets: Vec<(Box<dyn Fn() -> Network>, usize)> = vec![
        (
            Box::new(|| FatTreeParams::scaled_nonblocking(16, 8).build()),
            3,
        ),
        (
            Box::new(|| {
                DragonflyParams {
                    a: 4,
                    p: 2,
                    h: 2,
                    groups: 4,
                }
                .build()
            }),
            3,
        ),
        (
            Box::new(|| {
                HyperXParams {
                    x: 4,
                    y: 4,
                    radix: 64,
                }
                .build()
            }),
            3,
        ),
        (
            Box::new(|| {
                TorusParams {
                    cols: 4,
                    rows: 4,
                    board: 2,
                }
                .build()
            }),
            2,
        ),
    ];
    for (build, failures) in nets {
        for kind in EngineKind::all() {
            let mut net = build();
            assert_eq!(net.fail_spread_cables(failures), failures);
            let p = net.num_ranks();
            let mut app = Alltoall::new(p, 8 << 10, 2);
            let stats = simulate(&net, SimConfig::default(), kind, &mut app);
            assert!(stats.clean(), "{} ({kind}): {stats:?}", net.name);
            assert_eq!(
                stats.messages_delivered as usize,
                p * (p - 1),
                "{} ({kind})",
                net.name
            );
        }
    }
}

/// A targeted fat-tree case: kill a leaf's up link; traffic out of that
/// leaf shifts to the remaining spines and still arrives.
#[test]
fn fat_tree_targeted_send_survives_failed_up_link() {
    for kind in EngineKind::all() {
        let mut net = FatTreeParams::scaled_nonblocking(32, 8).build();
        // First inter-switch cable: a leaf -> spine up link.
        let (node, port) = net
            .topo
            .cables()
            .into_iter()
            .find(|&(n, p)| {
                net.topo.kind(n).is_switch() && net.topo.kind(net.topo.peer(n, p).node).is_switch()
            })
            .expect("inter-switch cable");
        net.topo.fail_link(node, port);
        let mut app = MessageBlast::pairs(vec![(0, 31, 1 << 20)]);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.messages_delivered, 1);
    }
}

/// A targeted Dragonfly case: kill a global (AoC) cable; inter-group
/// traffic detours over the surviving global links on both engines.
#[test]
fn dragonfly_targeted_send_survives_failed_global_cable() {
    for kind in EngineKind::all() {
        let mut net = DragonflyParams {
            a: 4,
            p: 2,
            h: 2,
            groups: 4,
        }
        .build();
        let (node, port) = net
            .topo
            .cables()
            .into_iter()
            .find(|&(n, p)| net.topo.link(n, p).spec.cable == Cable::Aoc)
            .expect("global cable");
        net.topo.fail_link(node, port);
        // Cross-group pairs in both directions.
        let p = net.num_ranks() as u32;
        let mut app = MessageBlast::pairs(vec![(0, p - 1, 256 << 10), (p - 1, 0, 256 << 10)]);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.messages_delivered, 2);
    }
}

/// Torus wrap-around failure: uniform-random traffic still drains on both
/// engines with two inter-board cables down.
#[test]
fn torus_uniform_random_survives_failed_cables() {
    for kind in EngineKind::all() {
        let mut net = TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build();
        assert_eq!(net.fail_spread_cables(2), 2);
        let mut app = UniformRandom::new(net.num_ranks(), 16 << 10, 4, 7);
        let stats = simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
    }
}

/// restore_link round-trip at the routing level, on every baseline: fail
/// a cable on the deterministic greedy route, the route changes and
/// avoids it; restore, and the original route comes back hop for hop.
#[test]
fn restore_link_brings_the_original_route_back() {
    let nets: Vec<Network> = vec![
        FatTreeParams::scaled_nonblocking(16, 8).build(),
        DragonflyParams {
            a: 4,
            p: 2,
            h: 2,
            groups: 4,
        }
        .build(),
        HyperXParams {
            x: 4,
            y: 4,
            radix: 64,
        }
        .build(),
        TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build(),
        HxMeshParams::square(2, 3).build(),
    ];
    for mut net in nets {
        let (src, dst) = (net.endpoints[0], *net.endpoints.last().unwrap());
        let walk = |net: &Network| -> Vec<(NodeId, PortId)> {
            let mut route = Vec::new();
            let (mut node, mut vc) = (src, 0u8);
            while node != dst {
                let mut cand = Vec::new();
                net.router.candidates(&net.topo, node, vc, dst, &mut cand);
                assert!(!cand.is_empty(), "{}: stuck at {node:?}", net.name);
                route.push((node, cand[0].port));
                vc = cand[0].vc;
                node = net.topo.peer(node, cand[0].port).node;
                assert!(route.len() < 64, "{}: route too long", net.name);
            }
            route
        };
        let pristine = walk(&net);
        // Fail the first cable on the pristine route whose loss does not
        // disconnect the pair (skip PCB hops — outside the fault model —
        // and single-attachment NIC cables, whose loss isolates an
        // endpoint and is covered by the unreachability proptest).
        let (n, p) = {
            let mut pick = None;
            for &(n, p) in &pristine {
                if net.topo.link(n, p).spec.cable == Cable::Pcb {
                    continue;
                }
                net.topo.fail_link(n, p);
                let d = net.topo.bfs_hops_healthy(src);
                let ok = d[dst.idx()] != u32::MAX && d[src.idx()] != u32::MAX;
                net.topo.restore_link(n, p);
                if ok {
                    pick = Some((n, p));
                    break;
                }
            }
            pick.unwrap_or_else(|| panic!("{}: no redundant cable on route", net.name))
        };
        net.topo.fail_link(n, p);
        let rerouted = walk(&net);
        assert_ne!(pristine, rerouted, "{}: route did not change", net.name);
        assert!(
            rerouted
                .iter()
                .all(|&(rn, rp)| !net.topo.link_failed(rn, rp)),
            "{}: rerouted path uses the dead cable",
            net.name
        );
        net.topo.restore_link(n, p);
        assert_eq!(pristine, walk(&net), "{}: repair did not restore", net.name);
    }
}

/// Regression for `restore_link` against cached failover state: a
/// fail -> restore -> fail cycle on the *same* cable must produce
/// candidate sets identical to the first failure at every hop, on every
/// topology. The failover cache is keyed on the failure-set id (content,
/// not epoch), so the second failure is typically served from the cached
/// BFS of the first — this test pins that the reuse is not stale: the
/// interleaved healthy and failed queries may not bleed into each other.
#[test]
fn refail_same_cable_reproduces_first_failure_routes() {
    let nets: Vec<Network> = vec![
        FatTreeParams::scaled_nonblocking(16, 8).build(),
        DragonflyParams {
            a: 4,
            p: 2,
            h: 2,
            groups: 4,
        }
        .build(),
        HyperXParams {
            x: 4,
            y: 4,
            radix: 64,
        }
        .build(),
        TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build(),
        HxMeshParams::square(2, 3).build(),
    ];
    for mut net in nets {
        let (src, dst) = (net.endpoints[0], *net.endpoints.last().unwrap());
        // Walk first candidates to the destination, recording the FULL
        // candidate set at every hop — any stale cache entry shows up as
        // a changed set somewhere along the walk.
        let walk_sets = |net: &Network| -> Vec<Vec<(PortId, u8)>> {
            let mut sets = Vec::new();
            let (mut node, mut vc) = (src, 0u8);
            while node != dst {
                let mut cand = Vec::new();
                net.router.candidates(&net.topo, node, vc, dst, &mut cand);
                assert!(!cand.is_empty(), "{}: stuck at {node:?}", net.name);
                sets.push(cand.iter().map(|h| (h.port, h.vc)).collect());
                vc = cand[0].vc;
                node = net.topo.peer(node, cand[0].port).node;
                assert!(sets.len() < 64, "{}: route too long", net.name);
            }
            sets
        };
        let pristine = walk_sets(&net);
        // First redundant non-PCB cable along the first-candidate walk
        // (same selection as restore_link_brings_the_original_route_back).
        let mut pick = None;
        let (mut node, mut vc) = (src, 0u8);
        while node != dst && pick.is_none() {
            let mut cand = Vec::new();
            net.router.candidates(&net.topo, node, vc, dst, &mut cand);
            let hop = cand[0];
            if net.topo.link(node, hop.port).spec.cable != Cable::Pcb {
                net.topo.fail_link(node, hop.port);
                let ok = net.topo.bfs_hops_healthy(src)[dst.idx()] != u32::MAX;
                net.topo.restore_link(node, hop.port);
                if ok {
                    pick = Some((node, hop.port));
                }
            }
            vc = hop.vc;
            node = net.topo.peer(node, hop.port).node;
        }
        let (n, p) = pick.unwrap_or_else(|| panic!("{}: no redundant cable", net.name));

        net.topo.fail_link(n, p);
        let first_failure = walk_sets(&net);
        net.topo.restore_link(n, p);
        assert_eq!(
            pristine,
            walk_sets(&net),
            "{}: restore did not bring pristine candidate sets back",
            net.name
        );
        net.topo.fail_link(n, p);
        assert_eq!(
            first_failure,
            walk_sets(&net),
            "{}: refailing the same cable diverged from the first failure",
            net.name
        );
        // And a second restore closes the cycle.
        net.topo.restore_link(n, p);
        assert_eq!(pristine, walk_sets(&net), "{}: second repair", net.name);
    }
}

/// End-to-end repair determinism on a baseline topology (mirrors the
/// HxMesh test above): fail -> still clean (the nonblocking tree has the
/// spare capacity to absorb one dead up link, so timing may not even
/// move) -> restore -> bit-identical to the pristine run.
#[test]
fn fat_tree_repair_restores_determinism() {
    let mut net = FatTreeParams::scaled_nonblocking(16, 8).build();
    let run = |net: &Network| {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        simulate(net, SimConfig::default(), EngineKind::Packet, &mut app).finish_ps
    };
    let baseline = run(&net);
    let (node, port) = net
        .topo
        .cables()
        .into_iter()
        .find(|&(n, p)| {
            net.topo.kind(n).is_switch() && net.topo.kind(net.topo.peer(n, p).node).is_switch()
        })
        .expect("inter-switch cable");
    net.topo.fail_link(node, port);
    {
        let mut app = UniformRandom::new(net.num_ranks(), 24 << 10, 4, 11);
        let stats = simulate(&net, SimConfig::default(), EngineKind::Packet, &mut app);
        assert!(stats.clean(), "degraded run lost traffic: {stats:?}");
    }
    net.topo.restore_link(node, port);
    assert_eq!(baseline, run(&net));
}
