//! 2D torus with 2x2 boards (the paper's switchless baseline).
//!
//! A `cols` x `rows` accelerator torus. Links inside a board are free PCB
//! traces; links between boards are cables. §III-D describes DAC cables
//! between boards, but the Table II cost figure ($2.5M for the small
//! cluster) matches AoC pricing (4 planes x 1,024 cables x $603), so the
//! builder uses AoC to stay faithful to the paper's numbers; see DESIGN.md
//! substitution #6.
//!
//! Routing: strict dimension-order (X then Y) with minimal-direction
//! adaptivity on each ring and dateline virtual channels for deadlock
//! freedom: VCs {0,1} in the X phase, {2,3} in the Y phase; crossing a
//! wrap-around link bumps the dateline bit.

use crate::graph::{Cable, Network, NodeId, PortId, Topology};
use crate::route::{FailoverTable, Hop, Router};
use crate::{cable_link, pcb_link};

/// Port slots of a torus accelerator, same order as HammingMesh.
const EAST: usize = 0;
const WEST: usize = 1;
const NORTH: usize = 2;
const SOUTH: usize = 3;

#[derive(Clone, Debug)]
pub struct TorusParams {
    /// Accelerators per row (X dimension).
    pub cols: usize,
    /// Accelerators per column (Y dimension).
    pub rows: usize,
    /// Board edge length; accelerators in the same `board x board` tile are
    /// connected with PCB traces (2 in the paper).
    pub board: usize,
}

impl TorusParams {
    /// The paper's small-cluster 32x32 torus with 2x2 boards.
    pub fn small() -> Self {
        Self {
            cols: 32,
            rows: 32,
            board: 2,
        }
    }

    /// The paper's large-cluster 128x128 torus with 2x2 boards.
    pub fn large() -> Self {
        Self {
            cols: 128,
            rows: 128,
            board: 2,
        }
    }

    pub fn num_accelerators(&self) -> usize {
        self.cols * self.rows
    }

    pub fn build(&self) -> Network {
        assert!(self.cols >= 2 && self.rows >= 2);
        let n = self.num_accelerators();
        let mut topo = Topology::with_capacity(n);
        let mut endpoints = Vec::with_capacity(n);
        for r in 0..n {
            endpoints.push(topo.add_accelerator(r as u32));
        }
        let at = |r: usize, c: usize| endpoints[r * self.cols + c];
        let mut ports = vec![[PortId(u16::MAX); 4]; n];

        let same_board = |u: usize, v: usize| (u / self.board) == (v / self.board);

        // X rings (east-west), wrap included.
        for r in 0..self.rows {
            for c in 0..self.cols {
                let c2 = (c + 1) % self.cols;
                let spec = if c2 != 0 && same_board(c, c2) {
                    pcb_link()
                } else {
                    cable_link(Cable::Aoc)
                };
                let (pe, pw) = topo.connect(at(r, c), at(r, c2), spec);
                ports[at(r, c).idx()][EAST] = pe;
                ports[at(r, c2).idx()][WEST] = pw;
            }
        }
        // Y rings (north-south), wrap included.
        for c in 0..self.cols {
            for r in 0..self.rows {
                let r2 = (r + 1) % self.rows;
                let spec = if r2 != 0 && same_board(r, r2) {
                    pcb_link()
                } else {
                    cable_link(Cable::Aoc)
                };
                let (ps, pn) = topo.connect(at(r, c), at(r2, c), spec);
                ports[at(r, c).idx()][SOUTH] = ps;
                ports[at(r2, c).idx()][NORTH] = pn;
            }
        }

        let router = TorusRouter {
            cols: self.cols as u16,
            rows: self.rows as u16,
            ports,
            failover: FailoverTable::new(),
        };
        Network {
            topo,
            endpoints,
            router: Box::new(router),
            name: format!("{}x{} 2D torus", self.cols, self.rows),
        }
    }
}

/// Dimension-order adaptive-direction torus routing with dateline VCs.
///
/// Failure-aware: while any link is failed, the dimension-order candidate
/// set is corrected by a [`FailoverTable`] — a dead ring link in the
/// minimal direction diverts traffic the long way round (or through the
/// other dimension first) along failure-aware shortest paths.
pub struct TorusRouter {
    cols: u16,
    rows: u16,
    /// E,W,N,S ports per accelerator node index.
    ports: Vec<[PortId; 4]>,
    failover: FailoverTable,
}

impl TorusRouter {
    #[inline]
    fn coord(&self, node: NodeId) -> (u16, u16) {
        let i = node.idx() as u16;
        (i / self.cols, i % self.cols) // (row, col)
    }

    /// Ring distance and minimal direction(s): returns (forward, backward)
    /// distances on a ring of length `len`.
    #[inline]
    fn ring_dists(p: u16, t: u16, len: u16) -> (u16, u16) {
        let fwd = (t + len - p) % len;
        let bwd = (p + len - t) % len;
        (fwd, bwd)
    }
}

impl Router for TorusRouter {
    fn num_vcs(&self) -> u8 {
        4
    }

    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        if vc >= self.num_vcs() {
            // Escape VC: sticky failure-epoch routing (see FailoverTable).
            self.failover.escape_candidates(topo, node, vc, target, out);
            return;
        }
        if node == target {
            return;
        }
        let (r, c) = self.coord(node);
        let (tr, tc) = self.coord(target);
        let slots = &self.ports[node.idx()];
        if c != tc {
            // X phase: VCs {0,1}; dateline = wrap through column 0.
            let base = vc & 1; // current dateline bit
            let (fwd, bwd) = Self::ring_dists(c, tc, self.cols);
            if fwd <= bwd {
                // East; wraps when c == cols-1.
                let nvc = if c == self.cols - 1 { 1 } else { base };
                out.push(Hop {
                    port: slots[EAST],
                    vc: nvc,
                });
            }
            if bwd <= fwd {
                // West; wraps when c == 0.
                let nvc = if c == 0 { 1 } else { base };
                out.push(Hop {
                    port: slots[WEST],
                    vc: nvc,
                });
            }
        } else {
            // Y phase: VCs {2,3}; entering resets the dateline bit.
            let base = if vc >= 2 { vc & 1 } else { 0 };
            let (fwd, bwd) = Self::ring_dists(r, tr, self.rows);
            if fwd <= bwd {
                // South (increasing row); wraps when r == rows-1.
                let nvc = 2 + if r == self.rows - 1 { 1 } else { base };
                out.push(Hop {
                    port: slots[SOUTH],
                    vc: nvc,
                });
            }
            if bwd <= fwd {
                let nvc = 2 + if r == 0 { 1 } else { base };
                out.push(Hop {
                    port: slots[NORTH],
                    vc: nvc,
                });
            }
        }
        if topo.has_failures() {
            self.failover
                .filter(topo, node, self.num_vcs(), target, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_torus_counts_match_appendix_c() {
        let net = TorusParams::small().build();
        assert_eq!(net.endpoints.len(), 1024);
        assert_eq!(net.topo.count_switches(), 0);
        // 2*4/2*16*16 = 1,024 inter-board cables per plane (App. C1e).
        assert_eq!(net.topo.count_cables(Cable::Aoc), 1024);
        // PCB traces: 1 horizontal + 1 vertical per 2x2 board * 2 = 1,024.
        assert_eq!(net.topo.count_cables(Cable::Pcb), 1024);
        net.topo.validate().unwrap();
    }

    fn walk(net: &Network, s: usize, d: usize) -> u32 {
        let (sn, dn) = (net.endpoints[s], net.endpoints[d]);
        let mut node = sn;
        let mut vc = 0u8;
        let mut hops = 0;
        while node != dn {
            let mut cand = Vec::new();
            net.router.candidates(&net.topo, node, vc, dn, &mut cand);
            assert!(!cand.is_empty());
            node = net.topo.peer(node, cand[0].port).node;
            vc = cand[0].vc;
            hops += 1;
            assert!(hops <= 64);
        }
        hops
    }

    #[test]
    fn routing_takes_shortest_way_around() {
        let net = TorusParams {
            cols: 8,
            rows: 8,
            board: 2,
        }
        .build();
        // col 0 -> col 7 is 1 hop west (wrap).
        assert_eq!(walk(&net, 0, 7), 1);
        // col 0 -> col 4 is 4 hops either way.
        assert_eq!(walk(&net, 0, 4), 4);
        // (0,0) -> (7,7): 1 west + 1 north = 2.
        assert_eq!(walk(&net, 0, 63), 2);
    }

    #[test]
    fn exhaustive_routing_on_tiny_torus() {
        let net = TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build();
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    let h = walk(&net, s, d);
                    assert!(h <= 4, "{s}->{d} took {h}");
                }
            }
        }
    }

    #[test]
    fn vcs_stay_in_range() {
        let net = TorusParams {
            cols: 6,
            rows: 6,
            board: 2,
        }
        .build();
        for s in 0..36 {
            for d in 0..36 {
                if s == d {
                    continue;
                }
                let (sn, dn) = (net.endpoints[s], net.endpoints[d]);
                let mut node = sn;
                let mut vc = 0u8;
                while node != dn {
                    let mut cand = Vec::new();
                    net.router.candidates(&net.topo, node, vc, dn, &mut cand);
                    for h in &cand {
                        assert!(h.vc < 4);
                    }
                    node = net.topo.peer(node, cand[0].port).node;
                    vc = cand[0].vc;
                }
            }
        }
    }

    #[test]
    fn routing_diverts_around_failed_wrap_link() {
        let net = TorusParams {
            cols: 8,
            rows: 8,
            board: 2,
        }
        .build();
        let mut net = net;
        // 0 -> 7 is normally 1 hop west through the wrap; kill that cable.
        let src = net.endpoints[0];
        let west = PortId(1); // port order: E, W, N, S (wired E first)
        let dead_peer = net.topo.peer(src, west).node;
        assert_eq!(dead_peer, net.endpoints[7], "wrap wiring assumption");
        net.topo.fail_link(src, west);
        // Shortest healthy detour: south, west through row 1's wrap, north.
        let (sn, dn) = (net.endpoints[0], net.endpoints[7]);
        let mut node = sn;
        let mut vc = 0u8;
        let mut hops = 0;
        while node != dn {
            let mut cand = Vec::new();
            net.router.candidates(&net.topo, node, vc, dn, &mut cand);
            assert!(!cand.is_empty(), "stuck at {node:?}");
            for h in &cand {
                assert!(!net.topo.link_failed(node, h.port), "dead link offered");
            }
            node = net.topo.peer(node, cand[0].port).node;
            vc = cand[0].vc;
            hops += 1;
            assert!(hops <= 8);
        }
        assert_eq!(hops, 3, "expected the S-W-N detour");
        // Repair restores the single-hop wrap route.
        net.topo.restore_link(src, west);
        assert_eq!(walk(&net, 0, 7), 1);
    }

    #[test]
    fn dateline_bumps_vc_on_wrap() {
        let net = TorusParams {
            cols: 8,
            rows: 8,
            board: 2,
        }
        .build();
        // 0 -> 7 goes west through the wrap: vc must become 1.
        let (sn, dn) = (net.endpoints[0], net.endpoints[7]);
        let mut cand = Vec::new();
        net.router.candidates(&net.topo, sn, 0, dn, &mut cand);
        assert_eq!(cand.len(), 1);
        assert_eq!(cand[0].vc, 1);
    }
}
