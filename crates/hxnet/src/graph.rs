//! Port-level network multigraph.
//!
//! A [`Topology`] is an explicit list of nodes; each node owns an ordered
//! list of ports, and each port is wired to exactly one peer port through a
//! full-duplex [`Link`]. Accelerators and switches are both nodes; in
//! HammingMesh accelerators forward packets themselves (the per-plane 4x4
//! switch of Fig. 3), so the simulator treats the two kinds uniformly and
//! only the routing algorithms care about the distinction.

use std::fmt;

/// Identifier of a node (accelerator or switch) inside one [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a port, local to its owning node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl NodeId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One endpoint of a link: a specific port on a specific node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortRef {
    pub node: NodeId,
    pub port: PortId,
}

/// Physical cable technology of a link. Drives the cost model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cable {
    /// Short metal trace on a PCB board — free in the cost model (§III-C).
    Pcb,
    /// 5 m Direct Attach Copper cable ($272 in App. E).
    Dac,
    /// 20 m Active optical Cable ($603 in App. E).
    Aoc,
}

/// Physical parameters of a link, set by the topology builders.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Propagation latency in picoseconds.
    pub latency_ps: u64,
    /// Serialization rate: picoseconds per byte (20 ps/B at 400 Gb/s).
    pub ps_per_byte: f64,
    pub cable: Cable,
}

/// A directed half of a full-duplex link, stored from the sender's side.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    pub peer: PortRef,
    pub spec: LinkSpec,
    /// The link has been killed by fault injection ([`Topology::fail_link`]).
    /// Failure-aware routers route around it.
    pub failed: bool,
}

/// Role of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An accelerator with an attached NIC. `rank` is the global rank of
    /// this accelerator (index into [`Network::endpoints`]).
    Accelerator { rank: u32 },
    /// A packet switch. `level` distinguishes tree levels (0 = leaf level),
    /// `group`/`pos` are generic coordinates the builders use for labeling.
    Switch { level: u8, group: u32, pos: u32 },
}

impl NodeKind {
    #[inline]
    pub fn is_accelerator(self) -> bool {
        matches!(self, NodeKind::Accelerator { .. })
    }

    #[inline]
    pub fn is_switch(self) -> bool {
        matches!(self, NodeKind::Switch { .. })
    }
}

/// A node together with its ports. Ports are created by [`Topology::connect`]
/// in call order, so builders control port numbering.
#[derive(Clone, Debug)]
pub struct Node {
    pub kind: NodeKind,
    pub ports: Vec<Link>,
}

/// Content identity of a failure *set*: the number of failed full-duplex
/// links plus an order-independent fingerprint of which ones they are.
///
/// Unlike [`Topology::failure_epoch`] — a monotone counter that never
/// repeats — the set id returns to a previous value when the failure set
/// does: a fail → restore → fail cycle on the same cable yields the same
/// id as the first failure. Failure-aware routing caches key on this, so
/// the cluster simulator's fail/repair churn (which toggles the same few
/// cables over days of simulated time) reuses BFS state instead of
/// recomputing it every epoch, while any *different* set — including the
/// empty one — changes the id and invalidates the cache.
///
/// The fingerprint XORs a splitmix64-mixed hash of each failed cable's
/// canonical end; XOR is commutative and self-inverse, so it is maintained
/// in O(1) per transition. Two distinct sets of equal size collide only if
/// their mixed hashes XOR equal — vanishingly unlikely and not achievable
/// by the simulators' random sweeps.
// `Ord` so the id can key ordered maps (hxcluster's iteration-time memo
// keys on it; D001 keeps hash maps out of the sim crates).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FailureSetId {
    /// Number of failed full-duplex links.
    pub count: u32,
    /// XOR of the per-cable mixed hashes.
    pub fingerprint: u64,
}

/// splitmix64 finalizer: the cable-id mixer behind [`FailureSetId`].
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The port-level multigraph.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    /// Number of currently failed full-duplex links (each counted once).
    failed_links: usize,
    /// Bumped on every effective [`Topology::fail_link`] /
    /// [`Topology::restore_link`], so failure-aware routing tables can
    /// invalidate their caches without scanning the graph.
    failure_epoch: u64,
    /// XOR-accumulated fingerprint of the current failure set (see
    /// [`FailureSetId`]); updated in O(1) alongside `failed_links`.
    failure_fingerprint: u64,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(nodes),
            ..Self::default()
        }
    }

    /// Add a node with no ports yet; returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            ports: Vec::new(),
        });
        id
    }

    pub fn add_accelerator(&mut self, rank: u32) -> NodeId {
        self.add_node(NodeKind::Accelerator { rank })
    }

    pub fn add_switch(&mut self, level: u8, group: u32, pos: u32) -> NodeId {
        self.add_node(NodeKind::Switch { level, group, pos })
    }

    /// Connect two nodes with a new full-duplex link; allocates one new port
    /// on each side and returns them as `(port_on_a, port_on_b)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (PortId, PortId) {
        assert_ne!(a, b, "self-loops are not allowed");
        let pa = PortId(self.nodes[a.idx()].ports.len() as u16);
        let pb = PortId(self.nodes[b.idx()].ports.len() as u16);
        self.nodes[a.idx()].ports.push(Link {
            peer: PortRef { node: b, port: pb },
            spec,
            failed: false,
        });
        self.nodes[b.idx()].ports.push(Link {
            peer: PortRef { node: a, port: pa },
            spec,
            failed: false,
        });
        (pa, pb)
    }

    /// Look up `(node, port)` for fault injection, panicking with a clear
    /// message instead of a bare index error when the port does not exist.
    /// The audit of the original `fail_link` showed that a typo'd port id
    /// would either panic deep inside `peer()` or — worse, when it aliased
    /// another valid port — silently kill the wrong cable; an explicit
    /// bounds check keeps the failure loud and attributable.
    fn checked_peer(&self, node: NodeId, port: PortId) -> PortRef {
        let n = self
            .nodes
            .get(node.idx())
            // hxlint: allow(P001) documented contract: bad fault-injection input must fail loudly, not kill another cable
            .unwrap_or_else(|| panic!("fault injection on nonexistent node {node:?}"));
        n.ports
            .get(port.idx())
            // hxlint: allow(P001) documented contract: bad fault-injection input must fail loudly, not kill another cable
            .unwrap_or_else(|| panic!("fault injection on nonexistent port {node:?}:{port:?}"))
            .peer
    }

    /// Fault injection: mark the full-duplex link at `(node, port)` as
    /// failed, in both directions. Failure-aware routers stop offering the
    /// link as a candidate and route around it.
    ///
    /// Failing an already-failed link is a **no-op** (returns `false`):
    /// the failure count and epoch stay untouched, so sweeps that sample
    /// cables with replacement cannot corrupt the bookkeeping. A
    /// nonexistent `(node, port)` panics with a descriptive message.
    /// Returns `true` when the link actually transitioned to failed.
    pub fn fail_link(&mut self, node: NodeId, port: PortId) -> bool {
        let peer = self.checked_peer(node, port);
        if self.nodes[node.idx()].ports[port.idx()].failed {
            return false;
        }
        self.nodes[node.idx()].ports[port.idx()].failed = true;
        self.nodes[peer.node.idx()].ports[peer.port.idx()].failed = true;
        self.failed_links += 1;
        self.failure_epoch += 1;
        self.failure_fingerprint ^= Self::cable_hash(node, port, peer);
        true
    }

    /// Order-independent hash of one full-duplex cable, computed from its
    /// canonical (lexicographically smaller) end so both directions agree.
    fn cable_hash(node: NodeId, port: PortId, peer: PortRef) -> u64 {
        let a = ((node.0 as u64) << 16) | port.0 as u64;
        let b = ((peer.node.0 as u64) << 16) | peer.port.0 as u64;
        mix64(a.min(b))
    }

    /// Undo [`Topology::fail_link`] (repair), in both directions.
    /// Restoring a healthy link is a no-op (returns `false`); a
    /// nonexistent `(node, port)` panics like [`Topology::fail_link`].
    pub fn restore_link(&mut self, node: NodeId, port: PortId) -> bool {
        let peer = self.checked_peer(node, port);
        if !self.nodes[node.idx()].ports[port.idx()].failed {
            return false;
        }
        self.nodes[node.idx()].ports[port.idx()].failed = false;
        self.nodes[peer.node.idx()].ports[peer.port.idx()].failed = false;
        self.failed_links -= 1;
        self.failure_epoch += 1;
        self.failure_fingerprint ^= Self::cable_hash(node, port, peer);
        true
    }

    /// Whether any link is currently failed. O(1); routers use this to
    /// keep the healthy-network fast path entirely failure-blind.
    #[inline]
    pub fn has_failures(&self) -> bool {
        self.failed_links > 0
    }

    /// Monotone counter bumped by every effective fail/restore. Useful
    /// for detecting *that* the failure set moved; cached failure-aware
    /// routing state keys on [`Topology::failure_set_id`] instead, which
    /// additionally recognizes a set it has seen before.
    #[inline]
    pub fn failure_epoch(&self) -> u64 {
        self.failure_epoch
    }

    /// Content identity of the current failure set (see [`FailureSetId`]).
    /// Equal ids ⇔ (up to fingerprint collision) equal sets, regardless of
    /// the fail/restore order that produced them.
    #[inline]
    pub fn failure_set_id(&self) -> FailureSetId {
        FailureSetId {
            count: self.failed_links as u32,
            fingerprint: self.failure_fingerprint,
        }
    }

    /// Whether the directed link out of `(node, port)` is failed.
    #[inline]
    pub fn link_failed(&self, node: NodeId, port: PortId) -> bool {
        self.nodes[node.idx()].ports[port.idx()].failed
    }

    /// Number of failed full-duplex links (each counted once). Maintained
    /// incrementally by [`Topology::fail_link`] / [`Topology::restore_link`].
    pub fn count_failed_links(&self) -> usize {
        debug_assert_eq!(
            self.failed_links,
            self.nodes
                .iter()
                .flat_map(|n| n.ports.iter())
                .filter(|l| l.failed)
                .count()
                / 2
        );
        self.failed_links
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.idx()].kind
    }

    #[inline]
    pub fn link(&self, node: NodeId, port: PortId) -> &Link {
        &self.nodes[node.idx()].ports[port.idx()]
    }

    #[inline]
    pub fn peer(&self, node: NodeId, port: PortId) -> PortRef {
        self.nodes[node.idx()].ports[port.idx()].peer
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn num_ports(&self, node: NodeId) -> usize {
        self.nodes[node.idx()].ports.len()
    }

    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Total number of full-duplex links (each counted once).
    pub fn num_links(&self) -> usize {
        self.nodes.iter().map(|n| n.ports.len()).sum::<usize>() / 2
    }

    /// Count links of a given cable kind (each full-duplex link once).
    pub fn count_cables(&self, cable: Cable) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.ports.iter())
            .filter(|l| l.spec.cable == cable)
            .count()
            / 2
    }

    /// Count switch nodes.
    pub fn count_switches(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_switch()).count()
    }

    /// Shared BFS body of [`Topology::bfs_hops`] /
    /// [`Topology::bfs_hops_healthy`], so the failure-blind and
    /// failure-aware metrics cannot drift apart.
    fn bfs(&self, src: NodeId, skip_failed: bool) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.idx()] = 0;
        queue.push_back(src);
        while let Some(n) = queue.pop_front() {
            let d = dist[n.idx()];
            for link in &self.nodes[n.idx()].ports {
                let p = link.peer.node;
                if !(skip_failed && link.failed) && dist[p.idx()] == u32::MAX {
                    dist[p.idx()] = d + 1;
                    queue.push_back(p);
                }
            }
        }
        dist
    }

    /// Unweighted BFS hop distance (in links) from `src` to every node,
    /// ignoring fault injection. Used by diameter verification and
    /// routing-table construction.
    pub fn bfs_hops(&self, src: NodeId) -> Vec<u32> {
        self.bfs(src, false)
    }

    /// Unweighted BFS hop distance from `src` over **healthy** links only:
    /// failed links are treated as absent. `u32::MAX` marks nodes the
    /// current failure set disconnects from `src`. This is the metric the
    /// failure-aware routing fallback and the cable-failure sweeps use.
    pub fn bfs_hops_healthy(&self, src: NodeId) -> Vec<u32> {
        self.bfs(src, true)
    }

    /// All cables — non-PCB full-duplex links — as one canonical
    /// `(node, port)` end each (the lexicographically smaller end). The
    /// shared enumeration behind every cable-failure sweep and fault
    /// suite, so they all sample the same fault model.
    pub fn cables(&self) -> Vec<(NodeId, PortId)> {
        let mut out = Vec::new();
        for (id, node) in self.nodes() {
            for (p, link) in node.ports.iter().enumerate() {
                let port = PortId(p as u16);
                if link.spec.cable != Cable::Pcb && (id, port) < (link.peer.node, link.peer.port) {
                    out.push((id, port));
                }
            }
        }
        out
    }

    /// Consistency check: every link's peer relation is symmetric.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in self.nodes.iter().enumerate() {
            for (pidx, link) in node.ports.iter().enumerate() {
                let peer = link.peer;
                let back = self
                    .nodes
                    .get(peer.node.idx())
                    .and_then(|n| n.ports.get(peer.port.idx()))
                    .ok_or_else(|| format!("n{id}:p{pidx} points to missing {peer:?}"))?;
                if back.peer.node.idx() != id || back.peer.port.idx() != pidx {
                    return Err(format!(
                        "asymmetric link n{id}:p{pidx} <-> {:?} (peer back-ref {:?})",
                        peer, back.peer
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A built network: the graph, the rank-ordered endpoints, and the routing
/// algorithm appropriate for the topology.
pub struct Network {
    pub topo: Topology,
    /// Accelerator nodes in rank order: `endpoints[r]` is the node of rank r.
    pub endpoints: Vec<NodeId>,
    pub router: Box<dyn crate::route::Router>,
    /// Human-readable name, e.g. `"16x16 Hx2Mesh"`.
    pub name: String,
}

impl Network {
    /// Rank of an accelerator node (panics if `node` is a switch).
    pub fn rank_of(&self, node: NodeId) -> u32 {
        match self.topo.kind(node) {
            NodeKind::Accelerator { rank } => rank,
            // hxlint: allow(P001) documented contract: rank_of is accelerator-only
            k => panic!("rank_of called on {k:?}"),
        }
    }

    pub fn num_ranks(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the current failure set leaves every endpoint connected
    /// (over healthy links).
    pub fn endpoints_connected(&self) -> bool {
        let d = self.topo.bfs_hops_healthy(self.endpoints[0]);
        self.endpoints.iter().all(|e| d[e.idx()] != u32::MAX)
    }

    /// Fault-injection driver: fail up to `want` cables drawn uniformly at
    /// random, rolling back any draw that would disconnect an endpoint.
    /// Returns the number actually failed (less than `want` only when the
    /// topology runs out of redundant cables).
    pub fn fail_random_cables(&mut self, want: usize, rng: &mut dyn rand::RngCore) -> usize {
        use rand::seq::SliceRandom;
        let mut pool = self.topo.cables();
        pool.shuffle(rng);
        self.fail_while_connected(&pool, want)
    }

    /// The shared failure-draw recipe of the Fig. 10 routed sweep and the
    /// `hxserve` scenario service: draw `want` random
    /// connectivity-preserving cable failures from an RNG derived from
    /// `(seed, draw)`, so draw `t` produces the same failure set on every
    /// thread count, machine, and caller. Returns the number actually
    /// failed, like [`Network::fail_random_cables`].
    pub fn fail_random_cables_drawn(&mut self, want: usize, seed: u64, draw: u64) -> usize {
        use rand::SeedableRng;
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(seed ^ draw.wrapping_mul(0x9E3779B97F4A7C15));
        self.fail_random_cables(want, &mut rng)
    }

    /// Deterministic sibling of [`Network::fail_random_cables`]: scans the
    /// cable list in strided order so the failures spread across the
    /// machine, rolling back disconnecting draws the same way.
    pub fn fail_spread_cables(&mut self, count: usize) -> usize {
        let pool = self.topo.cables();
        let stride = (pool.len() / count.max(1)).max(1);
        let mut order = Vec::with_capacity(pool.len());
        for offset in 0..stride {
            order.extend(pool.iter().copied().skip(offset).step_by(stride));
        }
        self.fail_while_connected(&order, count)
    }

    fn fail_while_connected(&mut self, order: &[(NodeId, PortId)], want: usize) -> usize {
        let mut failed = 0;
        for &(node, port) in order {
            if failed == want {
                break;
            }
            if !self.topo.fail_link(node, port) {
                continue;
            }
            if self.endpoints_connected() {
                failed += 1;
            } else {
                self.topo.restore_link(node, port);
            }
        }
        failed
    }

    /// Injection bandwidth of one endpoint in bytes/ps (sum over its ports).
    pub fn injection_bytes_per_ps(&self, rank: usize) -> f64 {
        let node = self.endpoints[rank];
        self.topo
            .node(node)
            .ports
            .iter()
            .map(|l| 1.0 / l.spec.ps_per_byte)
            .sum()
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.name)
            .field("nodes", &self.topo.num_nodes())
            .field("endpoints", &self.endpoints.len())
            .field("links", &self.topo.num_links())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec {
            latency_ps: 1000,
            ps_per_byte: 20.0,
            cable: Cable::Dac,
        }
    }

    #[test]
    fn connect_is_symmetric() {
        let mut t = Topology::new();
        let a = t.add_accelerator(0);
        let b = t.add_switch(0, 0, 0);
        let (pa, pb) = t.connect(a, b, spec());
        assert_eq!(t.peer(a, pa), PortRef { node: b, port: pb });
        assert_eq!(t.peer(b, pb), PortRef { node: a, port: pa });
        t.validate().unwrap();
    }

    #[test]
    fn multi_links_get_distinct_ports() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        let (p1, _) = t.connect(a, b, spec());
        let (p2, _) = t.connect(a, b, spec());
        assert_ne!(p1, p2);
        assert_eq!(t.num_links(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_switch(0, 0, i)).collect();
        for w in n.windows(2) {
            t.connect(w[0], w[1], spec());
        }
        let d = t.bfs_hops(n[0]);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fail_link_is_idempotent_and_tracked() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        let (pa, pb) = t.connect(a, b, spec());
        assert!(!t.has_failures());
        assert_eq!(t.failure_epoch(), 0);

        assert!(t.fail_link(a, pa));
        assert_eq!(t.count_failed_links(), 1);
        assert_eq!(t.failure_epoch(), 1);
        // Failing the same link again — from either side — is a no-op.
        assert!(!t.fail_link(a, pa));
        assert!(!t.fail_link(b, pb));
        assert_eq!(t.count_failed_links(), 1);
        assert_eq!(t.failure_epoch(), 1);

        // Restoring a healthy link is also a no-op.
        assert!(t.restore_link(b, pb));
        assert!(!t.restore_link(a, pa));
        assert_eq!(t.count_failed_links(), 0);
        assert!(!t.has_failures());
        assert_eq!(t.failure_epoch(), 2);
    }

    #[test]
    fn failure_set_id_tracks_content_not_history() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        let c = t.add_switch(0, 0, 2);
        let (pab, pba) = t.connect(a, b, spec());
        let (pbc, _) = t.connect(b, c, spec());
        let healthy = t.failure_set_id();
        assert_eq!(healthy, FailureSetId::default());

        // The id is direction-independent and returns to its previous
        // value across a fail -> restore -> fail cycle on the same cable.
        t.fail_link(a, pab);
        let first = t.failure_set_id();
        assert_ne!(first, healthy);
        t.restore_link(b, pba);
        assert_eq!(t.failure_set_id(), healthy);
        t.fail_link(b, pba);
        assert_eq!(t.failure_set_id(), first);

        // A different single-cable set has a different id; equal-size
        // sets built in different orders agree.
        t.restore_link(a, pab);
        t.fail_link(b, pbc);
        let other = t.failure_set_id();
        assert_ne!(other, first);
        t.fail_link(a, pab);
        let both = t.failure_set_id();
        t.restore_link(a, pab);
        t.restore_link(b, pbc);
        t.fail_link(a, pab);
        t.fail_link(b, pbc);
        assert_eq!(t.failure_set_id(), both);
    }

    /// Pins the O(1) maintenance rule the caches rely on: the fingerprint
    /// of a failure set is exactly the XOR of the singleton fingerprints,
    /// so `fail_link`/`restore_link` can update it incrementally without
    /// ever rescanning the graph — and `count` (not the fingerprint) is
    /// what separates the empty set from any set that XORs to zero.
    #[test]
    fn failure_set_fingerprint_composes_by_xor() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        let c = t.add_switch(0, 0, 2);
        let (pab, _) = t.connect(a, b, spec());
        let (pbc, _) = t.connect(b, c, spec());

        t.fail_link(a, pab);
        let only_ab = t.failure_set_id();
        t.restore_link(a, pab);
        t.fail_link(b, pbc);
        let only_bc = t.failure_set_id();
        t.fail_link(a, pab);
        let both = t.failure_set_id();

        assert_eq!(both.count, 2);
        assert_eq!(both.fingerprint, only_ab.fingerprint ^ only_bc.fingerprint);
        // Singleton fingerprints are the mixed cable hashes themselves —
        // nonzero, distinct, and wiped back out by the inverse transition.
        assert_ne!(only_ab.fingerprint, 0);
        assert_ne!(only_ab.fingerprint, only_bc.fingerprint);
        t.restore_link(b, pbc);
        assert_eq!(t.failure_set_id(), only_ab);
    }

    #[test]
    #[should_panic(expected = "nonexistent port")]
    fn fail_link_on_missing_port_panics_loudly() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        t.connect(a, b, spec());
        t.fail_link(a, PortId(7));
    }

    #[test]
    fn healthy_bfs_skips_failed_links() {
        // Ring of 4: kill one link, distances must go the long way round.
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_switch(0, 0, i)).collect();
        let mut first_port = None;
        for i in 0..4 {
            let (p, _) = t.connect(n[i], n[(i + 1) % 4], spec());
            first_port.get_or_insert((n[i], p));
        }
        assert_eq!(t.bfs_hops_healthy(n[0]), vec![0, 1, 2, 1]);
        let (fn0, fp0) = first_port.unwrap();
        t.fail_link(fn0, fp0); // kills 0 <-> 1
        assert_eq!(t.bfs_hops_healthy(n[0]), vec![0, 3, 2, 1]);
        // The failure-blind BFS still sees the pristine ring.
        assert_eq!(t.bfs_hops(n[0]), vec![0, 1, 2, 1]);
    }

    #[test]
    fn cable_counting() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        let c = t.add_switch(0, 0, 2);
        t.connect(
            a,
            b,
            LinkSpec {
                cable: Cable::Aoc,
                ..spec()
            },
        );
        t.connect(b, c, spec());
        assert_eq!(t.count_cables(Cable::Aoc), 1);
        assert_eq!(t.count_cables(Cable::Dac), 1);
        assert_eq!(t.count_cables(Cable::Pcb), 0);
        assert_eq!(t.count_switches(), 3);
    }
}
