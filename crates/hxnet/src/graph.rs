//! Port-level network multigraph.
//!
//! A [`Topology`] is an explicit list of nodes; each node owns an ordered
//! list of ports, and each port is wired to exactly one peer port through a
//! full-duplex [`Link`]. Accelerators and switches are both nodes; in
//! HammingMesh accelerators forward packets themselves (the per-plane 4x4
//! switch of Fig. 3), so the simulator treats the two kinds uniformly and
//! only the routing algorithms care about the distinction.

use std::fmt;

/// Identifier of a node (accelerator or switch) inside one [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a port, local to its owning node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl NodeId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One endpoint of a link: a specific port on a specific node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortRef {
    pub node: NodeId,
    pub port: PortId,
}

/// Physical cable technology of a link. Drives the cost model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cable {
    /// Short metal trace on a PCB board — free in the cost model (§III-C).
    Pcb,
    /// 5 m Direct Attach Copper cable ($272 in App. E).
    Dac,
    /// 20 m Active optical Cable ($603 in App. E).
    Aoc,
}

/// Physical parameters of a link, set by the topology builders.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Propagation latency in picoseconds.
    pub latency_ps: u64,
    /// Serialization rate: picoseconds per byte (20 ps/B at 400 Gb/s).
    pub ps_per_byte: f64,
    pub cable: Cable,
}

/// A directed half of a full-duplex link, stored from the sender's side.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    pub peer: PortRef,
    pub spec: LinkSpec,
    /// The link has been killed by fault injection ([`Topology::fail_link`]).
    /// Failure-aware routers route around it.
    pub failed: bool,
}

/// Role of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// An accelerator with an attached NIC. `rank` is the global rank of
    /// this accelerator (index into [`Network::endpoints`]).
    Accelerator { rank: u32 },
    /// A packet switch. `level` distinguishes tree levels (0 = leaf level),
    /// `group`/`pos` are generic coordinates the builders use for labeling.
    Switch { level: u8, group: u32, pos: u32 },
}

impl NodeKind {
    #[inline]
    pub fn is_accelerator(self) -> bool {
        matches!(self, NodeKind::Accelerator { .. })
    }

    #[inline]
    pub fn is_switch(self) -> bool {
        matches!(self, NodeKind::Switch { .. })
    }
}

/// A node together with its ports. Ports are created by [`Topology::connect`]
/// in call order, so builders control port numbering.
#[derive(Clone, Debug)]
pub struct Node {
    pub kind: NodeKind,
    pub ports: Vec<Link>,
}

/// The port-level multigraph.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
}

impl Topology {
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(nodes),
        }
    }

    /// Add a node with no ports yet; returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            ports: Vec::new(),
        });
        id
    }

    pub fn add_accelerator(&mut self, rank: u32) -> NodeId {
        self.add_node(NodeKind::Accelerator { rank })
    }

    pub fn add_switch(&mut self, level: u8, group: u32, pos: u32) -> NodeId {
        self.add_node(NodeKind::Switch { level, group, pos })
    }

    /// Connect two nodes with a new full-duplex link; allocates one new port
    /// on each side and returns them as `(port_on_a, port_on_b)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (PortId, PortId) {
        assert_ne!(a, b, "self-loops are not allowed");
        let pa = PortId(self.nodes[a.idx()].ports.len() as u16);
        let pb = PortId(self.nodes[b.idx()].ports.len() as u16);
        self.nodes[a.idx()].ports.push(Link {
            peer: PortRef { node: b, port: pb },
            spec,
            failed: false,
        });
        self.nodes[b.idx()].ports.push(Link {
            peer: PortRef { node: a, port: pa },
            spec,
            failed: false,
        });
        (pa, pb)
    }

    /// Fault injection: mark the full-duplex link at `(node, port)` as
    /// failed, in both directions. Failure-aware routers (HammingMesh)
    /// stop offering the link as a candidate and route around it.
    pub fn fail_link(&mut self, node: NodeId, port: PortId) {
        let peer = self.peer(node, port);
        self.nodes[node.idx()].ports[port.idx()].failed = true;
        self.nodes[peer.node.idx()].ports[peer.port.idx()].failed = true;
    }

    /// Undo [`Topology::fail_link`] (repair), in both directions.
    pub fn restore_link(&mut self, node: NodeId, port: PortId) {
        let peer = self.peer(node, port);
        self.nodes[node.idx()].ports[port.idx()].failed = false;
        self.nodes[peer.node.idx()].ports[peer.port.idx()].failed = false;
    }

    /// Whether the directed link out of `(node, port)` is failed.
    #[inline]
    pub fn link_failed(&self, node: NodeId, port: PortId) -> bool {
        self.nodes[node.idx()].ports[port.idx()].failed
    }

    /// Number of failed full-duplex links (each counted once).
    pub fn count_failed_links(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.ports.iter())
            .filter(|l| l.failed)
            .count()
            / 2
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.idx()].kind
    }

    #[inline]
    pub fn link(&self, node: NodeId, port: PortId) -> &Link {
        &self.nodes[node.idx()].ports[port.idx()]
    }

    #[inline]
    pub fn peer(&self, node: NodeId, port: PortId) -> PortRef {
        self.nodes[node.idx()].ports[port.idx()].peer
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn num_ports(&self, node: NodeId) -> usize {
        self.nodes[node.idx()].ports.len()
    }

    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Total number of full-duplex links (each counted once).
    pub fn num_links(&self) -> usize {
        self.nodes.iter().map(|n| n.ports.len()).sum::<usize>() / 2
    }

    /// Count links of a given cable kind (each full-duplex link once).
    pub fn count_cables(&self, cable: Cable) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.ports.iter())
            .filter(|l| l.spec.cable == cable)
            .count()
            / 2
    }

    /// Count switch nodes.
    pub fn count_switches(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_switch()).count()
    }

    /// Unweighted BFS hop distance (in links) from `src` to every node.
    /// Used by diameter verification and routing-table construction.
    pub fn bfs_hops(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.idx()] = 0;
        queue.push_back(src);
        while let Some(n) = queue.pop_front() {
            let d = dist[n.idx()];
            for link in &self.nodes[n.idx()].ports {
                let p = link.peer.node;
                if dist[p.idx()] == u32::MAX {
                    dist[p.idx()] = d + 1;
                    queue.push_back(p);
                }
            }
        }
        dist
    }

    /// Consistency check: every link's peer relation is symmetric.
    pub fn validate(&self) -> Result<(), String> {
        for (id, node) in self.nodes.iter().enumerate() {
            for (pidx, link) in node.ports.iter().enumerate() {
                let peer = link.peer;
                let back = self
                    .nodes
                    .get(peer.node.idx())
                    .and_then(|n| n.ports.get(peer.port.idx()))
                    .ok_or_else(|| format!("n{id}:p{pidx} points to missing {peer:?}"))?;
                if back.peer.node.idx() != id || back.peer.port.idx() != pidx {
                    return Err(format!(
                        "asymmetric link n{id}:p{pidx} <-> {:?} (peer back-ref {:?})",
                        peer, back.peer
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A built network: the graph, the rank-ordered endpoints, and the routing
/// algorithm appropriate for the topology.
pub struct Network {
    pub topo: Topology,
    /// Accelerator nodes in rank order: `endpoints[r]` is the node of rank r.
    pub endpoints: Vec<NodeId>,
    pub router: Box<dyn crate::route::Router>,
    /// Human-readable name, e.g. `"16x16 Hx2Mesh"`.
    pub name: String,
}

impl Network {
    /// Rank of an accelerator node (panics if `node` is a switch).
    pub fn rank_of(&self, node: NodeId) -> u32 {
        match self.topo.kind(node) {
            NodeKind::Accelerator { rank } => rank,
            k => panic!("rank_of called on {k:?}"),
        }
    }

    pub fn num_ranks(&self) -> usize {
        self.endpoints.len()
    }

    /// Injection bandwidth of one endpoint in bytes/ps (sum over its ports).
    pub fn injection_bytes_per_ps(&self, rank: usize) -> f64 {
        let node = self.endpoints[rank];
        self.topo
            .node(node)
            .ports
            .iter()
            .map(|l| 1.0 / l.spec.ps_per_byte)
            .sum()
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.name)
            .field("nodes", &self.topo.num_nodes())
            .field("endpoints", &self.endpoints.len())
            .field("links", &self.topo.num_links())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec {
            latency_ps: 1000,
            ps_per_byte: 20.0,
            cable: Cable::Dac,
        }
    }

    #[test]
    fn connect_is_symmetric() {
        let mut t = Topology::new();
        let a = t.add_accelerator(0);
        let b = t.add_switch(0, 0, 0);
        let (pa, pb) = t.connect(a, b, spec());
        assert_eq!(t.peer(a, pa), PortRef { node: b, port: pb });
        assert_eq!(t.peer(b, pb), PortRef { node: a, port: pa });
        t.validate().unwrap();
    }

    #[test]
    fn multi_links_get_distinct_ports() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        let (p1, _) = t.connect(a, b, spec());
        let (p2, _) = t.connect(a, b, spec());
        assert_ne!(p1, p2);
        assert_eq!(t.num_links(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_switch(0, 0, i)).collect();
        for w in n.windows(2) {
            t.connect(w[0], w[1], spec());
        }
        let d = t.bfs_hops(n[0]);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cable_counting() {
        let mut t = Topology::new();
        let a = t.add_switch(0, 0, 0);
        let b = t.add_switch(0, 0, 1);
        let c = t.add_switch(0, 0, 2);
        t.connect(
            a,
            b,
            LinkSpec {
                cable: Cable::Aoc,
                ..spec()
            },
        );
        t.connect(b, c, spec());
        assert_eq!(t.count_cables(Cable::Aoc), 1);
        assert_eq!(t.count_cables(Cable::Dac), 1);
        assert_eq!(t.count_cables(Cable::Pcb), 0);
        assert_eq!(t.count_switches(), 3);
    }
}
