//! # hxnet — network topology substrate for HammingMesh
//!
//! This crate provides the network-graph substrate used throughout the
//! HammingMesh reproduction: node/port/link types, builders for every
//! topology evaluated in the paper (HammingMesh, fat tree, Dragonfly,
//! 2D HyperX, 2D torus), and the topology-specific adaptive routing
//! algorithms of §IV-C.
//!
//! The central type is [`Topology`], an explicit port-level multigraph:
//! every node (accelerator or switch) owns a list of ports, and every port
//! is connected to exactly one peer port by a full-duplex [`Link`] with a
//! latency, a serialization rate, and a [`Cable`] kind (PCB trace, DAC,
//! AoC). Cable kinds drive the cost model in `hxcost`.
//!
//! Builders return a [`Network`], which pairs the graph with a boxed
//! [`route::Router`] implementing the deadlock-free adaptive routing for
//! that topology, plus the list of endpoint (accelerator) nodes in rank
//! order.
//!
//! ```
//! use hxnet::hammingmesh::HxMeshParams;
//!
//! // A 4x4 Hx2Mesh: 2x2 boards, 4x4 global arrangement = 64 accelerators.
//! let net = HxMeshParams::square(2, 4).build();
//! assert_eq!(net.endpoints.len(), 64);
//! ```

pub mod dragonfly;
pub mod fattree;
pub mod graph;
pub mod hammingmesh;
pub mod hyperx;
pub mod route;
pub mod torus;

pub use graph::{
    Cable, FailureSetId, Link, LinkSpec, Network, Node, NodeId, NodeKind, PortId, PortRef, Topology,
};
pub use route::Router;

/// Link rate of a single 400 Gb/s port, expressed as picoseconds per byte.
///
/// 400 Gb/s = 50 GB/s = 0.05 B/ps, i.e. 20 ps per byte.
pub const PS_PER_BYTE_400G: f64 = 20.0;

/// Cable latency used for DAC and AoC cables in the paper's SST setup (20 ns).
pub const CABLE_LATENCY_PS: u64 = 20_000;

/// On-board PCB trace latency in the paper's SST setup (1 ns).
pub const PCB_LATENCY_PS: u64 = 1_000;

/// Switch input/output buffer latency (40 ns in App. F). Charged once per
/// switch traversal by the simulator.
pub const SWITCH_LATENCY_PS: u64 = 40_000;

/// Convenience: the default [`LinkSpec`] for a 400 Gb/s cable link.
pub fn cable_link(cable: Cable) -> LinkSpec {
    LinkSpec {
        latency_ps: CABLE_LATENCY_PS,
        ps_per_byte: PS_PER_BYTE_400G,
        cable,
    }
}

/// Convenience: the default [`LinkSpec`] for a 400 Gb/s on-board PCB trace.
pub fn pcb_link() -> LinkSpec {
    LinkSpec {
        latency_ps: PCB_LATENCY_PS,
        ps_per_byte: PS_PER_BYTE_400G,
        cable: Cable::Pcb,
    }
}
