//! HammingMesh (HxMesh) topology and routing — the paper's contribution.
//!
//! A 2D HammingMesh connects `x*y` boards of `a*b` accelerators each
//! (Fig. 3). Accelerators on a board form a 2D mesh of free PCB traces;
//! board edges connect into global networks: one per **accelerator line**
//! (the E/W ports of accelerator row `r` across all boards of board row
//! `bi`, and the N/S ports of accelerator column `c` across board column
//! `bj`) — "each plane fully-connected in x / y". A line's `2x` (or `2y`)
//! ports are connected by a single 64-port switch when they fit, otherwise
//! by a two-level fat tree (App. C), optionally tapered (§III-F).
//!
//! Each accelerator forwards packets within a plane through its four ports
//! (E, W, N, S) like a small 4x4 switch; we build and simulate a single
//! plane, as the paper does (§III-D).
//!
//! Routing follows §IV-C: adaptive minimal within boards using the
//! north-last turn model, up*/down* inside the global trees, and at most
//! one intermediate board when source and destination differ in both board
//! coordinates. Deadlock freedom uses the paper's scheme (§IV-C3): the VC
//! is incremented every time a packet jumps from a board into a global
//! network, which bounds the scheme at three VCs because any path crosses
//! at most two trees (wrap-around shortcuts are suppressed once the last
//! VC is reached).

use crate::graph::{Cable, Network, NodeId, PortId, Topology};
use crate::route::{FailoverTable, Hop, LoadProbe, Router, UpDownTable};
use crate::{cable_link, pcb_link};
use std::collections::BTreeMap;

/// Compass direction of an accelerator port within a plane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    East = 0,
    West = 1,
    North = 2,
    South = 3,
}

/// Coordinates of an accelerator: board row/column in the global
/// arrangement, and row/column within the board.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct HxCoord {
    /// Board row, `0..y`.
    pub bi: u16,
    /// Board column, `0..x`.
    pub bj: u16,
    /// Accelerator row within the board, `0..a`.
    pub r: u16,
    /// Accelerator column within the board, `0..b`.
    pub c: u16,
}

/// Parameters of an `x` x `y` HxMesh with `a` x `b` boards.
#[derive(Clone, Debug)]
pub struct HxMeshParams {
    /// Rows per board.
    pub a: usize,
    /// Columns per board.
    pub b: usize,
    /// Boards per row of the global arrangement (number of board columns).
    pub x: usize,
    /// Boards per column of the global arrangement (number of board rows).
    pub y: usize,
    /// Fraction of global-tree up links removed (§III-F). 0.0 = full
    /// bandwidth. Ignored when a line fits in a single switch.
    pub taper: f64,
    /// Switch radix (64 in the paper).
    pub radix: usize,
}

impl HxMeshParams {
    /// Square HxaMesh on an `n` x `n` board grid, e.g. `square(2, 16)` is
    /// the paper's small-cluster 16x16 Hx2Mesh.
    pub fn square(board: usize, n: usize) -> Self {
        Self {
            a: board,
            b: board,
            x: n,
            y: n,
            taper: 0.0,
            radix: 64,
        }
    }

    /// The paper's small-cluster 16x16 Hx2Mesh (1,024 accelerators).
    pub fn small_hx2() -> Self {
        Self::square(2, 16)
    }

    /// The paper's small-cluster 8x8 Hx4Mesh (1,024 accelerators).
    pub fn small_hx4() -> Self {
        Self::square(4, 8)
    }

    /// The paper's large-cluster 64x64 Hx2Mesh (16,384 accelerators).
    pub fn large_hx2() -> Self {
        Self::square(2, 64)
    }

    /// The paper's large-cluster 32x32 Hx4Mesh (16,384 accelerators).
    pub fn large_hx4() -> Self {
        Self::square(4, 32)
    }

    pub fn num_accelerators(&self) -> usize {
        self.a * self.b * self.x * self.y
    }

    /// Ports of one row line (E+W of one accelerator row across the board
    /// row).
    pub fn row_line_ports(&self) -> usize {
        2 * self.x
    }

    /// Ports of one column line.
    pub fn col_line_ports(&self) -> usize {
        2 * self.y
    }

    /// Rank of the accelerator at a coordinate: row-major over the global
    /// accelerator grid of `(y*a)` rows by `(x*b)` columns.
    pub fn rank_of(&self, co: HxCoord) -> usize {
        let gi = co.bi as usize * self.a + co.r as usize;
        let gj = co.bj as usize * self.b + co.c as usize;
        gi * (self.x * self.b) + gj
    }

    /// Inverse of [`HxMeshParams::rank_of`].
    pub fn coord_of(&self, rank: usize) -> HxCoord {
        let cols = self.x * self.b;
        let (gi, gj) = (rank / cols, rank % cols);
        HxCoord {
            bi: (gi / self.a) as u16,
            bj: (gj / self.b) as u16,
            r: (gi % self.a) as u16,
            c: (gj % self.b) as u16,
        }
    }

    /// Build the single-plane topology and its router.
    pub fn build(&self) -> Network {
        assert!(self.a >= 1 && self.b >= 1 && self.x >= 1 && self.y >= 1);
        let n = self.num_accelerators();
        let mut topo = Topology::with_capacity(n + self.x + self.y);
        let mut endpoints = vec![NodeId(0); n];
        let mut coords = vec![
            HxCoord {
                bi: 0,
                bj: 0,
                r: 0,
                c: 0
            };
            n
        ];
        let acc_index = |bi: usize, bj: usize, r: usize, c: usize| {
            ((bi * self.x + bj) * self.a + r) * self.b + c
        };
        let mut acc_at = vec![NodeId(0); n];
        for bi in 0..self.y {
            for bj in 0..self.x {
                for r in 0..self.a {
                    for c in 0..self.b {
                        let co = HxCoord {
                            bi: bi as u16,
                            bj: bj as u16,
                            r: r as u16,
                            c: c as u16,
                        };
                        let rank = self.rank_of(co);
                        let node = topo.add_accelerator(rank as u32);
                        endpoints[rank] = node;
                        coords[node.idx()] = co;
                        acc_at[acc_index(bi, bj, r, c)] = node;
                    }
                }
            }
        }

        // Per-accelerator port ids in E, W, N, S order; filled as we wire.
        let mut ports = vec![[PortId(u16::MAX); 4]; n];

        // On-board PCB mesh links.
        for bi in 0..self.y {
            for bj in 0..self.x {
                for r in 0..self.a {
                    for c in 0..self.b.saturating_sub(1) {
                        let west = acc_at[acc_index(bi, bj, r, c)];
                        let east = acc_at[acc_index(bi, bj, r, c + 1)];
                        let (pw, pe) = topo.connect(west, east, pcb_link());
                        ports[west.idx()][Dir::East as usize] = pw;
                        ports[east.idx()][Dir::West as usize] = pe;
                    }
                }
                for c in 0..self.b {
                    for r in 0..self.a.saturating_sub(1) {
                        let north = acc_at[acc_index(bi, bj, r, c)];
                        let south = acc_at[acc_index(bi, bj, r + 1, c)];
                        let (pn, ps) = topo.connect(north, south, pcb_link());
                        ports[north.idx()][Dir::South as usize] = pn;
                        ports[south.idx()][Dir::North as usize] = ps;
                    }
                }
            }
        }

        // Global line networks. Row lines use DAC endpoint cables, column
        // lines AoC (§III-D layout); inter-switch links are always AoC.
        let mut leaves_all: Vec<NodeId> = Vec::new();
        let mut spines_all: Vec<NodeId> = Vec::new();
        let mut up_boundary: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut switch_net: BTreeMap<NodeId, NetRef> = BTreeMap::new();
        let mut group = 0u32;

        let mut build_line = |topo: &mut Topology,
                              ports: &mut Vec<[PortId; 4]>,
                              attachments: Vec<(NodeId, Dir)>,
                              cable: Cable,
                              net: NetRef| {
            let q = attachments.len();
            group += 1;
            if q <= self.radix {
                // Single crossbar switch for the whole line.
                let sw = topo.add_switch(0, group, 0);
                for (acc, dir) in attachments {
                    let (pa, _) = topo.connect(acc, sw, cable_link(cable));
                    ports[acc.idx()][dir as usize] = pa;
                }
                up_boundary.insert(sw, topo.num_ports(sw));
                switch_net.insert(sw, net);
                leaves_all.push(sw);
            } else {
                // Two-level fat tree over the line, optionally tapered.
                let down = self.radix / 2;
                let nleaves = q.div_ceil(down);
                let up = (((self.radix / 2) as f64) * (1.0 - self.taper))
                    .round()
                    .max(1.0) as usize;
                let nspines = (nleaves * up).div_ceil(self.radix).max(1);
                let leaves: Vec<NodeId> = (0..nleaves)
                    .map(|i| topo.add_switch(0, group, i as u32))
                    .collect();
                let spines: Vec<NodeId> = (0..nspines)
                    .map(|i| topo.add_switch(1, group, i as u32))
                    .collect();
                for (k, (acc, dir)) in attachments.into_iter().enumerate() {
                    let leaf = leaves[k / down];
                    let (pa, _) = topo.connect(acc, leaf, cable_link(cable));
                    ports[acc.idx()][dir as usize] = pa;
                }
                for (li, &leaf) in leaves.iter().enumerate() {
                    up_boundary.insert(leaf, topo.num_ports(leaf));
                    for j in 0..up {
                        let spine = spines[(li + j) % nspines];
                        topo.connect(leaf, spine, cable_link(Cable::Aoc));
                    }
                }
                for &s in &spines {
                    up_boundary.insert(s, topo.num_ports(s));
                    switch_net.insert(s, net);
                }
                for &l in &leaves {
                    switch_net.insert(l, net);
                }
                leaves_all.extend(leaves);
                spines_all.extend(spines);
            }
        };

        for bi in 0..self.y {
            for r in 0..self.a {
                let mut attach = Vec::with_capacity(self.row_line_ports());
                for bj in 0..self.x {
                    attach.push((acc_at[acc_index(bi, bj, r, 0)], Dir::West));
                    attach.push((acc_at[acc_index(bi, bj, r, self.b - 1)], Dir::East));
                }
                build_line(
                    &mut topo,
                    &mut ports,
                    attach,
                    Cable::Dac,
                    NetRef::RowLine {
                        bi: bi as u16,
                        r: r as u16,
                    },
                );
            }
        }
        for bj in 0..self.x {
            for c in 0..self.b {
                let mut attach = Vec::with_capacity(self.col_line_ports());
                for bi in 0..self.y {
                    attach.push((acc_at[acc_index(bi, bj, 0, c)], Dir::North));
                    attach.push((acc_at[acc_index(bi, bj, self.a - 1, c)], Dir::South));
                }
                build_line(
                    &mut topo,
                    &mut ports,
                    attach,
                    Cable::Aoc,
                    NetRef::ColLine {
                        bj: bj as u16,
                        c: c as u16,
                    },
                );
            }
        }

        let levels = vec![leaves_all, spines_all];
        let table = UpDownTable::build(
            &topo,
            &levels,
            |sw, p| p.idx() >= up_boundary[&sw],
            |sw, p| {
                let peer = topo.peer(sw, p).node;
                topo.kind(peer).is_accelerator().then_some(peer)
            },
        );

        let router = HxMeshRouter {
            a: self.a as u16,
            b: self.b as u16,
            x: self.x as u16,
            y: self.y as u16,
            coords,
            ports,
            acc_at,
            table,
            switch_net,
            failover: FailoverTable::new(),
        };
        Network {
            topo,
            endpoints,
            router: Box::new(router),
            name: format!("{}x{} Hx{}x{}Mesh", self.x, self.y, self.a, self.b),
        }
    }
}

/// Which global line network a switch belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NetRef {
    /// E/W network of accelerator row `r` across board row `bi`.
    RowLine { bi: u16, r: u16 },
    /// N/S network of accelerator column `c` across board column `bj`.
    ColLine { bj: u16, c: u16 },
}

/// Adaptive minimal HxMesh routing (§IV-C) with the 3-VC deadlock scheme.
pub struct HxMeshRouter {
    a: u16,
    b: u16,
    x: u16,
    y: u16,
    /// Coordinates per accelerator node index.
    coords: Vec<HxCoord>,
    /// E,W,N,S port ids per accelerator node index.
    ports: Vec<[PortId; 4]>,
    /// Accelerator node at flattened (bi, bj, r, c).
    acc_at: Vec<NodeId>,
    table: UpDownTable,
    switch_net: BTreeMap<NodeId, NetRef>,
    /// Safety net for fault injection beyond the structured handling
    /// below: guarantees progress and failed-link avoidance for *any*
    /// failure set (e.g. both exits of a board line cut at once), not
    /// just the single-cable cases §IV-C's adaptivity covers.
    failover: FailoverTable,
}

/// Highest VC of the 3-VC scheme; wrap shortcuts are disabled here.
const LAST_VC: u8 = 2;

impl HxMeshRouter {
    /// `(a, b, x, y)` dimensions of the mesh this router serves.
    pub fn dims(&self) -> (u16, u16, u16, u16) {
        (self.a, self.b, self.x, self.y)
    }

    #[inline]
    fn acc(&self, bi: u16, bj: u16, r: u16, c: u16) -> NodeId {
        let (a, b, x) = (self.a as usize, self.b as usize, self.x as usize);
        self.acc_at[((bi as usize * x + bj as usize) * a + r as usize) * b + c as usize]
    }

    pub fn coord(&self, node: NodeId) -> HxCoord {
        self.coords[node.idx()]
    }

    /// Best-case walk length from a tree entry edge to offset `t` on a line
    /// of `len` (the tree can deliver to either end of the line).
    #[inline]
    fn edge_walk(t: u16, len: u16) -> u32 {
        (t as u32).min((len - 1 - t) as u32)
    }

    /// The board-edge accelerator whose `dir`-side cable the `dir` exit of
    /// `co`'s line uses, and that cable's port.
    fn edge_cable(&self, co: HxCoord, dir: Dir) -> (NodeId, PortId) {
        let node = match dir {
            Dir::West => self.acc(co.bi, co.bj, co.r, 0),
            Dir::East => self.acc(co.bi, co.bj, co.r, self.b - 1),
            Dir::North => self.acc(co.bi, co.bj, 0, co.c),
            Dir::South => self.acc(co.bi, co.bj, self.a - 1, co.c),
        };
        (node, self.ports[node.idx()][dir as usize])
    }

    /// Whether the global cable used by the `dir` exit of `co`'s line is
    /// healthy (fault injection, [`Topology::fail_link`]).
    fn exit_ok(&self, topo: &Topology, co: HxCoord, dir: Dir) -> bool {
        let (node, port) = self.edge_cable(co, dir);
        !topo.link_failed(node, port)
    }

    /// Minimal remaining distance along one board line with optional
    /// wrap-around through the global line network (2 cable hops + edge
    /// walk).
    fn line_dist(p: u16, t: u16, len: u16, wrap_ok: bool) -> u32 {
        let direct = (p as i32 - t as i32).unsigned_abs();
        if !wrap_ok || len == 1 {
            return direct;
        }
        let e = Self::edge_walk(t, len);
        direct
            .min(p as u32 + 2 + e)
            .min((len - 1 - p) as u32 + 2 + e)
    }

    /// Emit the minimal first hops along one line: `neg`/`pos` are the port
    /// slots for decreasing/increasing coordinate; edge ports double as
    /// tree ports (VC bump). `wrap_ok` allows the wrap-around through the
    /// global line network (caller combines the VC bound with line health).
    #[allow(clippy::too_many_arguments)]
    fn line_candidates(
        &self,
        node: NodeId,
        p: u16,
        t: u16,
        len: u16,
        neg: Dir,
        pos: Dir,
        vc: u8,
        wrap_ok: bool,
        out: &mut Vec<Hop>,
    ) {
        let d = Self::line_dist(p, t, len, wrap_ok);
        debug_assert!(d > 0);
        let e = Self::edge_walk(t, len);
        // Negative direction.
        let cost_neg = if p > 0 {
            1 + Self::line_dist(p - 1, t, len, wrap_ok)
        } else if wrap_ok {
            2 + e // tree port at the edge
        } else {
            u32::MAX
        };
        if cost_neg == d {
            let port = self.ports[node.idx()][neg as usize];
            let nvc = if p == 0 { vc + 1 } else { vc };
            out.push(Hop { port, vc: nvc });
        }
        // Positive direction.
        let cost_pos = if p < len - 1 {
            1 + Self::line_dist(p + 1, t, len, wrap_ok)
        } else if wrap_ok {
            2 + e
        } else {
            u32::MAX
        };
        if cost_pos == d {
            let port = self.ports[node.idx()][pos as usize];
            let nvc = if p == len - 1 { vc + 1 } else { vc };
            out.push(Hop { port, vc: nvc });
        }
    }

    /// Candidates for leaving the board through the row (E/W) network of
    /// the current accelerator row: adaptive toward the nearer edge,
    /// skipping edges whose global cable has failed (unless both have, in
    /// which case health is ignored — the line is unreachable either way).
    fn exit_row_candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        co: HxCoord,
        vc: u8,
        out: &mut Vec<Hop>,
    ) {
        let mut ok_w = self.exit_ok(topo, co, Dir::West);
        let mut ok_e = self.exit_ok(topo, co, Dir::East);
        if !ok_w && !ok_e {
            (ok_w, ok_e) = (true, true);
        }
        if self.b == 1 {
            // Both E and W are ports into the same row network.
            for (dir, ok) in [(Dir::West, ok_w), (Dir::East, ok_e)] {
                if ok {
                    let port = self.ports[node.idx()][dir as usize];
                    out.push(Hop {
                        port,
                        vc: (vc + 1).min(LAST_VC),
                    });
                }
            }
            return;
        }
        let cost_w = if ok_w { co.c as u32 } else { u32::MAX };
        let cost_e = if ok_e {
            (self.b - 1 - co.c) as u32
        } else {
            u32::MAX
        };
        let best = cost_w.min(cost_e);
        if cost_w == best {
            let port = self.ports[node.idx()][Dir::West as usize];
            let nvc = if co.c == 0 { (vc + 1).min(LAST_VC) } else { vc };
            out.push(Hop { port, vc: nvc });
        }
        if cost_e == best {
            let port = self.ports[node.idx()][Dir::East as usize];
            let nvc = if co.c == self.b - 1 {
                (vc + 1).min(LAST_VC)
            } else {
                vc
            };
            out.push(Hop { port, vc: nvc });
        }
    }

    /// Candidates for leaving the board through the column (N/S) network of
    /// the current accelerator column. `allow_north` enforces the
    /// north-last turn restriction (§IV-C3). Edges with failed global
    /// cables are skipped like in [`HxMeshRouter::exit_row_candidates`].
    fn exit_col_candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        co: HxCoord,
        vc: u8,
        allow_north: bool,
        out: &mut Vec<Hop>,
    ) {
        let mut ok_n = self.exit_ok(topo, co, Dir::North);
        let mut ok_s = self.exit_ok(topo, co, Dir::South);
        if !ok_n && !ok_s {
            (ok_n, ok_s) = (true, true);
        }
        if self.a == 1 {
            // Both N and S are ports into the same column network.
            for (dir, ok) in [(Dir::North, ok_n), (Dir::South, ok_s)] {
                if ok {
                    let port = self.ports[node.idx()][dir as usize];
                    out.push(Hop {
                        port,
                        vc: (vc + 1).min(LAST_VC),
                    });
                }
            }
            return;
        }
        let cost_n = if ok_n { co.r as u32 } else { u32::MAX };
        let cost_s = if ok_s {
            (self.a - 1 - co.r) as u32
        } else {
            u32::MAX
        };
        let best = if allow_north {
            cost_n.min(cost_s)
        } else {
            cost_s
        };
        if allow_north && cost_n == best {
            let port = self.ports[node.idx()][Dir::North as usize];
            let nvc = if co.r == 0 { (vc + 1).min(LAST_VC) } else { vc };
            out.push(Hop { port, vc: nvc });
        }
        if cost_s == best && best != u32::MAX {
            let port = self.ports[node.idx()][Dir::South as usize];
            let nvc = if co.r == self.a - 1 {
                (vc + 1).min(LAST_VC)
            } else {
                vc
            };
            out.push(Hop { port, vc: nvc });
        }
    }

    /// Entry accelerators through which the line network `net` delivers a
    /// packet heading for `t`: the target board's edge nodes on this line.
    /// Entries whose global cable failed are skipped, unless that would
    /// leave none.
    fn entries(&self, topo: &Topology, net: NetRef, t: HxCoord, out: &mut Vec<NodeId>) {
        let before = out.len();
        match net {
            NetRef::RowLine { bi, r } => {
                for (c, dir) in [(0, Dir::West), (self.b - 1, Dir::East)] {
                    let node = self.acc(bi, t.bj, r, c);
                    if !topo.link_failed(node, self.ports[node.idx()][dir as usize])
                        && !out.contains(&node)
                    {
                        out.push(node);
                    }
                }
                if out.len() == before {
                    out.push(self.acc(bi, t.bj, r, 0));
                }
            }
            NetRef::ColLine { bj, c } => {
                for (r, dir) in [(0, Dir::North), (self.a - 1, Dir::South)] {
                    let node = self.acc(t.bi, bj, r, c);
                    if !topo.link_failed(node, self.ports[node.idx()][dir as usize])
                        && !out.contains(&node)
                    {
                        out.push(node);
                    }
                }
                if out.len() == before {
                    out.push(self.acc(t.bi, bj, 0, c));
                }
            }
        }
    }
    /// The structured §IV-C candidate set (board lines, exits, trees),
    /// locally failure-aware for single-cable cases; `candidates` runs
    /// it through the [`FailoverTable`] whenever any link is failed.
    fn structured_candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        if let Some(&net) = self.switch_net.get(&node) {
            // Global-network switch: up*/down* toward the entry accelerators,
            // skipping failed links as long as a healthy candidate remains.
            let t = self.coords[target.idx()];
            let mut entries = Vec::with_capacity(2);
            self.entries(topo, net, t, &mut entries);
            let mut produced = false;
            for e in &entries {
                let ports = self.table.down_ports(node, *e);
                for &port in ports {
                    if !topo.link_failed(node, port) && !out.iter().any(|h| h.port == port) {
                        out.push(Hop { port, vc });
                        produced = true;
                    }
                }
            }
            if !produced {
                // Not reachable going down from here: go up.
                for &port in self.table.up_ports(node) {
                    if !topo.link_failed(node, port) {
                        out.push(Hop { port, vc });
                    }
                }
            }
            if out.is_empty() {
                // Every healthy option is gone (isolating failure): fall
                // back to the failure-blind candidate set so the contract
                // of a non-empty set when node != target holds.
                for e in &entries {
                    for &port in self.table.down_ports(node, *e) {
                        if !out.iter().any(|h| h.port == port) {
                            out.push(Hop { port, vc });
                        }
                    }
                }
                if out.is_empty() {
                    out.extend(
                        self.table
                            .up_ports(node)
                            .iter()
                            .map(|&port| Hop { port, vc }),
                    );
                }
            }
            debug_assert!(!out.is_empty(), "tree switch with no candidates");
            return;
        }

        debug_assert!(topo.kind(node).is_accelerator());
        let co = self.coords[node.idx()];
        let t = self.coords[target.idx()];

        if co.bi == t.bi && co.bj == t.bj {
            // Same board: X then Y (north-last), wraps below LAST_VC and
            // only while both of the line's edge cables are healthy.
            if co.c != t.c {
                let wrap = vc < LAST_VC
                    && self.exit_ok(topo, co, Dir::West)
                    && self.exit_ok(topo, co, Dir::East);
                self.line_candidates(node, co.c, t.c, self.b, Dir::West, Dir::East, vc, wrap, out);
            } else {
                debug_assert_ne!(co.r, t.r);
                let wrap = vc < LAST_VC
                    && self.exit_ok(topo, co, Dir::North)
                    && self.exit_ok(topo, co, Dir::South);
                self.line_candidates(
                    node,
                    co.r,
                    t.r,
                    self.a,
                    Dir::North,
                    Dir::South,
                    vc,
                    wrap,
                    out,
                );
            }
        } else if co.bi == t.bi {
            // Same board row: leave through this accelerator row's network;
            // the row fix-up (to t.r) can also start early going south.
            self.exit_row_candidates(topo, node, co, vc, out);
            if t.r > co.r {
                let port = self.ports[node.idx()][Dir::South as usize];
                out.push(Hop { port, vc });
            }
        } else if co.bj == t.bj {
            // Same board column: leave through this accelerator column's
            // network; the column fix-up (to t.c) may happen first — and
            // must, before any northward move (north-last).
            let need_ew = co.c != t.c;
            if need_ew {
                let dir = if t.c > co.c { Dir::East } else { Dir::West };
                let port = self.ports[node.idx()][dir as usize];
                out.push(Hop { port, vc });
            }
            self.exit_col_candidates(topo, node, co, vc, !need_ew, out);
        } else {
            // Different row and column: row dimension first (the
            // column-first alternative is expressed via a waypoint).
            self.exit_row_candidates(topo, node, co, vc, out);
        }
    }
}

impl Router for HxMeshRouter {
    fn num_vcs(&self) -> u8 {
        3
    }

    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        if vc >= self.num_vcs() {
            // Escape VC: sticky failure-epoch routing (see FailoverTable).
            self.failover.escape_candidates(topo, node, vc, target, out);
            return;
        }
        if node == target {
            return;
        }
        self.structured_candidates(topo, node, vc, target, out);
        if topo.has_failures() {
            self.failover
                .filter(topo, node, self.num_vcs(), target, out);
        }
    }

    fn select_waypoint(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        probe: &dyn LoadProbe,
        rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        let s = self.coords[src.idx()];
        let d = self.coords[dst.idx()];
        if s.bi == d.bi || s.bj == d.bj {
            return None;
        }
        // Under fault injection, only offer the column-first class when
        // the failure set leaves both phases of it routable.
        if topo.has_failures() {
            let w = self.acc(d.bi, s.bj, d.r, d.c);
            if !(self.failover.reachable(topo, src, w) && self.failover.reachable(topo, w, dst)) {
                return None;
            }
        }
        // Choose row-first (no waypoint) or column-first (waypoint on the
        // board (d.bi, s.bj)) by comparing local queue occupancy of the two
        // exits, with a random tie-break — a UGAL-style local decision.
        let node = src;
        let row_q: u64 = [Dir::East, Dir::West]
            .iter()
            .map(|&dir| probe.queued_bytes(node, self.ports[node.idx()][dir as usize]))
            .min()
            .unwrap_or(0);
        let col_q: u64 = [Dir::North, Dir::South]
            .iter()
            .map(|&dir| probe.queued_bytes(node, self.ports[node.idx()][dir as usize]))
            .min()
            .unwrap_or(0);
        let column_first = match row_q.cmp(&col_q) {
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => (rng.next_u32() & 1) == 1,
        };
        if column_first {
            Some(self.acc(d.bi, s.bj, d.r, d.c))
        } else {
            None
        }
    }

    fn waypoint_options(&self, topo: &Topology, src: NodeId, dst: NodeId, out: &mut Vec<NodeId>) {
        // Diagonal traffic has exactly two path classes: row-first (the
        // direct candidates) and column-first, expressed as a waypoint on
        // the board (d.bi, s.bj) — mirrors select_waypoint's option set,
        // including its fault-injection reachability guard (so the flow
        // engine never builds a subflow through a cut-off board).
        let s = self.coords[src.idx()];
        let d = self.coords[dst.idx()];
        if s.bi != d.bi && s.bj != d.bj {
            let w = self.acc(d.bi, s.bj, d.r, d.c);
            if !topo.has_failures()
                || (self.failover.reachable(topo, src, w) && self.failover.reachable(topo, w, dst))
            {
                out.push(w);
            }
        }
    }

    fn waypoint_reached(&self, _topo: &Topology, node: NodeId, waypoint: NodeId) -> bool {
        if node == waypoint {
            return true;
        }
        // Any accelerator on the waypoint's board completes the phase.
        if node.idx() >= self.coords.len() {
            return false; // switch
        }
        let a = self.coords[node.idx()];
        let w = self.coords[waypoint.idx()];
        a.bi == w.bi && a.bj == w.bj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn walk(net: &Network, src: usize, dst: usize, max_hops: u32) -> u32 {
        let (s, d) = (net.endpoints[src], net.endpoints[dst]);
        let mut node = s;
        let mut vc = 0u8;
        let mut hops = 0;
        while node != d {
            let mut cand = Vec::new();
            net.router.candidates(&net.topo, node, vc, d, &mut cand);
            assert!(!cand.is_empty(), "stuck at {node:?} (vc {vc}) toward {d:?}");
            let hop = cand[0];
            node = net.topo.peer(node, hop.port).node;
            vc = hop.vc;
            hops += 1;
            assert!(hops <= max_hops, "path too long {s:?}->{d:?} ({hops} hops)");
        }
        hops
    }

    #[test]
    fn counts_match_appendix_c_hx2() {
        // 16x16 Hx2Mesh: one switch per line x (16 rows * 2 + 16 cols * 2)
        // would be 64, but the paper packs a board row's two lines into one
        // 64-port switch — our graph keeps one switch per line (32 ports
        // used); cable counts are identical: 1,024 DAC + 1,024 AoC/plane.
        let net = HxMeshParams::small_hx2().build();
        assert_eq!(net.endpoints.len(), 1024);
        assert_eq!(net.topo.count_switches(), 64);
        assert_eq!(net.topo.count_cables(Cable::Dac), 1024);
        assert_eq!(net.topo.count_cables(Cable::Aoc), 1024);
        net.topo.validate().unwrap();
    }

    #[test]
    fn counts_match_appendix_c_hx4() {
        // 8x8 Hx4Mesh: 512 DAC + 512 AoC per plane (App. C); the paper
        // packs 4 lines per 64-port switch (16 switches/plane), our graph
        // keeps one 16-port switch per line (64 logical switches).
        let net = HxMeshParams::small_hx4().build();
        assert_eq!(net.endpoints.len(), 1024);
        assert_eq!(net.topo.count_switches(), 64);
        assert_eq!(net.topo.count_cables(Cable::Dac), 512);
        assert_eq!(net.topo.count_cables(Cable::Aoc), 512);
    }

    #[test]
    fn every_accelerator_has_four_ports() {
        let net = HxMeshParams::square(2, 4).build();
        for &e in &net.endpoints {
            assert_eq!(net.topo.num_ports(e), 4, "{e:?}");
        }
    }

    #[test]
    fn rank_coord_roundtrip() {
        let p = HxMeshParams {
            a: 2,
            b: 3,
            x: 4,
            y: 5,
            taper: 0.0,
            radix: 64,
        };
        for rank in 0..p.num_accelerators() {
            assert_eq!(p.rank_of(p.coord_of(rank)), rank);
        }
    }

    #[test]
    fn routing_reaches_all_cases() {
        let p = HxMeshParams::square(2, 4); // 64 accels
        let net = p.build();
        walk(&net, 0, 1, 6); // same board
        walk(&net, 0, 7, 8); // same board row
        walk(
            &net,
            0,
            p.rank_of(HxCoord {
                bi: 3,
                bj: 0,
                r: 1,
                c: 0,
            }),
            8,
        ); // same column
        walk(
            &net,
            0,
            p.rank_of(HxCoord {
                bi: 3,
                bj: 3,
                r: 1,
                c: 1,
            }),
            12,
        ); // diagonal
    }

    #[test]
    fn exhaustive_pairs_on_tiny_mesh() {
        let p = HxMeshParams::square(2, 2);
        let net = p.build();
        let n = net.endpoints.len();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    walk(&net, s, d, 12);
                }
            }
        }
    }

    #[test]
    fn exhaustive_pairs_on_hx3mesh() {
        // Odd board size exercises interior nodes.
        let p = HxMeshParams::square(3, 2);
        let net = p.build();
        let n = net.endpoints.len();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    walk(&net, s, d, 16);
                }
            }
        }
    }

    #[test]
    fn hx1mesh_is_hyperx() {
        let p = HxMeshParams::square(1, 8);
        let net = p.build();
        assert_eq!(net.endpoints.len(), 64);
        for s in [0usize, 5, 63] {
            for d in [0usize, 7, 56, 62] {
                if s != d {
                    walk(&net, s, d, 8);
                }
            }
        }
    }

    #[test]
    fn large_lines_use_fat_trees() {
        // Lines of 2*40 = 80 ports > 64 -> 2-level trees on rows.
        let p = HxMeshParams {
            a: 2,
            b: 2,
            x: 40,
            y: 2,
            taper: 0.0,
            radix: 64,
        };
        let net = p.build();
        assert!(net.topo.count_switches() > 4 * 2 + 80);
        walk(&net, 0, net.endpoints.len() - 1, 16);
    }

    #[test]
    fn diameter_within_paper_formula() {
        // §III-B: 2(⌊(a-1)/2⌋+⌊(b-1)/2⌋) + 2 + 2 cables for single-switch
        // lines. Verify by BFS on an 8x8 Hx4Mesh (diam 8 in Table II).
        let net = HxMeshParams::small_hx4().build();
        let d = net.topo.bfs_hops(net.endpoints[0]);
        let max = net.endpoints.iter().map(|e| d[e.idx()]).max().unwrap();
        assert!(max <= 8, "Hx4Mesh endpoint diameter {max} > 8");
    }

    #[test]
    fn waypoint_only_for_diagonal_traffic() {
        let p = HxMeshParams::square(2, 4);
        let net = p.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let probe = crate::route::ZeroLoad;
        for _ in 0..8 {
            assert!(net
                .router
                .select_waypoint(
                    &net.topo,
                    net.endpoints[0],
                    net.endpoints[1],
                    &probe,
                    &mut rng
                )
                .is_none());
        }
        let d = p.rank_of(HxCoord {
            bi: 2,
            bj: 2,
            r: 0,
            c: 0,
        });
        let mut some = 0;
        for _ in 0..32 {
            if net
                .router
                .select_waypoint(
                    &net.topo,
                    net.endpoints[0],
                    net.endpoints[d],
                    &probe,
                    &mut rng,
                )
                .is_some()
            {
                some += 1;
            }
        }
        assert!(some > 0 && some < 32, "tie-break should mix: {some}/32");
    }

    #[test]
    fn random_walks_respect_vc_bound_and_terminate() {
        let p = HxMeshParams::square(4, 4);
        let net = p.build();
        let n = net.endpoints.len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        use rand::Rng;
        for _ in 0..300 {
            let s = rng.random_range(0..n);
            let d = rng.random_range(0..n);
            if s == d {
                continue;
            }
            let (sn, dn) = (net.endpoints[s], net.endpoints[d]);
            let mut node = sn;
            let mut vc = 0u8;
            let mut hops = 0;
            while node != dn {
                let mut cand = Vec::new();
                net.router.candidates(&net.topo, node, vc, dn, &mut cand);
                assert!(!cand.is_empty(), "stuck {s}->{d} at {node:?}");
                let pick = cand[rng.random_range(0..cand.len())];
                assert!(pick.vc <= LAST_VC, "vc overflow at {node:?}");
                node = net.topo.peer(node, pick.port).node;
                vc = pick.vc;
                hops += 1;
                assert!(hops < 64, "{s}->{d} livelock");
            }
        }
    }
}
