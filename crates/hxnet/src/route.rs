//! Routing abstractions shared by all topologies.
//!
//! The simulator is routing-agnostic: at every hop it asks the topology's
//! [`Router`] for the set of minimal `(output port, next VC)` candidates and
//! picks the least-loaded one (packet-level adaptive routing, as in
//! Slingshot/InfiniBand — §IV-C). Source-side decisions that need global
//! state (Valiant bounce groups for Dragonfly, the intermediate board for
//! HammingMesh) are expressed as a *waypoint* stored in the packet header.

use crate::graph::{NodeId, PortId, Topology};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Congestion oracle the simulator exposes to routers for source-side
/// decisions (e.g. UGAL's local-queue comparison).
pub trait LoadProbe {
    /// Bytes currently queued at `node` for output `port` (all VCs).
    fn queued_bytes(&self, node: NodeId, port: PortId) -> u64;
}

/// A no-congestion probe: every queue reports empty. Used by tests and by
/// analytic consumers that only need path enumeration.
pub struct ZeroLoad;

impl LoadProbe for ZeroLoad {
    fn queued_bytes(&self, _node: NodeId, _port: PortId) -> u64 {
        0
    }
}

/// A candidate next hop: take `port`, continue on virtual channel `vc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    pub port: PortId,
    pub vc: u8,
}

/// Topology-specific deadlock-free adaptive routing.
pub trait Router: Send + Sync {
    /// Number of virtual channels this routing scheme requires.
    fn num_vcs(&self) -> u8;

    /// Append all minimal next-hop candidates for a packet currently at
    /// `node` on VC `vc`, heading for `target`, into `out`.
    ///
    /// `target` is the packet's waypoint while one is active, the final
    /// destination afterwards. Implementations must guarantee progress: the
    /// candidate set is non-empty whenever `node != target`, and following
    /// any sequence of candidates reaches `target` in finitely many hops.
    ///
    /// **Fault-injection contract** (every shipped router honors it, via
    /// [`FailoverTable`]): no candidate ever uses a link marked failed by
    /// [`Topology::fail_link`], and the progress guarantee holds as long
    /// as the current failure set leaves `target` reachable from `node`.
    /// When failures *disconnect* the pair, the candidate set is empty —
    /// the router reports unreachability instead of looping — and the
    /// simulation engines turn that into a hard error naming the pair.
    fn candidates(&self, topo: &Topology, node: NodeId, vc: u8, target: NodeId, out: &mut Vec<Hop>);

    /// Source-side path selection, called once at injection. Returning
    /// `Some(w)` routes the packet to waypoint `w` first (per
    /// [`Router::waypoint_reached`]), then to the destination.
    fn select_waypoint(
        &self,
        _topo: &Topology,
        _src: NodeId,
        _dst: NodeId,
        _probe: &dyn LoadProbe,
        _rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        None
    }

    /// Whether the waypoint phase is complete for a packet at `node`.
    /// Default: exact node match. Dragonfly overrides this with "same
    /// group"; HammingMesh with "same board".
    fn waypoint_reached(&self, _topo: &Topology, node: NodeId, waypoint: NodeId) -> bool {
        node == waypoint
    }

    /// Enumerate the deterministic source-side path *classes* between
    /// `src` and `dst` as waypoints, for consumers that want to use every
    /// class at once (the flow-level engine splits a message into subflows
    /// over the direct route plus each option returned here). Unlike
    /// [`Router::select_waypoint`] this must not depend on load or
    /// randomness. Default: no alternative classes (minimal routing only).
    fn waypoint_options(
        &self,
        _topo: &Topology,
        _src: NodeId,
        _dst: NodeId,
        _out: &mut Vec<NodeId>,
    ) {
    }
}

/// Failure-aware routing fallback shared by every topology router.
///
/// The structured routers (up*/down*, UGAL, dimension-order, HxMesh) are
/// built for the healthy graph; under fault injection their candidate sets
/// can offer a dead link or — worse — steer a packet into a region whose
/// only way out was cut. `FailoverTable` repairs that generically: while
/// [`Topology::has_failures`] holds, a router passes its structured
/// candidate set through [`FailoverTable::filter`], which
///
/// 1. drops candidates whose immediate link is failed, and candidates
///    that do not strictly decrease the *failure-aware* BFS distance to
///    the target (so every surviving hop makes provable progress and no
///    walk can revisit a node, no matter how ties are broken);
/// 2. if nothing survives — all minimal routes are cut — replaces the set
///    with every healthy port on a failure-aware shortest path (the
///    "failover" routes), escaping to the dedicated failover VC (see
///    below);
/// 3. leaves the set empty when the failure set disconnects the pair,
///    which per the [`Router`] contract means "unreachable".
///
/// Distances are healthy-graph BFS trees rooted at each requested target,
/// computed lazily and memoized per [`Topology::failure_set_id`]: the
/// cache is invalidated whenever the failure *set* changes, and — because
/// the id is content-based, not a monotone epoch — it is *retained* when
/// the set returns to the cached one, as in the cluster simulator's
/// fail → restore → fail churn on the same cable. With no failures present
/// the router never calls in here, so pristine-network routing (and its
/// performance) is bit-identical to the failure-blind code.
///
/// ## Failover VC discipline
///
/// Step-2 failover routes do **not** inherit the packet's current VC:
/// they escape to a dedicated VC, `escape_vc = Router::num_vcs()` (the
/// engines allocate one VC beyond what the router's structured scheme
/// uses). Inheriting the primary VC is unsound on the wrap topologies —
/// a torus/HxMesh failover hop can traverse a dateline the structured
/// VC ladder never crosses on that VC, closing a credit cycle. The
/// escape VC is *sticky*: once a packet rides it, every later hop comes
/// from [`FailoverTable::escape_candidates`], which offers exactly the
/// healthy ports that strictly decrease the failure-aware BFS distance
/// to the target. Strictly-decreasing routing over one shared distance
/// function is acyclic per destination, so the escape network is
/// deadlock-free on its own VC, and the structured VCs keep their own
/// guarantees because nothing new enters them
/// (`tests/fault_injection.rs` pins the torus/HxMesh wrap regression).
///
/// The remaining trade-off is fidelity, not correctness: while any
/// failure exists, non-minimal adaptive escapes (HxMesh wrap-arounds,
/// Dragonfly local detours) that don't shorten the failure-aware
/// distance are suppressed.
#[derive(Debug, Default)]
pub struct FailoverTable {
    cache: Mutex<FailoverCache>,
}

#[derive(Debug, Default)]
struct FailoverCache {
    /// Failure set the cached distances were computed under.
    set: crate::graph::FailureSetId,
    /// Per target: failure-aware BFS distance from every node to it.
    dist: BTreeMap<NodeId, Vec<u32>>,
}

impl FailoverTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f` with the failure-aware distance vector toward `target`
    /// (recomputing the cache if the failure set changed since it was
    /// filled — a set the cache already holds is served as-is, however
    /// many fail/restore transitions happened in between).
    fn with_dist<R>(&self, topo: &Topology, target: NodeId, f: impl FnOnce(&[u32]) -> R) -> R {
        // hxlint: allow(P001) lock poisoning only follows a panic already unwinding this thread's caller
        let mut cache = self.cache.lock().unwrap();
        if cache.set != topo.failure_set_id() {
            cache.set = topo.failure_set_id();
            cache.dist.clear();
        }
        let dist = cache
            .dist
            .entry(target)
            // Links are full-duplex and fail in both directions, so the
            // BFS tree rooted at the target doubles as distance-to-target.
            .or_insert_with(|| topo.bfs_hops_healthy(target));
        f(dist)
    }

    /// Whether the current failure set leaves `target` reachable from
    /// `node`. Used by source-side waypoint selection to avoid steering
    /// packets at a cut-off intermediate.
    pub fn reachable(&self, topo: &Topology, node: NodeId, target: NodeId) -> bool {
        if !topo.has_failures() {
            return true;
        }
        self.with_dist(topo, target, |dist| dist[node.idx()] != u32::MAX)
    }

    /// Apply the failure filter described on [`FailoverTable`] to a
    /// structured candidate set. `escape_vc` is the dedicated failover
    /// VC the step-2 routes escape to — routers pass their own
    /// `num_vcs()` (the engines allocate one VC beyond it). Call only
    /// when [`Topology::has_failures`] — the healthy path must stay
    /// untouched.
    pub fn filter(
        &self,
        topo: &Topology,
        node: NodeId,
        escape_vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        debug_assert!(topo.has_failures());
        if node == target {
            out.clear();
            return;
        }
        self.with_dist(topo, target, |dist| {
            let d = dist[node.idx()];
            if d == u32::MAX {
                out.clear(); // disconnected: report unreachable
                return;
            }
            out.retain(|h| {
                let link = topo.link(node, h.port);
                !link.failed && dist[link.peer.node.idx()] < d
            });
            if out.is_empty() {
                // All structured routes are cut here: fail over to every
                // healthy shortest-path port in the failure-aware graph,
                // escaping to the dedicated failover VC (see the VC
                // discipline section on [`FailoverTable`]).
                for (p, link) in topo.node(node).ports.iter().enumerate() {
                    if !link.failed && dist[link.peer.node.idx()] + 1 == d {
                        out.push(Hop {
                            port: PortId(p as u16),
                            vc: escape_vc,
                        });
                    }
                }
            } else {
                // The retain above can leave duplicates when a router
                // offers the same port under several roles.
                let mut i = 0;
                while i < out.len() {
                    if out[..i].iter().any(|h| h.port == out[i].port) {
                        out.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
            debug_assert!(
                !out.is_empty(),
                "reachable target {target:?} but no healthy shortest-path port at {node:?}"
            );
        });
    }

    /// Candidates for a packet already riding the escape VC (sticky —
    /// see the VC discipline section on [`FailoverTable`]): every
    /// healthy port that strictly decreases the failure-aware BFS
    /// distance to `target`, all on `escape_vc`. Replaces the
    /// structured scheme entirely; a router whose `candidates` is
    /// called with `vc >= num_vcs()` must delegate here unconditionally
    /// (even after every failure repaired — in-flight escape packets
    /// outlive the failure set, and the healthy-graph BFS keeps them
    /// progressing and acyclic). Leaves `out` empty when the pair is
    /// disconnected.
    pub fn escape_candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        escape_vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        out.clear();
        if node == target {
            return;
        }
        self.with_dist(topo, target, |dist| {
            let d = dist[node.idx()];
            if d == u32::MAX {
                return; // disconnected: report unreachable
            }
            for (p, link) in topo.node(node).ports.iter().enumerate() {
                if !link.failed && dist[link.peer.node.idx()] < d {
                    out.push(Hop {
                        port: PortId(p as u16),
                        vc: escape_vc,
                    });
                }
            }
            debug_assert!(
                !out.is_empty(),
                "reachable target {target:?} but no distance-decreasing port at {node:?}"
            );
        });
    }
}

/// Up*/down* routing tables for tree-structured (sub)networks.
///
/// Built by the fat-tree and HammingMesh constructors, which know which
/// ports point "up". Routing is the classic scheme: while the target is not
/// in this switch's down-table, go up (any up port, adaptively); once it
/// is, follow the recorded down ports. One VC suffices (up/down is
/// deadlock-free), so the table never changes VCs.
#[derive(Clone, Debug, Default)]
pub struct UpDownTable {
    /// Per switch node: ports that point towards the roots.
    up: BTreeMap<NodeId, Vec<PortId>>,
    /// Per switch node: target accelerator -> down ports reaching it
    /// minimally inside the tree.
    down: BTreeMap<NodeId, BTreeMap<NodeId, Vec<PortId>>>,
}

impl UpDownTable {
    /// Build from an explicit description of the tree:
    /// `levels[0]` are the leaf switches, `levels.last()` the roots, and
    /// `leaf_targets(leaf, port)` names the accelerator(s) served by a leaf
    /// down port (`None` for up ports or ports outside the tree).
    ///
    /// `is_up(node, port)` must classify every port of every listed switch.
    pub fn build(
        topo: &Topology,
        levels: &[Vec<NodeId>],
        is_up: impl Fn(NodeId, PortId) -> bool,
        leaf_target: impl Fn(NodeId, PortId) -> Option<NodeId>,
    ) -> Self {
        let mut table = UpDownTable::default();
        // Classify ports and seed leaf down entries.
        for (lvl, switches) in levels.iter().enumerate() {
            for &sw in switches {
                let nports = topo.num_ports(sw);
                let mut ups = Vec::new();
                let mut downs: BTreeMap<NodeId, Vec<PortId>> = BTreeMap::new();
                for p in 0..nports {
                    let port = PortId(p as u16);
                    if is_up(sw, port) {
                        ups.push(port);
                    } else if lvl == 0 {
                        if let Some(t) = leaf_target(sw, port) {
                            downs.entry(t).or_default().push(port);
                        }
                    }
                }
                table.up.insert(sw, ups);
                table.down.insert(sw, downs);
            }
        }
        // Propagate down-reachability upwards, level by level.
        for lvl in 1..levels.len() {
            for &sw in &levels[lvl] {
                let nports = topo.num_ports(sw);
                let mut mine: BTreeMap<NodeId, Vec<PortId>> = BTreeMap::new();
                for p in 0..nports {
                    let port = PortId(p as u16);
                    if is_up(sw, port) {
                        continue;
                    }
                    let peer = topo.peer(sw, port).node;
                    if let Some(child_tab) = table.down.get(&peer) {
                        for target in child_tab.keys() {
                            mine.entry(*target).or_default().push(port);
                        }
                    }
                }
                table.down.insert(sw, mine);
            }
        }
        table
    }

    /// Is this node part of the tree this table describes?
    pub fn contains(&self, node: NodeId) -> bool {
        self.up.contains_key(&node)
    }

    /// Whether `target` is reachable going down from `node`.
    pub fn reaches_down(&self, node: NodeId, target: NodeId) -> bool {
        self.down
            .get(&node)
            .is_some_and(|m| m.contains_key(&target))
    }

    /// Appends up/down candidates at `node` for `target` on the given VC.
    /// Returns `true` if any candidate was produced.
    pub fn candidates(&self, node: NodeId, target: NodeId, vc: u8, out: &mut Vec<Hop>) -> bool {
        if let Some(m) = self.down.get(&node) {
            if let Some(ports) = m.get(&target) {
                out.extend(ports.iter().map(|&port| Hop { port, vc }));
                return !ports.is_empty();
            }
        }
        if let Some(ups) = self.up.get(&node) {
            out.extend(ups.iter().map(|&port| Hop { port, vc }));
            return !ups.is_empty();
        }
        false
    }

    /// All down ports at `node` toward `target` (empty slice if none).
    pub fn down_ports(&self, node: NodeId, target: NodeId) -> &[PortId] {
        self.down
            .get(&node)
            .and_then(|m| m.get(&target))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    pub fn up_ports(&self, node: NodeId) -> &[PortId] {
        self.up.get(&node).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Shortest-path table router: BFS all-pairs over the raw graph, candidates
/// are every port that lies on some shortest path. No VC management (always
/// VC 0) — **not** deadlock-free in general; used as a reference router in
/// tests and for diameter measurements, not in the evaluation runs.
///
/// Failure-aware: under fault injection the static table is corrected by
/// a [`FailoverTable`], so candidates avoid failed links and re-route over
/// the failure-aware shortest paths.
pub struct ShortestPathRouter {
    /// dist[node][target_endpoint_index]
    dist: Vec<Vec<u32>>,
    /// endpoint node -> dense index
    endpoint_index: BTreeMap<NodeId, usize>,
    failover: FailoverTable,
}

impl ShortestPathRouter {
    pub fn build(topo: &Topology, endpoints: &[NodeId]) -> Self {
        let endpoint_index: BTreeMap<NodeId, usize> =
            endpoints.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        // dist[target][node], computed by BFS from each endpoint.
        let mut per_target = vec![Vec::new(); endpoints.len()];
        for (i, &e) in endpoints.iter().enumerate() {
            per_target[i] = topo.bfs_hops(e);
        }
        // Transpose into dist[node][target].
        let n = topo.num_nodes();
        let mut dist = vec![vec![u32::MAX; endpoints.len()]; n];
        for (t, d) in per_target.iter().enumerate() {
            for (node, &dd) in d.iter().enumerate() {
                dist[node][t] = dd;
            }
        }
        Self {
            dist,
            endpoint_index,
            failover: FailoverTable::new(),
        }
    }

    pub fn distance(&self, node: NodeId, target: NodeId) -> u32 {
        self.dist[node.idx()][self.endpoint_index[&target]]
    }
}

impl Router for ShortestPathRouter {
    fn num_vcs(&self) -> u8 {
        1
    }

    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        if vc >= self.num_vcs() {
            // Escape VC: sticky failure-epoch routing (see FailoverTable).
            self.failover.escape_candidates(topo, node, vc, target, out);
            return;
        }
        let ti = self.endpoint_index[&target];
        let d = self.dist[node.idx()][ti];
        if d == 0 {
            return;
        }
        for (p, link) in topo.node(node).ports.iter().enumerate() {
            if self.dist[link.peer.node.idx()][ti] + 1 == d {
                out.push(Hop {
                    port: PortId(p as u16),
                    vc,
                });
            }
        }
        if topo.has_failures() {
            self.failover
                .filter(topo, node, self.num_vcs(), target, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Cable, LinkSpec};

    fn spec() -> LinkSpec {
        LinkSpec {
            latency_ps: 1000,
            ps_per_byte: 20.0,
            cable: Cable::Dac,
        }
    }

    /// Two endpoints under two leaves under one root.
    fn tiny_tree() -> (Topology, Vec<NodeId>, Vec<Vec<NodeId>>) {
        let mut t = Topology::new();
        let e0 = t.add_accelerator(0);
        let e1 = t.add_accelerator(1);
        let l0 = t.add_switch(0, 0, 0);
        let l1 = t.add_switch(0, 0, 1);
        let r = t.add_switch(1, 0, 0);
        t.connect(e0, l0, spec()); // l0 port 0 = down
        t.connect(e1, l1, spec()); // l1 port 0 = down
        t.connect(l0, r, spec()); // l0 port 1 = up, r port 0 = down
        t.connect(l1, r, spec()); // l1 port 1 = up, r port 1 = down
        (t, vec![e0, e1], vec![vec![l0, l1], vec![r]])
    }

    #[test]
    fn updown_routes_through_root() {
        let (t, eps, levels) = tiny_tree();
        let table = UpDownTable::build(
            &t,
            &levels,
            |sw, p| {
                // Leaf switches: port 1 is up; root has no up ports.
                t.kind(sw)
                    == crate::graph::NodeKind::Switch {
                        level: 0,
                        group: 0,
                        pos: 0,
                    }
                    && p == PortId(1)
                    || matches!(
                        t.kind(sw),
                        crate::graph::NodeKind::Switch {
                            level: 0,
                            pos: 1,
                            ..
                        }
                    ) && p == PortId(1)
            },
            |sw, p| {
                let peer = t.peer(sw, p).node;
                t.kind(peer).is_accelerator().then_some(peer)
            },
        );
        // At leaf l0, target e1: must go up.
        let mut out = Vec::new();
        assert!(table.candidates(levels[0][0], eps[1], 0, &mut out));
        assert_eq!(
            out,
            vec![Hop {
                port: PortId(1),
                vc: 0
            }]
        );
        // At root, target e1: down port 1.
        out.clear();
        assert!(table.candidates(levels[1][0], eps[1], 0, &mut out));
        assert_eq!(
            out,
            vec![Hop {
                port: PortId(1),
                vc: 0
            }]
        );
        // At leaf l1, target e1: down port 0.
        out.clear();
        assert!(table.candidates(levels[0][1], eps[1], 0, &mut out));
        assert_eq!(
            out,
            vec![Hop {
                port: PortId(0),
                vc: 0
            }]
        );
    }

    #[test]
    fn shortest_path_router_is_minimal() {
        let (t, eps, _) = tiny_tree();
        let r = ShortestPathRouter::build(&t, &eps);
        assert_eq!(r.distance(eps[0], eps[1]), 4); // e0-l0-r-l1-e1
        let mut out = Vec::new();
        r.candidates(&t, eps[0], 0, eps[1], &mut out);
        assert_eq!(out.len(), 1);
    }

    /// Two leaves under two roots: failing one root's link re-routes the
    /// shortest-path candidates through the other; failing both reports
    /// the destination unreachable (empty candidate set).
    #[test]
    fn failover_reroutes_and_reports_unreachable() {
        let mut t = Topology::new();
        let e0 = t.add_accelerator(0);
        let e1 = t.add_accelerator(1);
        let l0 = t.add_switch(0, 0, 0);
        let l1 = t.add_switch(0, 0, 1);
        let ra = t.add_switch(1, 0, 0);
        let rb = t.add_switch(1, 0, 1);
        t.connect(e0, l0, spec());
        t.connect(e1, l1, spec());
        let (l0a, _) = t.connect(l0, ra, spec());
        t.connect(l1, ra, spec());
        let (l0b, _) = t.connect(l0, rb, spec());
        t.connect(l1, rb, spec());
        let r = ShortestPathRouter::build(&t, &[e0, e1]);

        let cands = |t: &Topology, node| {
            let mut out = Vec::new();
            r.candidates(t, node, 0, e1, &mut out);
            out
        };
        assert_eq!(cands(&t, l0).len(), 2); // either root works

        t.fail_link(l0, l0a);
        let c = cands(&t, l0);
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].port, l0b);
        assert!(!t.link_failed(l0, c[0].port));
        assert!(r.failover.reachable(&t, l0, e1));

        t.fail_link(l0, l0b);
        assert!(cands(&t, l0).is_empty(), "disconnected pair must be empty");
        assert!(cands(&t, e0).is_empty());
        assert!(!r.failover.reachable(&t, l0, e1));

        // Repair brings the original candidate set back.
        t.restore_link(l0, l0a);
        t.restore_link(l0, l0b);
        assert_eq!(cands(&t, l0).len(), 2);
    }

    /// The content-keyed failover cache must never serve one failure set's
    /// distances for another: failing cable A, repairing it, and failing
    /// cable B instead has to route around B (not A), and the cycle
    /// A -> repair -> A again must reproduce the first failure's routes
    /// exactly (the satellite regression for `restore_link` interaction
    /// with cached failover state).
    #[test]
    fn failover_cache_is_keyed_on_the_failure_set() {
        let mut t = Topology::new();
        let e0 = t.add_accelerator(0);
        let e1 = t.add_accelerator(1);
        let l0 = t.add_switch(0, 0, 0);
        let l1 = t.add_switch(0, 0, 1);
        let ra = t.add_switch(1, 0, 0);
        let rb = t.add_switch(1, 0, 1);
        t.connect(e0, l0, spec());
        t.connect(e1, l1, spec());
        let (l0a, _) = t.connect(l0, ra, spec());
        t.connect(l1, ra, spec());
        let (l0b, _) = t.connect(l0, rb, spec());
        t.connect(l1, rb, spec());
        let r = ShortestPathRouter::build(&t, &[e0, e1]);
        let cands = |t: &Topology| {
            let mut out = Vec::new();
            r.candidates(t, l0, 0, e1, &mut out);
            out
        };

        t.fail_link(l0, l0a);
        let around_a = cands(&t);
        assert_eq!(around_a.len(), 1);
        assert_eq!(around_a[0].port, l0b);

        // Same-size, different set: the cache must recompute, not replay A.
        t.restore_link(l0, l0a);
        t.fail_link(l0, l0b);
        let around_b = cands(&t);
        assert_eq!(around_b.len(), 1);
        assert_eq!(around_b[0].port, l0a);

        // fail -> restore -> fail on the same cable: identical routes to
        // the first failure (served from the retained cache entry).
        t.restore_link(l0, l0b);
        t.fail_link(l0, l0b);
        assert_eq!(cands(&t), around_b);
        t.restore_link(l0, l0b);
        t.fail_link(l0, l0a);
        assert_eq!(cands(&t), around_a);
    }
}
