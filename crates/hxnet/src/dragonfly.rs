//! Dragonfly topology (Kim et al., ISCA'08) with UGAL-style routing.
//!
//! Canonical configuration `a = 2p = 2h`: groups of `a` switches, each with
//! `p` endpoints and `h` global links; switches within a group are fully
//! connected (DAC), groups are connected all-to-all by distributing each
//! group's `a*h` global ports round-robin over the other groups (AoC).
//!
//! Routing is minimal (local, global, local) with adaptive escape to a
//! Valiant intermediate group chosen UGAL-style from local queue occupancy
//! — the paper simulates Dragonfly with UGAL-L (App. F). Deadlock freedom:
//! the VC is incremented on every global hop (3 VCs suffice for Valiant
//! paths l-g-l-g-l).

use crate::cable_link;
use crate::graph::{Cable, Network, NodeId, PortId, Topology};
use crate::route::{FailoverTable, Hop, LoadProbe, Router};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
pub struct DragonflyParams {
    /// Switches per group.
    pub a: usize,
    /// Endpoints per switch.
    pub p: usize,
    /// Global links per switch.
    pub h: usize,
    /// Number of groups.
    pub groups: usize,
}

impl DragonflyParams {
    /// The paper's small cluster (App. C1c): a=16, p=8, h=8, 8 groups,
    /// 1,024 endpoints.
    pub fn small() -> Self {
        Self {
            a: 16,
            p: 8,
            h: 8,
            groups: 8,
        }
    }

    /// The paper's large cluster (App. C2b): a=32, p=17, h=16, 30 groups,
    /// 16,320 endpoints.
    pub fn large() -> Self {
        Self {
            a: 32,
            p: 17,
            h: 16,
            groups: 30,
        }
    }

    /// A reduced-scale balanced Dragonfly with ~n endpoints.
    pub fn scaled(n: usize) -> Self {
        // a = 2p = 2h, g <= a*h + 1; pick p so that a*p*g >= n with g = 2p^2+1 capped.
        let mut p = 2;
        loop {
            let a = 2 * p;
            let g_max = a * p + 1;
            let g_needed = n.div_ceil(a * p);
            if g_needed <= g_max || p > 64 {
                return Self {
                    a,
                    p,
                    h: p,
                    groups: g_needed.max(2),
                };
            }
            p += 1;
        }
    }

    pub fn num_endpoints(&self) -> usize {
        self.a * self.p * self.groups
    }

    pub fn build(&self) -> Network {
        assert!(self.groups >= 2);
        let mut topo = Topology::new();
        let mut endpoints = Vec::with_capacity(self.num_endpoints());
        let mut switches = Vec::with_capacity(self.groups * self.a);
        // Create switches then endpoints so routers can use dense maps.
        for g in 0..self.groups {
            for s in 0..self.a {
                switches.push(topo.add_switch(0, g as u32, s as u32));
            }
        }
        let sw = |g: usize, s: usize| switches[g * self.a + s];
        let mut endpoint_switch = Vec::new();
        let mut rank = 0u32;
        for g in 0..self.groups {
            for s in 0..self.a {
                for _ in 0..self.p {
                    let e = topo.add_accelerator(rank);
                    topo.connect(e, sw(g, s), cable_link(Cable::Dac));
                    endpoints.push(e);
                    endpoint_switch.push(sw(g, s));
                    rank += 1;
                }
            }
        }
        // Local all-to-all within each group (DAC).
        for g in 0..self.groups {
            for s1 in 0..self.a {
                for s2 in (s1 + 1)..self.a {
                    topo.connect(sw(g, s1), sw(g, s2), cable_link(Cable::Dac));
                }
            }
        }
        // Global links: round-robin over group pairs until the per-switch
        // budget `h` is exhausted (AoC). The pick prefers switches that do
        // not yet reach the peer group so that — whenever `h >= groups-1`,
        // as in the canonical small configuration — every switch has a
        // direct link to every other group (giving the diameter-3 paths of
        // Table II).
        let mut budget = vec![self.h; self.groups * self.a];
        let mut covers = vec![false; self.groups * self.a * self.groups];
        let mut next_switch = vec![0usize; self.groups]; // rotating pick
        let mut global_ports: BTreeMap<NodeId, Vec<(PortId, u32)>> = BTreeMap::new();
        'outer: loop {
            let mut connected_any = false;
            for g1 in 0..self.groups {
                for g2 in (g1 + 1)..self.groups {
                    // Find a switch with remaining budget in each group,
                    // preferring one that does not cover the peer yet.
                    let pick = |g: usize,
                                peer: usize,
                                next: &mut [usize],
                                budget: &[usize],
                                covers: &[bool]|
                     -> Option<usize> {
                        let mut fallback = None;
                        for k in 0..self.a {
                            let s = (next[g] + k) % self.a;
                            if budget[g * self.a + s] == 0 {
                                continue;
                            }
                            if !covers[(g * self.a + s) * self.groups + peer] {
                                next[g] = (s + 1) % self.a;
                                return Some(s);
                            }
                            fallback.get_or_insert(s);
                        }
                        if let Some(s) = fallback {
                            next[g] = (s + 1) % self.a;
                        }
                        fallback
                    };
                    let (Some(s1), Some(s2)) = (
                        pick(g1, g2, &mut next_switch, &budget, &covers),
                        pick(g2, g1, &mut next_switch, &budget, &covers),
                    ) else {
                        continue;
                    };
                    budget[g1 * self.a + s1] -= 1;
                    budget[g2 * self.a + s2] -= 1;
                    covers[(g1 * self.a + s1) * self.groups + g2] = true;
                    covers[(g2 * self.a + s2) * self.groups + g1] = true;
                    let (p1, p2) = topo.connect(sw(g1, s1), sw(g2, s2), cable_link(Cable::Aoc));
                    global_ports
                        .entry(sw(g1, s1))
                        .or_default()
                        .push((p1, g2 as u32));
                    global_ports
                        .entry(sw(g2, s2))
                        .or_default()
                        .push((p2, g1 as u32));
                    connected_any = true;
                }
            }
            if !connected_any {
                break 'outer;
            }
        }

        // Per-switch routing tables.
        // to_group[switch] : target group -> (direct global ports, local ports toward switches owning such globals)
        let mut direct: BTreeMap<NodeId, BTreeMap<u32, Vec<PortId>>> = BTreeMap::new();
        for (node, ports) in &global_ports {
            let m: &mut BTreeMap<u32, Vec<PortId>> = direct.entry(*node).or_default();
            for (port, tg) in ports {
                m.entry(*tg).or_default().push(*port);
            }
        }
        // local port map: switch -> peer switch -> port
        let mut local_port: BTreeMap<NodeId, BTreeMap<NodeId, PortId>> = BTreeMap::new();
        for &s in &switches {
            let mut m = BTreeMap::new();
            for (pi, link) in topo.node(s).ports.iter().enumerate() {
                let peer = link.peer.node;
                if topo.kind(peer).is_switch() && link.spec.cable == Cable::Dac {
                    m.insert(peer, PortId(pi as u16));
                }
            }
            local_port.insert(s, m);
        }
        // endpoint port map: switch -> endpoint -> port
        let mut endpoint_port: BTreeMap<NodeId, BTreeMap<NodeId, PortId>> = BTreeMap::new();
        for &s in &switches {
            let mut m = BTreeMap::new();
            for (pi, link) in topo.node(s).ports.iter().enumerate() {
                let peer = link.peer.node;
                if topo.kind(peer).is_accelerator() {
                    m.insert(peer, PortId(pi as u16));
                }
            }
            endpoint_port.insert(s, m);
        }
        let group_of: BTreeMap<NodeId, u32> = switches
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, (i / self.a) as u32))
            .collect();

        let router = DragonflyRouter {
            groups: self.groups as u32,
            switches: switches.clone(),
            a: self.a,
            endpoint_switch,
            direct,
            local_port,
            endpoint_port,
            group_of,
            failover: FailoverTable::new(),
        };
        Network {
            topo,
            endpoints,
            router: Box::new(router),
            name: format!(
                "Dragonfly a={} p={} h={} g={}",
                self.a, self.p, self.h, self.groups
            ),
        }
    }
}

/// Minimal + Valiant (UGAL-L) Dragonfly routing.
///
/// Failure-aware: while any link is failed, the minimal candidate set is
/// corrected by a [`FailoverTable`] — dead global cables stop being
/// offered, local hops toward switches that lost their direct link are
/// suppressed, and cut minimal routes fall back to failure-aware shortest
/// paths. UGAL's Valiant escape only picks intermediates the failure set
/// leaves reachable.
pub struct DragonflyRouter {
    groups: u32,
    switches: Vec<NodeId>,
    a: usize,
    /// Per endpoint rank: its switch.
    endpoint_switch: Vec<NodeId>,
    /// switch -> target group -> direct global ports.
    direct: BTreeMap<NodeId, BTreeMap<u32, Vec<PortId>>>,
    /// switch -> peer switch in group -> local port.
    local_port: BTreeMap<NodeId, BTreeMap<NodeId, PortId>>,
    /// switch -> attached endpoint -> port.
    endpoint_port: BTreeMap<NodeId, BTreeMap<NodeId, PortId>>,
    /// switch -> group id.
    group_of: BTreeMap<NodeId, u32>,
    failover: FailoverTable,
}

impl DragonflyRouter {
    fn group_of_node(&self, topo: &Topology, node: NodeId) -> u32 {
        match topo.kind(node) {
            crate::graph::NodeKind::Switch { .. } => self.group_of[&node],
            crate::graph::NodeKind::Accelerator { rank } => {
                self.group_of[&self.endpoint_switch[rank as usize]]
            }
        }
    }

    /// Switch the target endpoint hangs off.
    fn switch_of_target(&self, topo: &Topology, target: NodeId) -> NodeId {
        match topo.kind(target) {
            crate::graph::NodeKind::Accelerator { rank } => self.endpoint_switch[rank as usize],
            crate::graph::NodeKind::Switch { .. } => target,
        }
    }

    /// The failure-blind minimal (l, g, l) candidate set; `candidates`
    /// corrects it through the [`FailoverTable`] when links are failed.
    fn structured_candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        if topo.kind(node).is_accelerator() {
            for p in 0..topo.num_ports(node) {
                out.push(Hop {
                    port: PortId(p as u16),
                    vc,
                });
            }
            return;
        }
        let tsw = self.switch_of_target(topo, target);
        let tgroup = self.group_of[&tsw];
        let my_group = self.group_of[&node];
        let gvc = (vc + 1).min(self.num_vcs() - 1);
        if node == tsw {
            if let Some(&p) = self.endpoint_port[&node].get(&target) {
                out.push(Hop { port: p, vc });
                return;
            }
            // target is this switch itself (waypoint): nothing to do.
            return;
        }
        if my_group == tgroup {
            // Direct local hop.
            if let Some(&p) = self.local_port[&node].get(&tsw) {
                out.push(Hop { port: p, vc });
            }
            return;
        }
        // Different group: direct global ports first.
        if let Some(ports) = self.direct.get(&node).and_then(|m| m.get(&tgroup)) {
            for &p in ports {
                out.push(Hop { port: p, vc: gvc });
            }
        }
        // Local hops to switches with a direct global link. The map is a
        // BTreeMap so this iteration — which fixes the candidate order the
        // engines' adaptive tie-breaks see — is in NodeId order, not the
        // per-process hash order that D001 exists to keep out of results.
        for (peer, &p) in &self.local_port[&node] {
            if self
                .direct
                .get(peer)
                .and_then(|m| m.get(&tgroup))
                .is_some_and(|v| !v.is_empty())
            {
                out.push(Hop { port: p, vc });
            }
        }
    }
}

impl Router for DragonflyRouter {
    fn num_vcs(&self) -> u8 {
        3
    }

    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        if vc >= self.num_vcs() {
            // Escape VC: sticky failure-epoch routing (see FailoverTable).
            self.failover.escape_candidates(topo, node, vc, target, out);
            return;
        }
        if node == target {
            return;
        }
        self.structured_candidates(topo, node, vc, target, out);
        if topo.has_failures() {
            self.failover
                .filter(topo, node, self.num_vcs(), target, out);
        }
    }

    fn select_waypoint(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        probe: &dyn LoadProbe,
        rng: &mut dyn rand::RngCore,
    ) -> Option<NodeId> {
        let sg = self.group_of_node(topo, src);
        let dg = self.group_of_node(topo, dst);
        if sg == dg {
            return None;
        }
        // UGAL-L: compare the source switch's queue toward the minimal
        // route against the queue toward a random Valiant group, weighting
        // by path length (2 global hops for Valiant vs 1 minimal).
        let ssw = self.endpoint_switch[match topo.kind(src) {
            crate::graph::NodeKind::Accelerator { rank } => rank as usize,
            _ => return None,
        }];
        let min_q = {
            let mut cand = Vec::new();
            self.candidates(topo, ssw, 0, dst, &mut cand);
            cand.iter()
                .map(|h| probe.queued_bytes(ssw, h.port))
                .min()
                .unwrap_or(0)
        };
        // Pick a random intermediate group != sg, dg.
        let mut ig = rng.next_u32() % self.groups;
        while ig == sg || ig == dg {
            ig = rng.next_u32() % self.groups;
        }
        let iw = self.switches[ig as usize * self.a + (rng.next_u32() as usize % self.a)];
        // Under fault injection, never steer a packet at an intermediate
        // the failure set cut off (in either phase of the Valiant path).
        if topo.has_failures()
            && !(self.failover.reachable(topo, ssw, iw) && self.failover.reachable(topo, iw, dst))
        {
            return None;
        }
        let val_q = {
            let mut cand = Vec::new();
            self.candidates(topo, ssw, 0, iw, &mut cand);
            cand.iter()
                .map(|h| probe.queued_bytes(ssw, h.port))
                .min()
                .unwrap_or(0)
        };
        // UGAL decision: go Valiant when the minimal queue is more than
        // twice the Valiant queue (hop-count ratio) plus a small offset.
        if min_q > 2 * val_q + 4096 {
            Some(iw)
        } else {
            None
        }
    }

    fn waypoint_reached(&self, topo: &Topology, node: NodeId, waypoint: NodeId) -> bool {
        node == waypoint || self.group_of_node(topo, node) == self.group_of_node(topo, waypoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dragonfly_shape() {
        let p = DragonflyParams::small();
        let net = p.build();
        assert_eq!(net.endpoints.len(), 1024);
        assert_eq!(net.topo.count_switches(), 8 * 16);
        // 512 global AoC cables (App. C1c).
        assert_eq!(net.topo.count_cables(Cable::Aoc), 512);
        // DAC: 1,024 endpoint + 8 * (16*15/2) local = 1,984.
        assert_eq!(net.topo.count_cables(Cable::Dac), 1024 + 8 * 120);
        net.topo.validate().unwrap();
    }

    fn walk(net: &Network, s: usize, d: usize) -> u32 {
        let (sn, dn) = (net.endpoints[s], net.endpoints[d]);
        let mut node = sn;
        let mut vc = 0u8;
        let mut hops = 0;
        while node != dn {
            let mut cand = Vec::new();
            net.router.candidates(&net.topo, node, vc, dn, &mut cand);
            assert!(!cand.is_empty(), "stuck at {node:?}");
            node = net.topo.peer(node, cand[0].port).node;
            vc = cand[0].vc;
            hops += 1;
            assert!(hops <= 6, "{s}->{d} exceeded diameter");
        }
        hops
    }

    #[test]
    fn minimal_paths_are_at_most_five_hops() {
        // endpoint-sw, local, global, local, sw-endpoint = 5 cables (diam 3
        // switch hops as in Table II, which counts switch-to-switch).
        let net = DragonflyParams {
            a: 4,
            p: 2,
            h: 2,
            groups: 5,
        }
        .build();
        let n = net.endpoints.len();
        for s in (0..n).step_by(3) {
            for d in (0..n).step_by(7) {
                if s != d {
                    walk(&net, s, d);
                }
            }
        }
    }

    #[test]
    fn every_group_pair_is_connected() {
        let p = DragonflyParams::small();
        let net = p.build();
        // Check via graph: BFS from an endpoint reaches all nodes.
        let d = net.topo.bfs_hops(net.endpoints[0]);
        assert!(d.iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn global_budget_respected() {
        let p = DragonflyParams::small();
        let net = p.build();
        for (id, node) in net.topo.nodes() {
            if net.topo.kind(id).is_switch() {
                let globals = node
                    .ports
                    .iter()
                    .filter(|l| l.spec.cable == Cable::Aoc)
                    .count();
                assert!(globals <= p.h, "switch {id:?} has {globals} global links");
            }
        }
    }
}
