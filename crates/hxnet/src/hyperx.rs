//! 2D HyperX topology.
//!
//! The paper observes (§III, footnote 2) that a 2D HyperX is identical to
//! an Hx1Mesh — a HammingMesh with 1x1 boards, where each "board" is a
//! single accelerator whose E/W ports attach to the row network and N/S
//! ports to the column network, and every row/column network is a single
//! switch (dimension-wise fully connected). We therefore build HyperX
//! through the HammingMesh constructor, which also gives us its adaptive
//! routing — including the failure-aware candidate filtering of
//! `hxnet::route::FailoverTable` — for free: HyperX traffic routes around
//! failed cables exactly like an Hx1Mesh does.

use crate::graph::Network;
use crate::hammingmesh::HxMeshParams;

/// Parameters of a 2D HyperX: an `x` x `y` grid of accelerators,
/// dimension-wise fully connected through row/column switches.
#[derive(Clone, Debug)]
pub struct HyperXParams {
    pub x: usize,
    pub y: usize,
    /// Switch radix (64 in the paper).
    pub radix: usize,
}

impl HyperXParams {
    /// The paper's small-cluster 32x32 2D HyperX (1,024 accelerators).
    pub fn small() -> Self {
        Self {
            x: 32,
            y: 32,
            radix: 64,
        }
    }

    /// The paper's large-cluster 128x128 2D HyperX (16,384 accelerators).
    pub fn large() -> Self {
        Self {
            x: 128,
            y: 128,
            radix: 64,
        }
    }

    pub fn num_accelerators(&self) -> usize {
        self.x * self.y
    }

    /// Equivalent HammingMesh parameterization (Hx1Mesh).
    pub fn as_hxmesh(&self) -> HxMeshParams {
        HxMeshParams {
            a: 1,
            b: 1,
            x: self.x,
            y: self.y,
            taper: 0.0,
            radix: self.radix,
        }
    }

    pub fn build(&self) -> Network {
        let mut net = self.as_hxmesh().build();
        net.name = format!("{}x{} 2D HyperX", self.x, self.y);
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cable;

    #[test]
    fn small_hyperx_counts_match_appendix_c() {
        // 32x32 Hx1Mesh: 32+32 = 64 switches per plane; 2,048 DAC and
        // 2,048 AoC endpoint cables per plane (App. C1d).
        let net = HyperXParams::small().build();
        assert_eq!(net.endpoints.len(), 1024);
        assert_eq!(net.topo.count_switches(), 64);
        assert_eq!(net.topo.count_cables(Cable::Dac), 2048);
        assert_eq!(net.topo.count_cables(Cable::Aoc), 2048);
        assert_eq!(net.topo.count_cables(Cable::Pcb), 0);
    }

    #[test]
    fn routing_survives_a_failed_row_cable() {
        use crate::graph::PortId;
        let mut net = HyperXParams {
            x: 4,
            y: 4,
            radix: 64,
        }
        .build();
        // Endpoint 0's East port (port 0, wired first) is a row cable.
        let src = net.endpoints[0];
        let dead = PortId(0);
        assert!(net.topo.kind(net.topo.peer(src, dead).node).is_switch());
        net.topo.fail_link(src, dead);
        // Every destination is still reached, never over the dead link.
        for d in 1..net.endpoints.len() {
            let dst = net.endpoints[d];
            let (mut node, mut vc, mut hops) = (src, 0u8, 0u32);
            while node != dst {
                let mut cand = Vec::new();
                net.router.candidates(&net.topo, node, vc, dst, &mut cand);
                assert!(!cand.is_empty(), "stuck at {node:?} toward {d}");
                for h in &cand {
                    assert!(!net.topo.link_failed(node, h.port));
                }
                node = net.topo.peer(node, cand[0].port).node;
                vc = cand[0].vc;
                hops += 1;
                assert!(hops <= 8, "detour too long toward {d}");
            }
        }
    }

    #[test]
    fn hyperx_diameter_is_short() {
        // src -> row switch -> intermediate -> col switch -> dst: at most
        // 4 cable hops endpoint-to-endpoint for 1x1 boards... plus entry.
        let net = HyperXParams {
            x: 8,
            y: 8,
            radix: 64,
        }
        .build();
        let d = net.topo.bfs_hops(net.endpoints[0]);
        let max = net.endpoints.iter().map(|e| d[e.idx()]).max().unwrap();
        assert!(max <= 4, "HyperX endpoint diameter {max} > 4");
    }
}
