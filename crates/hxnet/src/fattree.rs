//! Fat-tree topologies (nonblocking and tapered), App. C configurations.
//!
//! Two- and three-level folded-Clos trees built from `radix`-port switches.
//! Endpoints attach with DAC cables, inter-switch links are AoC (as the
//! paper's cost layouts prescribe). Tapering removes up links at the first
//! level (§III-D: "fat trees are tapered beginning from the second level"
//! means the reduction shows between level 1 and level 2).

use crate::graph::{Cable, Network, NodeId, PortId, Topology};
use crate::route::{FailoverTable, Hop, Router, UpDownTable};
use crate::{cable_link, CABLE_LATENCY_PS, PS_PER_BYTE_400G};

/// Parameters of a fat tree. Use the preset constructors for the paper's
/// exact App. C configurations.
#[derive(Clone, Debug)]
pub struct FatTreeParams {
    pub name: String,
    pub num_endpoints: usize,
    /// Endpoints per leaf switch.
    pub leaf_down: usize,
    /// Up links per leaf switch.
    pub leaf_up: usize,
    /// `2` or `3` levels of switches.
    pub levels: u8,
    /// 3-level only: leaf switches per pod.
    pub pod_leaves: usize,
    /// 3-level only: middle switches per pod.
    pub pod_mid: usize,
    /// 3-level only: up links per middle switch.
    pub mid_up: usize,
    /// Number of top-level (spine/root) switches.
    pub num_spines: usize,
}

impl FatTreeParams {
    /// Two-level nonblocking fat tree for ~1k endpoints (App. C1a):
    /// 32 leaf switches (32 down / 32 up), 16 spines.
    pub fn small_nonblocking() -> Self {
        Self {
            name: "nonblocking fat tree (1k)".into(),
            num_endpoints: 1024,
            leaf_down: 32,
            leaf_up: 32,
            levels: 2,
            pod_leaves: 0,
            pod_mid: 0,
            mid_up: 0,
            num_spines: 16,
        }
    }

    /// Two-level 50%-tapered fat tree (App. C1b): 25 leaves with 42 down /
    /// 22 up ports, 9 spines, 1,050 endpoints.
    pub fn small_tapered50() -> Self {
        Self {
            name: "50% tapered fat tree (1k)".into(),
            num_endpoints: 1050,
            leaf_down: 42,
            leaf_up: 22,
            levels: 2,
            pod_leaves: 0,
            pod_mid: 0,
            mid_up: 0,
            num_spines: 9,
        }
    }

    /// Two-level 75%-tapered fat tree (App. C1b): 21 leaves with 51 down /
    /// 13 up ports, 5 spines, 1,071 endpoints.
    pub fn small_tapered75() -> Self {
        Self {
            name: "75% tapered fat tree (1k)".into(),
            num_endpoints: 1071,
            leaf_down: 51,
            leaf_up: 13,
            levels: 2,
            pod_leaves: 0,
            pod_mid: 0,
            mid_up: 0,
            num_spines: 5,
        }
    }

    /// Three-level nonblocking fat tree for 16,384 endpoints (App. C2a):
    /// 512 leaves, 512 middle switches (pods of 16+16), 256 roots.
    pub fn large_nonblocking() -> Self {
        Self {
            name: "nonblocking fat tree (16k)".into(),
            num_endpoints: 16384,
            leaf_down: 32,
            leaf_up: 32,
            levels: 3,
            pod_leaves: 16,
            pod_mid: 16,
            mid_up: 32,
            num_spines: 256,
        }
    }

    /// A reduced-scale nonblocking tree for fast simulation: two levels,
    /// `radix`-port switches, as many leaves as needed for `n` endpoints.
    pub fn scaled_nonblocking(n: usize, radix: usize) -> Self {
        let down = radix / 2;
        let leaves = n.div_ceil(down);
        let spines = (leaves * down).div_ceil(radix).max(1);
        Self {
            name: format!("nonblocking fat tree ({n})"),
            num_endpoints: n,
            leaf_down: down,
            leaf_up: down,
            levels: 2,
            pod_leaves: 0,
            pod_mid: 0,
            mid_up: 0,
            num_spines: spines,
        }
    }

    /// A reduced-scale tapered tree: `taper` is the fraction of up links
    /// removed (0.5 or 0.75 in the paper).
    pub fn scaled_tapered(n: usize, radix: usize, taper: f64) -> Self {
        assert!((0.0..1.0).contains(&taper));
        let mut p = Self::scaled_nonblocking(n, radix);
        p.leaf_up = ((p.leaf_up as f64) * (1.0 - taper)).round().max(1.0) as usize;
        p.num_spines = (p.num_leaves() * p.leaf_up).div_ceil(radix).max(1);
        p.name = format!("{}% tapered fat tree ({n})", (taper * 100.0) as u32);
        p
    }

    pub fn num_leaves(&self) -> usize {
        self.num_endpoints.div_ceil(self.leaf_down)
    }

    pub fn num_pods(&self) -> usize {
        if self.levels == 3 {
            self.num_leaves().div_ceil(self.pod_leaves)
        } else {
            0
        }
    }

    /// Construct the topology and its up/down router.
    pub fn build(&self) -> Network {
        let mut topo = Topology::new();
        let mut endpoints = Vec::with_capacity(self.num_endpoints);
        for r in 0..self.num_endpoints {
            endpoints.push(topo.add_accelerator(r as u32));
        }
        let num_leaves = self.num_leaves();
        let leaves: Vec<NodeId> = (0..num_leaves)
            .map(|i| {
                topo.add_switch(
                    0,
                    if self.levels == 3 {
                        (i / self.pod_leaves) as u32
                    } else {
                        0
                    },
                    i as u32,
                )
            })
            .collect();
        // Endpoint attachment: DAC.
        for (r, &e) in endpoints.iter().enumerate() {
            let leaf = leaves[r / self.leaf_down];
            topo.connect(e, leaf, cable_link(Cable::Dac));
        }
        let mut levels: Vec<Vec<NodeId>> = vec![leaves.clone()];

        // Up ports start after the down ports on every switch; remember the
        // boundary so the router can classify ports without lookups.
        let mut up_start: Vec<(NodeId, usize)> = Vec::new();

        if self.levels == 2 {
            let spines: Vec<NodeId> = (0..self.num_spines)
                .map(|i| topo.add_switch(1, 0, i as u32))
                .collect();
            for (li, &leaf) in leaves.iter().enumerate() {
                up_start.push((leaf, topo.num_ports(leaf)));
                for j in 0..self.leaf_up {
                    let spine = spines[(li + j) % self.num_spines];
                    topo.connect(leaf, spine, cable_link(Cable::Aoc));
                }
            }
            for &s in &spines {
                up_start.push((s, topo.num_ports(s)));
            }
            levels.push(spines);
        } else {
            assert_eq!(self.levels, 3, "only 2- and 3-level trees are supported");
            let num_pods = self.num_pods();
            let mids: Vec<NodeId> = (0..num_pods * self.pod_mid)
                .map(|i| topo.add_switch(1, (i / self.pod_mid) as u32, i as u32))
                .collect();
            let spines: Vec<NodeId> = (0..self.num_spines)
                .map(|i| topo.add_switch(2, 0, i as u32))
                .collect();
            // Leaf -> pod mids.
            for (li, &leaf) in leaves.iter().enumerate() {
                up_start.push((leaf, topo.num_ports(leaf)));
                let pod = li / self.pod_leaves;
                for j in 0..self.leaf_up {
                    let mid = mids[pod * self.pod_mid + (li + j) % self.pod_mid];
                    topo.connect(leaf, mid, cable_link(Cable::Aoc));
                }
            }
            // Mid -> spines.
            for (mi, &mid) in mids.iter().enumerate() {
                up_start.push((mid, topo.num_ports(mid)));
                for j in 0..self.mid_up {
                    let spine = spines[(mi + j) % self.num_spines];
                    topo.connect(mid, spine, cable_link(Cable::Aoc));
                }
            }
            for &s in &spines {
                up_start.push((s, topo.num_ports(s)));
            }
            levels.push(mids);
            levels.push(spines);
        }

        let boundary: std::collections::BTreeMap<NodeId, usize> = up_start.into_iter().collect();
        let table = UpDownTable::build(
            &topo,
            &levels,
            |sw, p| p.idx() >= boundary[&sw],
            |sw, p| {
                let peer = topo.peer(sw, p).node;
                topo.kind(peer).is_accelerator().then_some(peer)
            },
        );
        Network {
            router: Box::new(FatTreeRouter::new(table)),
            topo,
            endpoints,
            name: self.name.clone(),
        }
    }
}

/// Up*/down* adaptive routing on a fat tree (one VC; deadlock-free).
///
/// Failure-aware: while any link is failed, the up/down candidate set is
/// corrected by a [`FailoverTable`] — dead up/down ports are skipped, up
/// ports whose spine can no longer reach the target are not offered, and
/// when a switch's whole structured set is cut the router falls back to
/// failure-aware shortest paths.
pub struct FatTreeRouter {
    table: UpDownTable,
    failover: FailoverTable,
}

impl FatTreeRouter {
    fn new(table: UpDownTable) -> Self {
        Self {
            table,
            failover: FailoverTable::new(),
        }
    }
}

impl Router for FatTreeRouter {
    fn num_vcs(&self) -> u8 {
        1
    }

    fn candidates(
        &self,
        topo: &Topology,
        node: NodeId,
        vc: u8,
        target: NodeId,
        out: &mut Vec<Hop>,
    ) {
        if vc >= self.num_vcs() {
            // Escape VC: sticky failure-epoch routing (see FailoverTable).
            self.failover.escape_candidates(topo, node, vc, target, out);
            return;
        }
        if node == target {
            return;
        }
        if topo.kind(node).is_accelerator() {
            // Endpoints inject on all their (usually one) ports.
            for p in 0..topo.num_ports(node) {
                out.push(Hop {
                    port: PortId(p as u16),
                    vc,
                });
            }
        } else {
            self.table.candidates(node, target, vc, out);
        }
        if topo.has_failures() {
            self.failover
                .filter(topo, node, self.num_vcs(), target, out);
        }
    }
}

/// A single `radix`-port crossbar switch connecting `n` endpoints — used by
/// HammingMesh rows/columns when they fit in one switch, and handy in tests.
pub fn single_switch(n: usize, name: &str) -> Network {
    let mut topo = Topology::new();
    let endpoints: Vec<NodeId> = (0..n).map(|r| topo.add_accelerator(r as u32)).collect();
    let sw = topo.add_switch(0, 0, 0);
    for &e in &endpoints {
        topo.connect(e, sw, cable_link(Cable::Dac));
    }
    let table = UpDownTable::build(
        &topo,
        &[vec![sw]],
        |_, _| false,
        |sw_, p| {
            let peer = topo.peer(sw_, p).node;
            topo.kind(peer).is_accelerator().then_some(peer)
        },
    );
    Network {
        router: Box::new(FatTreeRouter::new(table)),
        topo,
        endpoints,
        name: name.to_string(),
    }
}

/// Sanity helper used in tests: total serialization rate through the tree's
/// bisection, for comparing tapering factors.
pub fn uplink_bytes_per_ps(params: &FatTreeParams) -> f64 {
    (params.num_leaves() * params.leaf_up) as f64 / PS_PER_BYTE_400G
        * (CABLE_LATENCY_PS as f64 * 0.0 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::ZeroLoad;

    #[test]
    fn small_nonblocking_counts_match_appendix_c() {
        let net = FatTreeParams::small_nonblocking().build();
        assert_eq!(net.endpoints.len(), 1024);
        // 32 leaves + 16 spines per plane.
        assert_eq!(net.topo.count_switches(), 48);
        // 1,024 DAC endpoint cables; 1,024 AoC switch-switch cables.
        assert_eq!(net.topo.count_cables(Cable::Dac), 1024);
        assert_eq!(net.topo.count_cables(Cable::Aoc), 1024);
        net.topo.validate().unwrap();
    }

    #[test]
    fn tapered_counts_match_appendix_c() {
        let net = FatTreeParams::small_tapered50().build();
        assert_eq!(net.topo.count_switches(), 25 + 9);
        assert_eq!(net.topo.count_cables(Cable::Dac), 1050);
        assert_eq!(net.topo.count_cables(Cable::Aoc), 550);

        let net = FatTreeParams::small_tapered75().build();
        assert_eq!(net.topo.count_switches(), 21 + 5);
        assert_eq!(net.topo.count_cables(Cable::Dac), 1071);
        assert_eq!(net.topo.count_cables(Cable::Aoc), 273);
    }

    #[test]
    fn large_nonblocking_counts_match_appendix_c() {
        let net = FatTreeParams::large_nonblocking().build();
        assert_eq!(net.endpoints.len(), 16384);
        assert_eq!(net.topo.count_switches(), 512 + 512 + 256);
        assert_eq!(net.topo.count_cables(Cable::Dac), 16384);
        assert_eq!(net.topo.count_cables(Cable::Aoc), 2 * 16384);
    }

    /// Walk greedy (first candidate) routes between random pairs and check
    /// they arrive within the tree diameter.
    fn check_reachability(net: &Network, pairs: &[(usize, usize)], max_hops: u32) {
        for &(s, d) in pairs {
            let (src, dst) = (net.endpoints[s], net.endpoints[d]);
            let mut node = src;
            let mut hops = 0;
            while node != dst {
                let mut cand = Vec::new();
                net.router.candidates(&net.topo, node, 0, dst, &mut cand);
                assert!(!cand.is_empty(), "stuck at {node:?} toward {dst:?}");
                node = net.topo.peer(node, cand[0].port).node;
                hops += 1;
                assert!(hops <= max_hops, "route too long {src:?}->{dst:?}");
            }
        }
    }

    #[test]
    fn routing_reaches_destination() {
        let net = FatTreeParams::small_nonblocking().build();
        let pairs = [(0, 1), (0, 33), (5, 1000), (1023, 0), (512, 513)];
        check_reachability(&net, &pairs, 4);
    }

    #[test]
    fn three_level_routing_reaches_destination() {
        let mut p = FatTreeParams::large_nonblocking();
        // shrink: 4 pods of 4+4, 256 endpoints, 8 roots
        p.num_endpoints = 16 * 16;
        p.leaf_down = 16;
        p.leaf_up = 4;
        p.pod_leaves = 4;
        p.pod_mid = 4;
        p.mid_up = 4;
        p.num_spines = 8;
        let net = p.build();
        let pairs = [(0, 255), (0, 15), (16, 17), (100, 200)];
        check_reachability(&net, &pairs, 6);
    }

    #[test]
    fn single_switch_routes_in_two_hops() {
        let net = single_switch(8, "sw");
        check_reachability(&net, &[(0, 7), (3, 4)], 2);
    }

    #[test]
    fn no_waypoints_for_fat_tree() {
        let net = FatTreeParams::small_nonblocking().build();
        let mut rng = rand::rng();
        assert!(net
            .router
            .select_waypoint(
                &net.topo,
                net.endpoints[0],
                net.endpoints[9],
                &ZeroLoad,
                &mut rng
            )
            .is_none());
    }

    #[test]
    fn routing_avoids_failed_up_and_down_links() {
        let mut net = FatTreeParams::scaled_nonblocking(32, 8).build();
        let (src, dst) = (net.endpoints[0], net.endpoints[31]);
        // The source leaf and its up ports.
        let leaf = net.topo.peer(src, PortId(0)).node;
        let ups: Vec<PortId> = (0..net.topo.num_ports(leaf))
            .map(|p| PortId(p as u16))
            .filter(|&p| {
                let peer = net.topo.peer(leaf, p).node;
                matches!(net.topo.kind(peer), NodeKind::Switch { level: 1, .. })
            })
            .collect();
        assert!(ups.len() >= 2, "need multiple spines for this test");
        // Kill all but one up link; the survivor must be the only offer.
        for &p in &ups[1..] {
            net.topo.fail_link(leaf, p);
        }
        let mut cand = Vec::new();
        net.router.candidates(&net.topo, leaf, 0, dst, &mut cand);
        assert_eq!(cand.len(), 1);
        assert_eq!(cand[0].port, ups[0]);
        // Also kill the surviving spine's *down* link toward dst's leaf:
        // strict up*/down* is now cut, and the failover shortest path
        // detours down through another leaf and back up — longer, but it
        // delivers without touching a dead link.
        let spine = net.topo.peer(leaf, ups[0]).node;
        let dleaf = net.topo.peer(dst, PortId(0)).node;
        let down = (0..net.topo.num_ports(spine))
            .map(|p| PortId(p as u16))
            .find(|&p| net.topo.peer(spine, p).node == dleaf)
            .expect("spine-down link");
        net.topo.fail_link(spine, down);
        check_reachability(&net, &[(0, 31)], 6);
        // Isolating dst entirely makes the router report unreachable
        // (empty candidate set) instead of looping.
        net.topo.fail_link(dst, PortId(0));
        cand.clear();
        net.router.candidates(&net.topo, leaf, 0, dst, &mut cand);
        assert!(cand.is_empty(), "{cand:?}");
        // Repair: the full candidate set returns.
        net.topo.restore_link(dst, PortId(0));
        net.topo.restore_link(spine, down);
        for &p in &ups[1..] {
            net.topo.restore_link(leaf, p);
        }
        cand.clear();
        net.router.candidates(&net.topo, leaf, 0, dst, &mut cand);
        assert_eq!(cand.len(), ups.len());
        check_reachability(&net, &[(0, 31)], 4);
    }

    use crate::graph::NodeKind;

    #[test]
    fn scaled_constructors_produce_sane_trees() {
        let net = FatTreeParams::scaled_nonblocking(256, 64).build();
        assert_eq!(net.endpoints.len(), 256);
        let net = FatTreeParams::scaled_tapered(256, 64, 0.5).build();
        assert_eq!(net.endpoints.len(), 256);
        net.topo.validate().unwrap();
    }
}
