//! High-level measurement drivers shared by the benchmark harness, the
//! examples, and the integration tests.

use hxcollect::allreduce::{
    bidirectional_ring_allreduce, disjoint_rings_allreduce, ring_allreduce, torus2d_allreduce,
};
use hxcollect::model;
use hxcollect::simapp::ScheduleApp;
use hxnet::Network;
use hxsim::apps::{Alltoall, Permutation};
use hxsim::{simulate, EngineKind, SimConfig};

/// Outcome of a bandwidth measurement on the simulator. Produced by
/// either backend: the plain drivers run the packet engine, the `*_on`
/// variants run whichever [`EngineKind`] they are given (figure binaries
/// default to the flow fast path — see `tests/flow_vs_packet.rs` for the
/// agreement bands between the two).
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Simulated completion time (ps).
    pub time_ps: u64,
    /// Bytes the pattern moves per rank (for normalization).
    pub bytes_per_rank: u64,
    /// Pattern-specific normalized bandwidth:
    /// alltoall -> share of injection bandwidth (Table II "glob. BW");
    /// allreduce -> share of the S/(inj/2) optimum (Table II "ared. BW").
    pub bw_fraction: f64,
    /// The run finished with every message delivered.
    pub clean: bool,
}

/// Allreduce algorithm selector (§V-A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Unidirectional pipelined ring.
    Ring,
    /// Bidirectional pipelined ring (two ports).
    BidirRing,
    /// Two bidirectional rings on edge-disjoint Hamiltonian cycles
    /// (all four ports; "rings" in Fig. 13).
    DisjointRings,
    /// 2D torus algorithm ("torus" in Fig. 13), doubled over 4 ports.
    Torus2D,
}

impl AllreduceAlgo {
    /// Stable identifier used by the `hxserve` scenario specs; `"rings"`
    /// and `"torus"` match the labels Fig. 13 uses for the two headline
    /// algorithms.
    pub fn spec_name(self) -> &'static str {
        match self {
            AllreduceAlgo::Ring => "ring",
            AllreduceAlgo::BidirRing => "bidir_ring",
            AllreduceAlgo::DisjointRings => "rings",
            AllreduceAlgo::Torus2D => "torus",
        }
    }

    pub fn all() -> [AllreduceAlgo; 4] {
        [
            AllreduceAlgo::Ring,
            AllreduceAlgo::BidirRing,
            AllreduceAlgo::DisjointRings,
            AllreduceAlgo::Torus2D,
        ]
    }
}

impl std::str::FromStr for AllreduceAlgo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AllreduceAlgo::all()
            .into_iter()
            .find(|a| a.spec_name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = AllreduceAlgo::all().map(AllreduceAlgo::spec_name).to_vec();
                format!(
                    "unknown algorithm {s:?} (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// Grid factorization of `n` ranks for torus-structured algorithms.
fn near_square_grid(n: usize) -> (usize, usize) {
    let mut r = (n as f64).sqrt() as usize;
    while r > 1 && !n.is_multiple_of(r) {
        r -= 1;
    }
    (n / r, r) // rows >= cols so r = k*c more often satisfiable
}

/// Run one allreduce of `bytes` per rank over the whole machine and report
/// the achieved fraction of the theoretical optimum (packet engine).
pub fn allreduce_bandwidth(net: &Network, algo: AllreduceAlgo, bytes: u64) -> Measurement {
    allreduce_bandwidth_on(net, algo, bytes, EngineKind::Packet)
}

/// [`allreduce_bandwidth`] on an explicitly chosen simulation backend.
pub fn allreduce_bandwidth_on(
    net: &Network,
    algo: AllreduceAlgo,
    bytes: u64,
    engine: EngineKind,
) -> Measurement {
    let p = net.num_ranks();
    let elems = (bytes / hxcollect::ELEM_BYTES).max(p as u64 * 4) as usize;
    let sched = match algo {
        AllreduceAlgo::Ring => ring_allreduce(p, elems),
        AllreduceAlgo::BidirRing => bidirectional_ring_allreduce(p, elems),
        AllreduceAlgo::DisjointRings => disjoint_rings_allreduce_grid(p, elems),
        AllreduceAlgo::Torus2D => {
            let (r, c) = near_square_grid(p);
            torus2d_allreduce(r, c, elems, true)
        }
    };
    let mut app = ScheduleApp::new(&sched);
    let stats = simulate(net, SimConfig::default(), engine, &mut app);
    let s_bytes = elems as u64 * hxcollect::ELEM_BYTES;
    let inj = net.injection_bytes_per_ps(0);
    Measurement {
        time_ps: stats.finish_ps,
        bytes_per_rank: s_bytes,
        bw_fraction: model::allreduce_bw_fraction(s_bytes, stats.finish_ps, inj),
        clean: stats.clean() && app.is_done(),
    }
}

fn disjoint_rings_allreduce_grid(p: usize, elems: usize) -> hxcollect::Schedule {
    let (r, c) = near_square_grid(p);
    disjoint_rings_allreduce(r, c, elems).0
}

/// Balanced-shift alltoall of `bytes` per pair (§V-A1a); reports the share
/// of injection bandwidth sustained (packet engine).
pub fn alltoall_bandwidth(net: &Network, bytes: u64, window: u32) -> Measurement {
    alltoall_bandwidth_on(net, bytes, window, EngineKind::Packet)
}

/// [`alltoall_bandwidth`] on an explicitly chosen simulation backend.
pub fn alltoall_bandwidth_on(
    net: &Network,
    bytes: u64,
    window: u32,
    engine: EngineKind,
) -> Measurement {
    alltoall_bandwidth_cfg(net, bytes, window, engine, SimConfig::default())
}

/// [`alltoall_bandwidth_on`] under an explicit [`SimConfig`] — the entry
/// point for fault-injection sweeps, which carry a mid-run
/// `FailureSchedule` (and possibly a retransmit policy) in the config.
pub fn alltoall_bandwidth_cfg(
    net: &Network,
    bytes: u64,
    window: u32,
    engine: EngineKind,
    cfg: SimConfig,
) -> Measurement {
    let p = net.num_ranks();
    let mut app = Alltoall::new(p, bytes, window);
    let stats = simulate(net, cfg, engine, &mut app);
    let per_rank = app.bytes_per_rank();
    let inj = net.injection_bytes_per_ps(0);
    Measurement {
        time_ps: stats.finish_ps,
        bytes_per_rank: per_rank,
        bw_fraction: model::alltoall_bw_fraction(per_rank, stats.finish_ps, inj),
        clean: stats.clean(),
    }
}

/// Random-permutation traffic (§V-A1b): per-accelerator receive bandwidth
/// distribution in fractions of injection bandwidth (packet engine).
pub fn permutation_bandwidths(net: &Network, bytes: u64, rounds: u32, seed: u64) -> Vec<f64> {
    permutation_bandwidths_on(net, bytes, rounds, seed, EngineKind::Packet)
}

/// [`permutation_bandwidths`] on an explicitly chosen simulation backend.
pub fn permutation_bandwidths_on(
    net: &Network,
    bytes: u64,
    rounds: u32,
    seed: u64,
    engine: EngineKind,
) -> Vec<f64> {
    let p = net.num_ranks();
    let mut app = Permutation::new(p, bytes, rounds, seed);
    let stats = simulate(net, SimConfig::default(), engine, &mut app);
    assert!(stats.clean(), "permutation run did not complete");
    let inj = net.injection_bytes_per_ps(0);
    stats
        .rank_recv_bytes_per_ps()
        .into_iter()
        .filter(|&b| b > 0.0)
        .map(|b| b / inj)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hxnet::hammingmesh::HxMeshParams;
    use hxnet::torus::TorusParams;

    #[test]
    fn allreduce_measures_reasonable_fractions() {
        // 2x2 Hx2Mesh (16 accels), 8 MiB: the rings algorithm must reach a
        // solid share of the optimum in the bandwidth regime (paper Fig. 13
        // reaches >90% at large sizes; small sizes are latency-bound).
        let net = HxMeshParams::square(2, 2).build();
        let m = allreduce_bandwidth(&net, AllreduceAlgo::DisjointRings, 8 << 20);
        assert!(m.clean);
        assert!(m.bw_fraction > 0.6, "rings fraction {:.3}", m.bw_fraction);
        // Unidirectional ring can use at most 1 of 4 ports each way:
        // fraction <= ~0.5 of the 4-port optimum.
        let m1 = allreduce_bandwidth(&net, AllreduceAlgo::Ring, 8 << 20);
        assert!(m1.clean);
        assert!(m1.bw_fraction < m.bw_fraction);
        assert!(
            m1.bw_fraction < 0.55,
            "uni ring fraction {:.3}",
            m1.bw_fraction
        );
    }

    #[test]
    fn alltoall_fraction_reflects_oversubscription() {
        // Hx2Mesh cut ratio is 1/(2a) = 1/4; small meshes do a bit better
        // because not all traffic crosses the bisection (§V-A1a).
        let net = HxMeshParams::square(2, 4).build();
        let m = alltoall_bandwidth(&net, 64 << 10, 2);
        assert!(m.clean);
        assert!(
            m.bw_fraction > 0.10 && m.bw_fraction < 0.9,
            "alltoall fraction {:.3}",
            m.bw_fraction
        );
    }

    #[test]
    fn torus_alltoall_is_much_worse_than_hxmesh() {
        let hx = HxMeshParams::square(2, 4).build();
        let torus = TorusParams {
            cols: 8,
            rows: 8,
            board: 2,
        }
        .build();
        let mh = alltoall_bandwidth(&hx, 32 << 10, 2);
        let mt = alltoall_bandwidth(&torus, 32 << 10, 2);
        assert!(mh.clean && mt.clean);
        assert!(
            mt.bw_fraction < mh.bw_fraction,
            "torus {:.3} !< hxmesh {:.3}",
            mt.bw_fraction,
            mh.bw_fraction
        );
    }

    #[test]
    fn permutation_returns_per_rank_distribution() {
        let net = HxMeshParams::square(2, 2).build();
        let bw = permutation_bandwidths(&net, 128 << 10, 2, 42);
        assert_eq!(bw.len(), 16);
        assert!(bw.iter().all(|&b| b > 0.0 && b <= 1.01));
    }

    #[test]
    fn flow_engine_reproduces_the_alltoall_ordering() {
        // The qualitative Fig. 1 result must not depend on the backend:
        // HxMesh beats the torus on alltoall under the flow engine too.
        let hx = HxMeshParams::square(2, 4).build();
        let torus = TorusParams {
            cols: 8,
            rows: 8,
            board: 2,
        }
        .build();
        let mh = alltoall_bandwidth_on(&hx, 32 << 10, 2, EngineKind::Flow);
        let mt = alltoall_bandwidth_on(&torus, 32 << 10, 2, EngineKind::Flow);
        assert!(mh.clean && mt.clean);
        assert!(
            mt.bw_fraction < mh.bw_fraction,
            "torus {:.3} !< hxmesh {:.3}",
            mt.bw_fraction,
            mh.bw_fraction
        );
    }
}
