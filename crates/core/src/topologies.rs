//! A uniform way to build all eight Table II topologies at paper scale or
//! at a reduced "fits on a laptop" scale (DESIGN.md substitution #2).

use hxnet::dragonfly::DragonflyParams;
use hxnet::fattree::FatTreeParams;
use hxnet::hammingmesh::HxMeshParams;
use hxnet::hyperx::HyperXParams;
use hxnet::torus::TorusParams;
use hxnet::Network;

/// The eight topologies of Table II, in row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyChoice {
    FatTree,
    FatTree50,
    FatTree75,
    Dragonfly,
    HyperX,
    Hx2Mesh,
    Hx4Mesh,
    Torus,
}

impl TopologyChoice {
    pub fn all() -> [TopologyChoice; 8] {
        use TopologyChoice::*;
        [
            FatTree, FatTree50, FatTree75, Dragonfly, HyperX, Hx2Mesh, Hx4Mesh, Torus,
        ]
    }

    /// Stable machine-readable identifier used by the `hxserve` scenario
    /// specs ([`std::str::FromStr`] is the inverse).
    pub fn spec_name(self) -> &'static str {
        match self {
            TopologyChoice::FatTree => "fat_tree",
            TopologyChoice::FatTree50 => "fat_tree_50",
            TopologyChoice::FatTree75 => "fat_tree_75",
            TopologyChoice::Dragonfly => "dragonfly",
            TopologyChoice::HyperX => "hyperx",
            TopologyChoice::Hx2Mesh => "hx2mesh",
            TopologyChoice::Hx4Mesh => "hx4mesh",
            TopologyChoice::Torus => "torus",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TopologyChoice::FatTree => "nonblocking fat tree",
            TopologyChoice::FatTree50 => "50% tapered fat tree",
            TopologyChoice::FatTree75 => "75% tapered fat tree",
            TopologyChoice::Dragonfly => "Dragonfly",
            TopologyChoice::HyperX => "2D HyperX",
            TopologyChoice::Hx2Mesh => "Hx2Mesh",
            TopologyChoice::Hx4Mesh => "Hx4Mesh",
            TopologyChoice::Torus => "2D torus",
        }
    }

    /// Build at the paper's small-cluster scale (~1,024 accelerators).
    pub fn build_small(self) -> Network {
        match self {
            TopologyChoice::FatTree => FatTreeParams::small_nonblocking().build(),
            TopologyChoice::FatTree50 => FatTreeParams::small_tapered50().build(),
            TopologyChoice::FatTree75 => FatTreeParams::small_tapered75().build(),
            TopologyChoice::Dragonfly => DragonflyParams::small().build(),
            TopologyChoice::HyperX => HyperXParams::small().build(),
            TopologyChoice::Hx2Mesh => HxMeshParams::small_hx2().build(),
            TopologyChoice::Hx4Mesh => HxMeshParams::small_hx4().build(),
            TopologyChoice::Torus => TorusParams::small().build(),
        }
    }

    /// Build a reduced-scale variant with ~`n` accelerators (n must make
    /// the grid shapes work out; 64, 256 and 1024 are safe). The shapes
    /// mirror the paper's proportions: Hx2 uses an (√n/2)² board grid etc.
    pub fn build_scaled(self, n: usize) -> Network {
        let side = (n as f64).sqrt().round() as usize;
        assert_eq!(
            side * side,
            n,
            "scaled builds need a square accelerator count"
        );
        match self {
            TopologyChoice::FatTree => FatTreeParams::scaled_nonblocking(n, 64).build(),
            TopologyChoice::FatTree50 => FatTreeParams::scaled_tapered(n, 64, 0.5).build(),
            TopologyChoice::FatTree75 => FatTreeParams::scaled_tapered(n, 64, 0.75).build(),
            TopologyChoice::Dragonfly => DragonflyParams::scaled(n).build(),
            TopologyChoice::HyperX => HyperXParams {
                x: side,
                y: side,
                radix: 64,
            }
            .build(),
            TopologyChoice::Hx2Mesh => {
                assert_eq!(side % 2, 0, "Hx2 needs an even side");
                HxMeshParams::square(2, side / 2).build()
            }
            TopologyChoice::Hx4Mesh => {
                assert_eq!(side % 4, 0, "Hx4 needs side divisible by 4");
                HxMeshParams::square(4, side / 4).build()
            }
            TopologyChoice::Torus => TorusParams {
                cols: side,
                rows: side,
                board: 2,
            }
            .build(),
        }
    }
}

impl std::str::FromStr for TopologyChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopologyChoice::all()
            .into_iter()
            .find(|t| t.spec_name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = TopologyChoice::all()
                    .map(TopologyChoice::spec_name)
                    .to_vec();
                format!(
                    "unknown topology {s:?} (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_round_trip() {
        for t in TopologyChoice::all() {
            assert_eq!(t.spec_name().parse::<TopologyChoice>(), Ok(t));
        }
        assert!("fat-tree".parse::<TopologyChoice>().is_err());
    }

    #[test]
    fn all_scaled_topologies_build_at_256() {
        for t in TopologyChoice::all() {
            let net = t.build_scaled(256);
            assert!(
                net.endpoints.len() >= 256,
                "{}: {} endpoints",
                t.name(),
                net.endpoints.len()
            );
            net.topo.validate().unwrap();
        }
    }

    #[test]
    fn small_builds_have_paper_sizes() {
        for t in TopologyChoice::all() {
            let net = t.build_small();
            assert!(
                (1024..=1071).contains(&net.endpoints.len()),
                "{}: {}",
                t.name(),
                net.endpoints.len()
            );
        }
    }
}
