//! # hammingmesh — a network topology for large-scale deep learning
//!
//! A from-scratch Rust implementation of the system described in
//! *HammingMesh: A Network Topology for Large-Scale Deep Learning*
//! (Hoefler et al., SC 2022): the HxMesh topology family and every
//! substrate its evaluation depends on — the baseline topologies, a
//! packet-level network simulator, the collective-communication
//! algorithms, the capex cost model, the job allocator, the DNN
//! workload models, and the cluster-lifetime simulator that composes
//! them all ([`hxcluster`]).
//!
//! This crate is the facade: it re-exports the subsystem crates and adds
//! the high-level experiment drivers used by the benchmark harness and the
//! examples.
//!
//! ```
//! use hammingmesh::prelude::*;
//!
//! // Build a small HammingMesh and measure a ring allreduce on it.
//! let net = HxMeshParams::square(2, 4).build();
//! let m = experiments::allreduce_bandwidth(&net, AllreduceAlgo::DisjointRings, 1 << 20);
//! assert!(m.bw_fraction > 0.2, "{}", m.bw_fraction);
//! ```

pub use hxalloc;
pub use hxcluster;
pub use hxcollect;
pub use hxcost;
pub use hxmodels;
pub use hxnet;
pub use hxsim;
pub use hxtelemetry;

pub mod experiments;
pub mod topologies;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::experiments::{self, AllreduceAlgo, Measurement};
    pub use crate::topologies::{self, TopologyChoice};
    pub use hxalloc::{BoardMesh, Heuristics};
    pub use hxcluster::{ClusterConfig, ClusterReport, ClusterSim};
    pub use hxcollect::schedule::Schedule;
    pub use hxcost::{ClusterSize, Inventory, Prices};
    pub use hxmodels::DnnWorkload;
    pub use hxnet::dragonfly::DragonflyParams;
    pub use hxnet::fattree::FatTreeParams;
    pub use hxnet::hammingmesh::HxMeshParams;
    pub use hxnet::hyperx::HyperXParams;
    pub use hxnet::torus::TorusParams;
    pub use hxnet::Network;
    pub use hxsim::{simulate, Engine, EngineKind, FlowEngine, SimConfig};
}
