//! `hxserve` — the scenario service: one declarative API over the
//! simulation stack, replacing the per-figure ad-hoc sweep drivers.
//!
//! A *scenario spec* (`specs/*.toml`) declares a topology set, a traffic
//! pattern, an engine, a failure set, and sweep axes; the library turns
//! it into typed values and runs it:
//!
//! ```text
//! spec source ──toml::parse──► Doc ──Scenario::parse──► Scenario
//!     Scenario::resolve(Overrides) ──► Plan (cells in render order)
//!     exec::run(&plan, &opts)     ──► RunResult (rows + cache counters)
//!     render::{render, render_csv, jsonl_row} ──► output bytes
//! ```
//!
//! Design rules, inherited from the workspace's determinism discipline:
//!
//! * **Dependency-free parsing.** The TOML subset is hand-rolled
//!   ([`toml`]), same no-crates.io regime as `hxlint`'s lexer.
//! * **Deterministic at any thread count.** Cells run concurrently on the
//!   vendored rayon pool but are reassembled in plan order, so every
//!   output byte is independent of `--threads`.
//! * **Content-addressed memoization.** Completed cells are cached on
//!   disk keyed on (spec source hash, cell descriptor, failure-set
//!   fingerprint) — byte-identical specs hit, any spec edit misses, and
//!   warm output is byte-identical to cold output ([`cache`]).
//! * **Figure fidelity.** The renderers reproduce the replaced figure
//!   binaries' stdout and CSV byte-for-byte (pinned by
//!   `crates/bench/tests/spec_golden.rs`).
//!
//! The `hxserve` binary (`src/main.rs`) fronts this with `run <spec>` and
//! `batch <specs...>` commands streaming JSONL or CSV.

pub mod cache;
pub mod cli;
pub mod exec;
pub mod render;
pub mod spec;
pub mod toml;

pub use exec::{run, run_with, BwCell, CellOutput, CellRow, ExecOptions, NetInfo, RunResult};
pub use spec::{
    CellKind, CellSpec, EngineSel, Overrides, Pattern, Plan, Scenario, Style, Sweep, TracesRole,
};
pub use toml::SpecError;
