//! The shared flag table and strict parser behind both CLIs: the
//! `hxserve` binary and the figure harness (`hxbench::HarnessArgs`).
//!
//! One table, two consumers — so `--help` output, value metavars, and the
//! "unknown flag" behavior (exit 2, no silent ignoring) can never drift
//! between the scenario service and the fifteen figure binaries.

/// One flag: name, optional value metavar, help line.
pub struct FlagSpec {
    /// Including the leading dashes (`"--seed"`).
    pub name: &'static str,
    /// `Some(metavar)` if the flag consumes the following argument.
    pub value: Option<&'static str>,
    pub help: &'static str,
}

/// Flags every sweep consumer takes (figure binaries and `hxserve`).
pub const COMMON_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--full",
        value: None,
        help: "run the paper-scale configuration instead of the quick default",
    },
    FlagSpec {
        name: "--traces",
        value: Some("N"),
        help: "override the spec's trace count (draws or cluster-size cap, per spec)",
    },
    FlagSpec {
        name: "--seed",
        value: Some("S"),
        help: "RNG seed (default 12648430 = 0xC0FFEE)",
    },
    FlagSpec {
        name: "--engine",
        value: Some("packet|flow"),
        help: "simulation backend override (default: flow)",
    },
    FlagSpec {
        name: "--threads",
        value: Some("N"),
        help: "sweep-pool worker threads; overrides RAYON_NUM_THREADS (default: all cores)",
    },
    FlagSpec {
        name: "--rates",
        value: Some("full|incremental"),
        help: "flow-engine max-min solver scope; bitwise-equivalent, full is the \
               reference for differential tests (default: incremental)",
    },
    FlagSpec {
        name: "--retransmit",
        value: Some("timeout|reroute"),
        help: "packet-engine recovery for packets dropped by mid-run link \
               failures: capped-exponential-backoff timeout, or a fast \
               NACK-style reroute (default: timeout)",
    },
    FlagSpec {
        name: "--metrics-out",
        value: Some("PATH"),
        help: "write the deterministic metrics registry (counters, gauges, \
               histograms, samples) as JSON to PATH",
    },
    FlagSpec {
        name: "--trace-out",
        value: Some("PATH"),
        help: "write a Chrome trace-event JSON (Perfetto-loadable) of the run \
               to PATH",
    },
];

/// Extra flags of the figure harness only.
pub const HARNESS_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--mode",
        value: Some("NAME"),
        help: "figure-specific sub-mode (fig10_failures: board|routed)",
    },
    FlagSpec {
        name: "--csv",
        value: Some("PATH"),
        help: "also write the printed table as CSV to PATH",
    },
];

/// Extra flags of the `hxserve` binary only.
pub const SERVE_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--format",
        value: Some("jsonl|csv|table"),
        help: "output format (default: jsonl)",
    },
    FlagSpec {
        name: "--cache-dir",
        value: Some("PATH"),
        help: "cell cache directory (default: target/hxserve-cache)",
    },
    FlagSpec {
        name: "--no-cache",
        value: None,
        help: "disable the cell cache (always recompute, write nothing)",
    },
    FlagSpec {
        name: "--stats",
        value: Some("PATH"),
        help: "write a JSON run summary (cells, cache hits/misses) to PATH",
    },
];

/// Recognized `(flag, value)` pairs in argument order.
pub type ParsedFlags = Vec<(String, Option<String>)>;

/// Parse `args` against the given flag tables. Returns the recognized
/// `(flag, value)` pairs in order plus the positional arguments.
/// `--help`/`-h` is always recognized (returned as a `"--help"` pair).
/// Unknown flags and flags missing their value are errors — callers print
/// the message and exit 2.
pub fn parse_flags(
    args: &[String],
    tables: &[&[FlagSpec]],
) -> Result<(ParsedFlags, Vec<String>), String> {
    let mut flags: ParsedFlags = Vec::new();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--help" || a == "-h" {
            flags.push(("--help".to_string(), None));
            continue;
        }
        if let Some(spec) = tables.iter().flat_map(|t| t.iter()).find(|s| s.name == a) {
            let value = match spec.value {
                Some(metavar) => match it.next() {
                    Some(v) => Some(v.clone()),
                    None => return Err(format!("{a} needs a value ({metavar})")),
                },
                None => None,
            };
            flags.push((a.clone(), value));
        } else if a.starts_with('-') && a.len() > 1 {
            return Err(format!("unknown flag {a:?} (try --help)"));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

/// Render the `--help` text for a usage line and a set of flag tables.
pub fn help_text(usage: &str, tables: &[&[FlagSpec]]) -> String {
    let mut out = format!("usage: {usage}\n\noptions:\n");
    for spec in tables.iter().flat_map(|t| t.iter()) {
        let left = match spec.value {
            Some(metavar) => format!("{} {metavar}", spec.name),
            None => spec.name.to_string(),
        };
        out.push_str(&format!("  {left:<26} {}\n", spec.help));
    }
    out
}

/// Apply a `--threads N` override by setting `RAYON_NUM_THREADS`, which
/// the vendored pool re-reads on every parallel call. Precedence:
/// `--threads` flag > inherited `RAYON_NUM_THREADS` > all cores.
pub fn apply_threads(n: usize) {
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
}

/// Apply a `--rates full|incremental` override by setting `HX_RATES`,
/// which `hxsim::SimConfig::default()` resolves via
/// `hxsim::RateMode::from_env()` — the sweep drivers construct their
/// `SimConfig`s internally, so the env var is the one channel that
/// reaches every simulation a process runs. Precedence: `--rates` flag >
/// inherited `HX_RATES` > incremental.
pub fn apply_rates(mode: hammingmesh::hxsim::RateMode) {
    let name = match mode {
        hammingmesh::hxsim::RateMode::Full => "full",
        hammingmesh::hxsim::RateMode::Incremental => "incremental",
    };
    std::env::set_var("HX_RATES", name);
}

/// Apply a `--retransmit timeout|reroute` override by setting
/// `HX_RETRANSMIT`, resolved by `hxsim::RetransmitPolicy::from_env()`
/// inside `hxsim::SimConfig::default()` — the same env channel as
/// [`apply_rates`], for the same reason. Precedence: `--retransmit` flag
/// > inherited `HX_RETRANSMIT` > timeout.
pub fn apply_retransmit(policy: hammingmesh::hxsim::RetransmitPolicy) {
    std::env::set_var("HX_RETRANSMIT", policy.as_str());
}

/// Apply `--metrics-out` / `--trace-out`: enable exactly the channels
/// that have a destination, so instrumented code costs one branch when
/// neither flag is given. Call before any simulation is constructed —
/// engines cache the enabled flags at construction.
pub fn apply_telemetry(metrics_out: Option<&std::path::Path>, trace_out: Option<&std::path::Path>) {
    hxtelemetry::collect::set_metrics_enabled(metrics_out.is_some());
    hxtelemetry::collect::set_trace_enabled(trace_out.is_some());
}

/// Write the collected telemetry artifacts after a run. Paths mirror
/// [`apply_telemetry`]; a `None` channel writes nothing. Both files are
/// byte-identical across thread counts and `--rates` modes.
pub fn write_telemetry(
    metrics_out: Option<&std::path::Path>,
    trace_out: Option<&std::path::Path>,
) -> std::io::Result<()> {
    if let Some(path) = metrics_out {
        hxtelemetry::collect::write_metrics_file(path)?;
    }
    if let Some(path) = trace_out {
        hxtelemetry::collect::write_trace_file(path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn recognized_flags_and_positionals() {
        let (flags, pos) = parse_flags(
            &argv(&["--full", "specs/a.toml", "--seed", "7", "b.toml"]),
            &[COMMON_FLAGS],
        )
        .unwrap();
        assert_eq!(
            flags,
            vec![
                ("--full".to_string(), None),
                ("--seed".to_string(), Some("7".to_string()))
            ]
        );
        assert_eq!(pos, argv(&["specs/a.toml", "b.toml"]));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse_flags(&argv(&["--frobnicate"]), &[COMMON_FLAGS]).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        // A flag from a table not passed in is unknown to this consumer.
        let err = parse_flags(&argv(&["--format", "csv"]), &[COMMON_FLAGS]).unwrap_err();
        assert!(err.contains("--format"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_flags(&argv(&["--seed"]), &[COMMON_FLAGS]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn help_is_always_recognized() {
        for h in ["--help", "-h"] {
            let (flags, _) = parse_flags(&argv(&[h]), &[COMMON_FLAGS]).unwrap();
            assert_eq!(flags[0].0, "--help");
        }
    }

    #[test]
    fn help_text_lists_every_flag() {
        let text = help_text("prog [options]", &[COMMON_FLAGS, HARNESS_FLAGS]);
        for spec in COMMON_FLAGS.iter().chain(HARNESS_FLAGS) {
            assert!(text.contains(spec.name), "missing {}", spec.name);
        }
        assert!(text.starts_with("usage: prog [options]\n"));
    }
}
