//! The content-addressed cell cache.
//!
//! A completed cell is stored as one small text record under the cache
//! directory, named by a 64-bit FNV-1a key over `(CACHE_VERSION, the
//! verbatim spec source, the cell descriptor, the failure-set
//! fingerprint)`. Byte-identical specs therefore hit across runs, and a
//! one-character spec edit — whitespace included — misses everything: the
//! spec *file* is the unit of trust, so there is no risk of serving a
//! result computed under semantics the edit changed. CLI overrides
//! (`--seed`, `--engine`, `--full`) flow into the descriptor through the
//! resolved cell, so they key naturally too.
//!
//! Records embed the descriptor and are verified on load: a key collision
//! degrades to a cache miss, never a wrong answer. Floats are stored as
//! `f64::to_bits` hex so a round-trip is exact and warm output stays
//! byte-identical to cold output. Writes go to a per-process temp file
//! first and are `rename`d into place, so concurrent runs sharing a cache
//! directory never observe a torn record.

use crate::exec::{BwCell, CellOutput, NetInfo};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Bump when record semantics change (fields, simulation meaning): a new
/// version orphans every old record rather than misreading it.
pub const CACHE_VERSION: u32 = 1;

const MAGIC: &str = "hxserve-cell v1";

/// One cached cell: what [`load`] returns and [`store`] persists.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheRecord {
    /// [`crate::spec::CellSpec::descriptor`] of the producing cell;
    /// verified on load so collisions can't cross-serve.
    pub descriptor: String,
    pub net: NetInfo,
    pub output: CellOutput,
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// The cache key for one cell. `0xFF` separators keep the parts
/// unambiguous (a lone `0xFF` byte cannot occur inside UTF-8 text).
pub fn cell_key(spec_src: &str, descriptor: &str, failure_set_id: u64) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    fnv1a(&mut h, &CACHE_VERSION.to_le_bytes());
    fnv1a(&mut h, spec_src.as_bytes());
    fnv1a(&mut h, &[0xFF]);
    fnv1a(&mut h, descriptor.as_bytes());
    fnv1a(&mut h, &[0xFF]);
    fnv1a(&mut h, &failure_set_id.to_le_bytes());
    h
}

fn record_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.cell"))
}

/// Load the record stored under `key`, or `None` on any miss: no file, a
/// torn/unparseable body, or a descriptor mismatch (hash collision).
pub fn load(dir: &Path, key: u64, descriptor: &str) -> Option<CacheRecord> {
    let body = std::fs::read_to_string(record_path(dir, key)).ok()?;
    let rec = parse_record(&body)?;
    (rec.descriptor == descriptor).then_some(rec)
}

/// Persist a record under `key` (atomic: temp file + rename).
pub fn store(dir: &Path, key: u64, rec: &CacheRecord) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".tmp-{key:016x}-{}", std::process::id()));
    std::fs::write(&tmp, serialize_record(rec))?;
    std::fs::rename(&tmp, record_path(dir, key))
}

fn serialize_record(rec: &CacheRecord) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "descriptor={}", rec.descriptor);
    let _ = writeln!(out, "net_name={}", rec.net.name);
    let _ = writeln!(out, "net_ranks={}", rec.net.ranks);
    let _ = writeln!(out, "net_endpoints={}", rec.net.endpoints);
    let _ = writeln!(out, "net_cables={}", rec.net.cables);
    match &rec.output {
        CellOutput::Bandwidth(b) => {
            let _ = writeln!(out, "kind=bandwidth");
            let _ = writeln!(out, "bw_bits={:016x}", b.bw_fraction.to_bits());
            let _ = writeln!(out, "time_ps={}", b.time_ps);
            let _ = writeln!(out, "clean={}", b.clean);
        }
        CellOutput::Distribution(samples) => {
            let _ = writeln!(out, "kind=distribution");
            let hex: Vec<String> = samples
                .iter()
                .map(|s| format!("{:016x}", s.to_bits()))
                .collect();
            let _ = writeln!(out, "samples={}", hex.join(","));
        }
    }
    out
}

fn parse_record(body: &str) -> Option<CacheRecord> {
    let mut lines = body.lines();
    if lines.next() != Some(MAGIC) {
        return None;
    }
    let mut get = |want: &str| -> Option<String> {
        let (k, v) = lines.next()?.split_once('=')?;
        (k == want).then(|| v.to_string())
    };
    let descriptor = get("descriptor")?;
    let net = NetInfo {
        name: get("net_name")?,
        ranks: get("net_ranks")?.parse().ok()?,
        endpoints: get("net_endpoints")?.parse().ok()?,
        cables: get("net_cables")?.parse().ok()?,
    };
    let output = match get("kind")?.as_str() {
        "bandwidth" => CellOutput::Bandwidth(BwCell {
            bw_fraction: f64::from_bits(u64::from_str_radix(&get("bw_bits")?, 16).ok()?),
            time_ps: get("time_ps")?.parse().ok()?,
            clean: match get("clean")?.as_str() {
                "true" => true,
                "false" => false,
                _ => return None,
            },
        }),
        "distribution" => {
            let raw = get("samples")?;
            let samples = if raw.is_empty() {
                Vec::new()
            } else {
                raw.split(',')
                    .map(|s| u64::from_str_radix(s, 16).ok().map(f64::from_bits))
                    .collect::<Option<Vec<f64>>>()?
            };
            CellOutput::Distribution(samples)
        }
        _ => return None,
    };
    Some(CacheRecord {
        descriptor,
        net,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(desc: &str, output: CellOutput) -> CacheRecord {
        CacheRecord {
            descriptor: desc.to_string(),
            net: NetInfo {
                name: "Dragonfly a=4 p=2 h=2 g=8".into(),
                ranks: 270,
                endpoints: 270,
                cables: 144,
            },
            output,
        }
    }

    #[test]
    fn bandwidth_records_round_trip_bit_exactly() {
        let rec = sample_record(
            "topo=dragonfly;x=1",
            CellOutput::Bandwidth(BwCell {
                bw_fraction: 0.1 + 0.2, // a value with no short decimal form
                time_ps: 41_527_680,
                clean: true,
            }),
        );
        let back = parse_record(&serialize_record(&rec)).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn distribution_records_round_trip() {
        let rec = sample_record(
            "topo=hx2mesh;x=2",
            CellOutput::Distribution(vec![0.25, 1.0 / 3.0, f64::MIN_POSITIVE]),
        );
        let back = parse_record(&serialize_record(&rec)).unwrap();
        assert_eq!(back, rec);
        let empty = sample_record("d", CellOutput::Distribution(Vec::new()));
        assert_eq!(parse_record(&serialize_record(&empty)).unwrap(), empty);
    }

    #[test]
    fn store_and_load_hit_then_collision_misses() {
        let dir = std::env::temp_dir().join(format!("hxserve-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = sample_record(
            "topo=torus;x=3",
            CellOutput::Bandwidth(BwCell {
                bw_fraction: 0.5,
                time_ps: 1,
                clean: true,
            }),
        );
        let key = cell_key("spec body", &rec.descriptor, 0);
        store(&dir, key, &rec).unwrap();
        assert_eq!(load(&dir, key, &rec.descriptor), Some(rec.clone()));
        // Same key, different descriptor: a collision must read as a miss.
        assert_eq!(load(&dir, key, "topo=other"), None);
        // Unknown key: plain miss.
        assert_eq!(load(&dir, key ^ 1, &rec.descriptor), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_sensitive_to_every_component() {
        let base = cell_key("spec", "desc", 7);
        assert_ne!(base, cell_key("spec ", "desc", 7), "spec byte change");
        assert_ne!(base, cell_key("spec", "desc2", 7), "descriptor change");
        assert_ne!(base, cell_key("spec", "desc", 8), "failure set change");
        assert_eq!(base, cell_key("spec", "desc", 7), "deterministic");
    }

    #[test]
    fn torn_or_foreign_files_read_as_misses() {
        assert_eq!(parse_record(""), None);
        assert_eq!(parse_record("hxserve-cell v0\ndescriptor=d\n"), None);
        assert_eq!(
            parse_record("hxserve-cell v1\ndescriptor=d\nnet_name=x\n"),
            None
        );
    }
}
