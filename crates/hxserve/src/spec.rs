//! The typed scenario spec: what a `specs/*.toml` file parses into, the
//! validation rules, and the resolution of a spec + CLI overrides into a
//! concrete execution [`Plan`].
//!
//! # Spec format
//!
//! ```toml
//! [scenario]
//! name = "fig11_alltoall"   # identifier (letters, digits, _ and -)
//! pattern = "alltoall"      # alltoall | permutation | allreduce | failures
//! engine = "flow"           # packet | flow | both (both: failure_blocks only)
//! window = 2                # alltoall injection window / permutation rounds
//! seed = 12648430           # base RNG seed (default 0xC0FFEE)
//!
//! [topology]
//! set = "all"               # "all" (Table II order) or ["fat_tree", ...]
//! endpoints = 64            # quick-scale accelerator count
//! endpoints_full = "small"  # --full count; "small" = the paper-scale build
//!
//! [sweep]
//! bytes = [32768, 1048576]  # message-size axis (single value = fixed)
//! bytes_full = [...]        # --full variant (defaults to `bytes`)
//! algos = ["rings", "torus"]        # allreduce algorithm axis
//! endpoints = [64, 256]             # cluster-size axis (scaling style)
//! failed_cables = [0, 1, 2, 4, 8]   # failure-count axis (failures pattern)
//! draws = 3                 # random failure draws per sweep point
//! traces = "ignored"        # what --traces overrides: ignored | draws | cap_endpoints
//!
//! [failures]                # failures pattern only; optional
//! mode = "frozen"           # frozen | midrun | compare (frozen vs midrun columns)
//!
//! [failures.schedule]       # required for midrun/compare modes
//! fail_at_ps = [5000000]    # fail instants, paired with the drawn cables
//!                           # in canonical cable order (last entry repeats)
//! repair_at_ps = [...]      # optional repair instants (same pairing)
//!
//! [output]
//! style = "grid"            # grid | distribution | grid_by_algo |
//!                           # scaling_by_algo | failure_blocks
//! title = "... {n} ... {engine} ..."   # {n} {engine} {bytes} {draws} substituted
//! note = "trailing commentary"
//! ```
//!
//! Every `*_full` key defaults to its quick sibling. Endpoint counts of
//! 1024 and above (and the `"small"` keyword) build the paper-scale
//! machine (`TopologyChoice::build_small`); smaller counts use
//! `build_scaled`. Unknown sections, unknown keys, bad enum values, and
//! duplicate keys (a sweep axis given twice) are all hard errors.

use crate::toml::{self, Doc, Section, SpecError, Value};
use hammingmesh::experiments::AllreduceAlgo;
use hammingmesh::hxsim::EngineKind;
use hammingmesh::topologies::TopologyChoice;

/// The default RNG seed, shared with the figure harness (`HarnessArgs`).
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// Endpoint counts at or above this build the paper-scale machine.
pub const PAPER_SCALE: usize = 1024;

/// The traffic pattern a scenario sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Balanced-shift alltoall (§V-A1a).
    Alltoall,
    /// Random-permutation traffic (§V-A1b); reports per-rank distributions.
    Permutation,
    /// Global allreduce under the `algos` axis (§V-A2).
    Allreduce,
    /// Alltoall routed around random failed cables (Fig. 10 routed).
    Failures,
}

impl Pattern {
    pub fn spec_name(self) -> &'static str {
        match self {
            Pattern::Alltoall => "alltoall",
            Pattern::Permutation => "permutation",
            Pattern::Allreduce => "allreduce",
            Pattern::Failures => "failures",
        }
    }
}

/// Engine selection: one backend, or both (failure blocks compare them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineSel {
    One(EngineKind),
    Both,
}

impl EngineSel {
    pub fn spec_name(self) -> &'static str {
        match self {
            EngineSel::One(e) => e.as_str(),
            EngineSel::Both => "both",
        }
    }
}

/// The table shape a scenario renders as (each reproduces one figure
/// binary's layout byte for byte; see [`crate::render`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Style {
    /// topology rows x message-size columns (Fig. 11).
    Grid,
    /// per-topology receive-bandwidth percentiles + cost (Fig. 12).
    Distribution,
    /// one grid per allreduce algorithm (Fig. 13).
    GridByAlgo,
    /// one (topology x cluster-size) grid per algorithm + CSV (Fig. 14).
    ScalingByAlgo,
    /// per-topology blocks of failed-cables rows x engine columns (Fig. 10).
    FailureBlocks,
}

impl Style {
    pub fn spec_name(self) -> &'static str {
        match self {
            Style::Grid => "grid",
            Style::Distribution => "distribution",
            Style::GridByAlgo => "grid_by_algo",
            Style::ScalingByAlgo => "scaling_by_algo",
            Style::FailureBlocks => "failure_blocks",
        }
    }

    /// The pattern each style presents (enforced at validation).
    fn pattern(self) -> Pattern {
        match self {
            Style::Grid => Pattern::Alltoall,
            Style::Distribution => Pattern::Permutation,
            Style::GridByAlgo | Style::ScalingByAlgo => Pattern::Allreduce,
            Style::FailureBlocks => Pattern::Failures,
        }
    }
}

/// What a `--traces N` override means for this scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracesRole {
    /// Accepted and ignored (figure binaries share one flag set).
    Ignored,
    /// Overrides the number of random failure draws.
    Draws,
    /// Caps the cluster-size axis at its first N entries.
    CapEndpoints,
}

impl TracesRole {
    pub fn spec_name(self) -> &'static str {
        match self {
            TracesRole::Ignored => "ignored",
            TracesRole::Draws => "draws",
            TracesRole::CapEndpoints => "cap_endpoints",
        }
    }
}

/// When a failure cell's drawn cable set takes effect: before the run
/// starts (the original Fig. 10 routed behavior) or mid-run, as in-situ
/// fail/repair events the engines react to while traffic is in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureMode {
    Frozen,
    Midrun,
}

impl FailureMode {
    pub fn spec_name(self) -> &'static str {
        match self {
            FailureMode::Frozen => "frozen",
            FailureMode::Midrun => "midrun",
        }
    }
}

/// The `[failures.schedule]` instants. Entries pair with the drawn
/// cables in canonical cable order; a shorter list repeats its last
/// entry, so a single instant fails (or repairs) the whole set at once.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MidrunTimes {
    pub fail_at_ps: Vec<u64>,
    /// Empty = the failures are permanent for the rest of the run.
    pub repair_at_ps: Vec<u64>,
}

/// The `[failures]` (+ `[failures.schedule]`) sections: how failure
/// cells inject their drawn cable set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailurePolicy {
    /// The modes each (topology, failed-count, engine) group sweeps:
    /// `[Frozen]` (default), `[Midrun]`, or `[Frozen, Midrun]` for
    /// `mode = "compare"` side-by-side columns.
    pub modes: Vec<FailureMode>,
    pub times: MidrunTimes,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy {
            modes: vec![FailureMode::Frozen],
            times: MidrunTimes::default(),
        }
    }
}

impl FailurePolicy {
    /// The `mode` key's canonical value.
    pub fn mode_name(&self) -> &'static str {
        match self.modes.as_slice() {
            [FailureMode::Frozen] => "frozen",
            [FailureMode::Midrun] => "midrun",
            _ => "compare",
        }
    }
}

/// The `[sweep]` section: quick and `--full` variants of every axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sweep {
    pub bytes: Vec<u64>,
    pub bytes_full: Vec<u64>,
    pub algos: Vec<AllreduceAlgo>,
    pub endpoints: Option<Vec<usize>>,
    pub endpoints_full: Option<Vec<usize>>,
    pub failed_cables: Vec<usize>,
    pub failed_cables_full: Vec<usize>,
    pub draws: usize,
    pub draws_full: usize,
    pub traces: TracesRole,
}

/// A parsed, validated scenario spec. Parse one with [`Scenario::parse`];
/// the original source text is retained for content-addressed caching.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub name: String,
    pub pattern: Pattern,
    pub engine: EngineSel,
    pub window: u32,
    pub seed: u64,
    pub topologies: Vec<TopologyChoice>,
    pub endpoints: usize,
    pub endpoints_full: usize,
    pub sweep: Sweep,
    pub failures: FailurePolicy,
    pub style: Style,
    pub title: String,
    pub note: String,
    /// The verbatim spec source (cache keys hash it).
    pub src: String,
}

/// CLI overrides applied on top of a spec (the figure harness flags).
#[derive(Clone, Copy, Debug, Default)]
pub struct Overrides {
    pub full: bool,
    pub traces: Option<usize>,
    pub seed: Option<u64>,
    pub engine: Option<EngineKind>,
}

/// One unit of work: a single simulation the executor can run (and the
/// cache can memoize) independently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellSpec {
    /// Position in the plan's deterministic cell order.
    pub index: usize,
    pub topology: TopologyChoice,
    pub engine: EngineKind,
    /// Accelerator count; `>= PAPER_SCALE` builds the paper-scale machine.
    pub endpoints: usize,
    pub bytes: u64,
    pub window: u32,
    pub seed: u64,
    pub kind: CellKind,
    /// Fail/repair instants for `MidrunAlltoall` cells; `None` otherwise.
    pub midrun: Option<MidrunTimes>,
}

/// The pattern-specific part of a cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    Alltoall,
    Permutation {
        rounds: u32,
    },
    Allreduce {
        algo: AllreduceAlgo,
    },
    FailedAlltoall {
        failures: usize,
        draw: usize,
    },
    /// Same drawn cable set as `FailedAlltoall`, but injected as mid-run
    /// link events (the cell's `midrun` times) on a pristine network.
    MidrunAlltoall {
        failures: usize,
        draw: usize,
    },
}

impl CellSpec {
    /// Stable textual descriptor of everything that determines this
    /// cell's result. Cache keys hash it (together with the spec source
    /// and the failure-set fingerprint), and stored records embed it so a
    /// hash collision degrades to a miss instead of a wrong answer.
    pub fn descriptor(&self) -> String {
        let kind = match self.kind {
            CellKind::Alltoall => "alltoall".to_string(),
            CellKind::Permutation { rounds } => format!("permutation:rounds={rounds}"),
            CellKind::Allreduce { algo } => format!("allreduce:{}", algo.spec_name()),
            CellKind::FailedAlltoall { failures, draw } => {
                format!("failed_alltoall:f={failures},draw={draw}")
            }
            CellKind::MidrunAlltoall { failures, draw } => {
                let j = |v: &[u64]| {
                    v.iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join("|")
                };
                let t = self
                    .midrun
                    .as_ref()
                    // hxlint: allow(P001) expand_cells sets `midrun` on every MidrunAlltoall cell
                    .expect("midrun cells carry times");
                format!(
                    "midrun_alltoall:f={failures},draw={draw},fail={},repair={}",
                    j(&t.fail_at_ps),
                    j(&t.repair_at_ps)
                )
            }
        };
        format!(
            "topo={};engine={};n={};bytes={};window={};seed={};kind={kind}",
            self.topology.spec_name(),
            self.engine,
            self.endpoints,
            self.bytes,
            self.window,
            self.seed,
        )
    }
}

/// A spec resolved against its overrides: concrete axes, the rendered
/// title, and the full deterministic cell list.
#[derive(Clone, Debug)]
pub struct Plan {
    pub name: String,
    pub style: Style,
    pub title: String,
    pub note: String,
    pub topologies: Vec<TopologyChoice>,
    pub engines: Vec<EngineKind>,
    /// Base accelerator count (the `{n}` of the title).
    pub endpoints: usize,
    pub bytes: Vec<u64>,
    pub algos: Vec<AllreduceAlgo>,
    /// Cluster-size axis; `[endpoints]` when the spec has none.
    pub endpoints_axis: Vec<usize>,
    pub failed_cables: Vec<usize>,
    pub draws: usize,
    /// Failure-injection policy (frozen / midrun / compare + instants).
    pub failures: FailurePolicy,
    pub seed: u64,
    pub window: u32,
    /// Verbatim spec source, carried for cache keying.
    pub spec_src: String,
    /// Cells in the deterministic order the renderer consumes.
    pub cells: Vec<CellSpec>,
}

// ---------------------------------------------------------------------
// Typed section access.

fn unknown_key_check(sec: &Section, allowed: &[&str]) -> Result<(), SpecError> {
    for e in &sec.entries {
        if !allowed.contains(&e.key.as_str()) {
            return Err(SpecError::at(
                e.line,
                format!(
                    "unknown key `{}` in [{}] (allowed: {})",
                    e.key,
                    sec.name,
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn want_str(sec: &Section, key: &str) -> Result<Option<String>, SpecError> {
    match sec.get(key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Str(s) => Ok(Some(s.clone())),
            v => Err(SpecError::at(
                e.line,
                format!("`{key}` must be a string, got {}", v.shape()),
            )),
        },
    }
}

fn want_u64(sec: &Section, key: &str) -> Result<Option<u64>, SpecError> {
    match sec.get(key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Int(i) if *i >= 0 => Ok(Some(*i as u64)),
            Value::Int(i) => Err(SpecError::at(
                e.line,
                format!("`{key}` must be non-negative, got {i}"),
            )),
            v => Err(SpecError::at(
                e.line,
                format!("`{key}` must be an integer, got {}", v.shape()),
            )),
        },
    }
}

fn want_u64_list(sec: &Section, key: &str) -> Result<Option<Vec<u64>>, SpecError> {
    match sec.get(key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::IntList(v) => {
                if v.is_empty() {
                    return Err(SpecError::at(e.line, format!("`{key}` must not be empty")));
                }
                v.iter()
                    .map(|&i| {
                        if i >= 0 {
                            Ok(i as u64)
                        } else {
                            Err(SpecError::at(
                                e.line,
                                format!("`{key}` entries must be non-negative, got {i}"),
                            ))
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Some)
            }
            v => Err(SpecError::at(
                e.line,
                format!("`{key}` must be an integer array, got {}", v.shape()),
            )),
        },
    }
}

/// Parse an enum-valued string key via `FromStr`-style closure.
fn want_enum<T>(
    sec: &Section,
    key: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Option<T>, SpecError> {
    let Some(e) = sec.get(key) else {
        return Ok(None);
    };
    let Value::Str(s) = &e.value else {
        return Err(SpecError::at(
            e.line,
            format!("`{key}` must be a string, got {}", e.value.shape()),
        ));
    };
    parse(s)
        .map(Some)
        .map_err(|m| SpecError::at(e.line, format!("bad `{key}`: {m}")))
}

impl Scenario {
    /// Parse and validate a spec from its TOML source.
    pub fn parse(src: &str) -> Result<Scenario, SpecError> {
        let doc = toml::parse(src)?;
        for sec in &doc.sections {
            if !matches!(
                sec.name.as_str(),
                "scenario" | "topology" | "sweep" | "failures" | "failures.schedule" | "output"
            ) {
                return Err(SpecError::at(
                    sec.line,
                    format!(
                        "unknown section [{}] (expected [scenario], [topology], [sweep], \
                         [failures], [failures.schedule], [output])",
                        sec.name
                    ),
                ));
            }
        }
        let scenario = require_section(&doc, "scenario")?;
        let topology = require_section(&doc, "topology")?;
        let sweep_sec = require_section(&doc, "sweep")?;
        let output = require_section(&doc, "output")?;

        unknown_key_check(scenario, &["name", "pattern", "engine", "window", "seed"])?;
        unknown_key_check(topology, &["set", "endpoints", "endpoints_full"])?;
        unknown_key_check(
            sweep_sec,
            &[
                "bytes",
                "bytes_full",
                "algos",
                "endpoints",
                "endpoints_full",
                "failed_cables",
                "failed_cables_full",
                "draws",
                "draws_full",
                "traces",
            ],
        )?;
        unknown_key_check(output, &["style", "title", "note"])?;

        // [scenario]
        let name = want_str(scenario, "name")?
            .ok_or_else(|| SpecError::at(scenario.line, "missing `name` in [scenario]"))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(SpecError::at(
                scenario.line,
                format!("`name` must be an identifier, got {name:?}"),
            ));
        }
        let pattern = want_enum(scenario, "pattern", |s| match s {
            "alltoall" => Ok(Pattern::Alltoall),
            "permutation" => Ok(Pattern::Permutation),
            "allreduce" => Ok(Pattern::Allreduce),
            "failures" => Ok(Pattern::Failures),
            other => Err(format!(
                "unknown pattern {other:?} (expected alltoall, permutation, allreduce, failures)"
            )),
        })?
        .ok_or_else(|| SpecError::at(scenario.line, "missing `pattern` in [scenario]"))?;
        let engine = want_enum(scenario, "engine", |s| match s {
            "both" => Ok(EngineSel::Both),
            other => other
                .parse::<EngineKind>()
                .map(EngineSel::One)
                .map_err(|_| format!("unknown engine {other:?} (expected packet, flow, both)")),
        })?
        .unwrap_or(EngineSel::One(EngineKind::Flow));
        let window = want_u64(scenario, "window")?.unwrap_or(2);
        let window = u32::try_from(window)
            .map_err(|_| SpecError::at(scenario.line, format!("`window` too large: {window}")))?;
        let seed = want_u64(scenario, "seed")?.unwrap_or(DEFAULT_SEED);

        // [topology]
        let topologies = parse_topology_set(topology)?;
        let endpoints = want_u64(topology, "endpoints")?
            .ok_or_else(|| SpecError::at(topology.line, "missing `endpoints` in [topology]"))?
            as usize;
        let endpoints_full = parse_endpoints_full(topology)?.unwrap_or(endpoints);

        // [sweep]
        let bytes = want_u64_list(sweep_sec, "bytes")?
            .ok_or_else(|| SpecError::at(sweep_sec.line, "missing `bytes` axis in [sweep]"))?;
        let bytes_full = want_u64_list(sweep_sec, "bytes_full")?.unwrap_or_else(|| bytes.clone());
        let algos = match sweep_sec.get("algos") {
            None => Vec::new(),
            Some(e) => match &e.value {
                Value::StrList(names) if !names.is_empty() => names
                    .iter()
                    .map(|s| {
                        s.parse::<AllreduceAlgo>()
                            .map_err(|m| SpecError::at(e.line, format!("bad `algos`: {m}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Value::StrList(_) => {
                    return Err(SpecError::at(e.line, "`algos` must not be empty"))
                }
                v => {
                    return Err(SpecError::at(
                        e.line,
                        format!("`algos` must be a string array, got {}", v.shape()),
                    ))
                }
            },
        };
        let endpoints_axis = want_u64_list(sweep_sec, "endpoints")?
            .map(|v| v.into_iter().map(|n| n as usize).collect::<Vec<_>>());
        let endpoints_axis_full = want_u64_list(sweep_sec, "endpoints_full")?
            .map(|v| v.into_iter().map(|n| n as usize).collect::<Vec<_>>());
        let failed_cables = want_u64_list(sweep_sec, "failed_cables")?
            .map(|v| v.into_iter().map(|n| n as usize).collect::<Vec<_>>())
            .unwrap_or_default();
        let failed_cables_full = want_u64_list(sweep_sec, "failed_cables_full")?
            .map(|v| v.into_iter().map(|n| n as usize).collect::<Vec<_>>())
            .unwrap_or_else(|| failed_cables.clone());
        let draws = want_u64(sweep_sec, "draws")?.unwrap_or(1) as usize;
        let draws_full = want_u64(sweep_sec, "draws_full")?.unwrap_or(draws as u64) as usize;
        let traces = want_enum(sweep_sec, "traces", |s| match s {
            "ignored" => Ok(TracesRole::Ignored),
            "draws" => Ok(TracesRole::Draws),
            "cap_endpoints" => Ok(TracesRole::CapEndpoints),
            other => Err(format!(
                "unknown traces role {other:?} (expected ignored, draws, cap_endpoints)"
            )),
        })?
        .unwrap_or(TracesRole::Ignored);

        // [failures] / [failures.schedule]
        let failures = parse_failures(&doc)?;

        // [output]
        let style = want_enum(output, "style", |s| match s {
            "grid" => Ok(Style::Grid),
            "distribution" => Ok(Style::Distribution),
            "grid_by_algo" => Ok(Style::GridByAlgo),
            "scaling_by_algo" => Ok(Style::ScalingByAlgo),
            "failure_blocks" => Ok(Style::FailureBlocks),
            other => Err(format!(
                "unknown style {other:?} (expected grid, distribution, grid_by_algo, \
                 scaling_by_algo, failure_blocks)"
            )),
        })?
        .ok_or_else(|| SpecError::at(output.line, "missing `style` in [output]"))?;
        let title = want_str(output, "title")?
            .ok_or_else(|| SpecError::at(output.line, "missing `title` in [output]"))?;
        let note = want_str(output, "note")?.unwrap_or_default();

        let spec = Scenario {
            name,
            pattern,
            engine,
            window,
            seed,
            topologies,
            endpoints,
            endpoints_full,
            sweep: Sweep {
                bytes,
                bytes_full,
                algos,
                endpoints: endpoints_axis,
                endpoints_full: endpoints_axis_full,
                failed_cables,
                failed_cables_full,
                draws,
                draws_full,
                traces,
            },
            failures,
            style,
            title,
            note,
            src: src.to_string(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field validation (everything the per-key parsing can't see).
    fn validate(&self) -> Result<(), SpecError> {
        let e = |msg: String| Err(SpecError::whole(msg));
        if self.style.pattern() != self.pattern {
            return e(format!(
                "style `{}` presents pattern `{}`, but the spec declares `{}`",
                self.style.spec_name(),
                self.style.pattern().spec_name(),
                self.pattern.spec_name()
            ));
        }
        if self.engine == EngineSel::Both && self.style != Style::FailureBlocks {
            return e("engine \"both\" is only supported by the failure_blocks style".into());
        }
        match self.pattern {
            Pattern::Allreduce => {
                if self.sweep.algos.is_empty() {
                    return e("allreduce scenarios need an `algos` axis in [sweep]".into());
                }
            }
            _ => {
                if !self.sweep.algos.is_empty() {
                    return e(format!(
                        "`algos` only applies to allreduce scenarios, not `{}`",
                        self.pattern.spec_name()
                    ));
                }
            }
        }
        match self.pattern {
            Pattern::Failures => {
                if self.sweep.failed_cables.is_empty() {
                    return e("failures scenarios need a `failed_cables` axis in [sweep]".into());
                }
                if self.sweep.draws == 0 || self.sweep.draws_full == 0 {
                    return e("`draws` must be at least 1".into());
                }
            }
            _ => {
                if !self.sweep.failed_cables.is_empty() || !self.sweep.failed_cables_full.is_empty()
                {
                    return e(format!(
                        "`failed_cables` only applies to failures scenarios, not `{}`",
                        self.pattern.spec_name()
                    ));
                }
                if self.failures != FailurePolicy::default() {
                    return e(format!(
                        "[failures] only applies to failures scenarios, not `{}`",
                        self.pattern.spec_name()
                    ));
                }
            }
        }
        if self.failures.modes.contains(&FailureMode::Midrun)
            && self.failures.times.fail_at_ps.is_empty()
        {
            return e(format!(
                "failure mode \"{}\" needs a [failures.schedule] with `fail_at_ps`",
                self.failures.mode_name()
            ));
        }
        if self.style == Style::ScalingByAlgo {
            if self.sweep.endpoints.is_none() {
                return e("scaling_by_algo scenarios need an `endpoints` axis in [sweep]".into());
            }
        } else if self.sweep.endpoints.is_some() || self.sweep.endpoints_full.is_some() {
            return e("a [sweep] `endpoints` axis requires the scaling_by_algo style".into());
        }
        if matches!(
            self.style,
            Style::Distribution | Style::ScalingByAlgo | Style::FailureBlocks
        ) && (self.sweep.bytes.len() != 1 || self.sweep.bytes_full.len() != 1)
        {
            return e(format!(
                "style `{}` uses a single message size; give `bytes` exactly one entry",
                self.style.spec_name()
            ));
        }
        if self.sweep.traces == TracesRole::CapEndpoints && self.style != Style::ScalingByAlgo {
            return e("traces = \"cap_endpoints\" requires an `endpoints` axis".into());
        }
        if self.sweep.traces == TracesRole::Draws && self.pattern != Pattern::Failures {
            return e("traces = \"draws\" requires the failures pattern".into());
        }
        if self.topologies.is_empty() {
            return e("the topology set must not be empty".into());
        }
        Ok(())
    }

    /// Canonical spec serialization: a fixed section/key order with every
    /// resolved field explicit. `parse(to_toml(s))` reproduces `s` (the
    /// round-trip tests pin the fixpoint), and the output doubles as a
    /// normalized form for diffing specs.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "[scenario]");
        let _ = writeln!(out, "name = {}", toml::quote(&self.name));
        let _ = writeln!(out, "pattern = {}", toml::quote(self.pattern.spec_name()));
        let _ = writeln!(out, "engine = {}", toml::quote(self.engine.spec_name()));
        let _ = writeln!(out, "window = {}", self.window);
        let _ = writeln!(out, "seed = {}", self.seed);
        let _ = writeln!(out, "\n[topology]");
        let names: Vec<String> = self
            .topologies
            .iter()
            .map(|t| toml::quote(t.spec_name()))
            .collect();
        let _ = writeln!(out, "set = [{}]", names.join(", "));
        let _ = writeln!(out, "endpoints = {}", self.endpoints);
        let _ = writeln!(out, "endpoints_full = {}", self.endpoints_full);
        let _ = writeln!(out, "\n[sweep]");
        let ints = |v: &[u64]| {
            v.iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(out, "bytes = [{}]", ints(&self.sweep.bytes));
        let _ = writeln!(out, "bytes_full = [{}]", ints(&self.sweep.bytes_full));
        if !self.sweep.algos.is_empty() {
            let names: Vec<String> = self
                .sweep
                .algos
                .iter()
                .map(|a| toml::quote(a.spec_name()))
                .collect();
            let _ = writeln!(out, "algos = [{}]", names.join(", "));
        }
        let usizes = |v: &[usize]| {
            v.iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        if let Some(axis) = &self.sweep.endpoints {
            let _ = writeln!(out, "endpoints = [{}]", usizes(axis));
            let full = self.sweep.endpoints_full.as_deref().unwrap_or(axis);
            let _ = writeln!(out, "endpoints_full = [{}]", usizes(full));
        }
        if !self.sweep.failed_cables.is_empty() {
            let _ = writeln!(
                out,
                "failed_cables = [{}]",
                usizes(&self.sweep.failed_cables)
            );
            let _ = writeln!(
                out,
                "failed_cables_full = [{}]",
                usizes(&self.sweep.failed_cables_full)
            );
            let _ = writeln!(out, "draws = {}", self.sweep.draws);
            let _ = writeln!(out, "draws_full = {}", self.sweep.draws_full);
        }
        let _ = writeln!(
            out,
            "traces = {}",
            toml::quote(self.sweep.traces.spec_name())
        );
        if self.failures != FailurePolicy::default() {
            let _ = writeln!(out, "\n[failures]");
            let _ = writeln!(out, "mode = {}", toml::quote(self.failures.mode_name()));
            let t = &self.failures.times;
            if !t.fail_at_ps.is_empty() {
                let _ = writeln!(out, "\n[failures.schedule]");
                let _ = writeln!(out, "fail_at_ps = [{}]", ints(&t.fail_at_ps));
                if !t.repair_at_ps.is_empty() {
                    let _ = writeln!(out, "repair_at_ps = [{}]", ints(&t.repair_at_ps));
                }
            }
        }
        let _ = writeln!(out, "\n[output]");
        let _ = writeln!(out, "style = {}", toml::quote(self.style.spec_name()));
        let _ = writeln!(out, "title = {}", toml::quote(&self.title));
        let _ = writeln!(out, "note = {}", toml::quote(&self.note));
        out
    }

    /// Resolve this spec against CLI overrides into a concrete [`Plan`].
    pub fn resolve(&self, ov: &Overrides) -> Plan {
        let s = &self.sweep;
        let seed = ov.seed.unwrap_or(self.seed);
        let bytes = if ov.full {
            s.bytes_full.clone()
        } else {
            s.bytes.clone()
        };
        let endpoints = if ov.full {
            self.endpoints_full
        } else {
            self.endpoints
        };
        let mut endpoints_axis = match (ov.full, &s.endpoints, &s.endpoints_full) {
            (true, quick, full) => full.clone().or_else(|| quick.clone()),
            (false, quick, _) => quick.clone(),
        }
        .unwrap_or_else(|| vec![endpoints]);
        let mut draws = if ov.full { s.draws_full } else { s.draws };
        match (s.traces, ov.traces) {
            (TracesRole::Draws, Some(t)) => draws = t.max(1),
            (TracesRole::CapEndpoints, Some(t)) => {
                let cap = t.clamp(1, endpoints_axis.len());
                endpoints_axis.truncate(cap);
            }
            _ => {}
        }
        let failed_cables = if ov.full {
            s.failed_cables_full.clone()
        } else {
            s.failed_cables.clone()
        };
        let engines: Vec<EngineKind> = match (self.engine, ov.engine) {
            (_, Some(e)) => vec![e],
            (EngineSel::One(e), None) => vec![e],
            (EngineSel::Both, None) => EngineKind::all().to_vec(),
        };
        let title = substitute(&self.title, endpoints, engines[0], bytes[0], draws);
        let mut plan = Plan {
            name: self.name.clone(),
            style: self.style,
            title,
            note: self.note.clone(),
            topologies: self.topologies.clone(),
            engines,
            endpoints,
            bytes,
            algos: s.algos.clone(),
            endpoints_axis,
            failed_cables,
            draws,
            failures: self.failures.clone(),
            seed,
            window: self.window,
            spec_src: self.src.clone(),
            cells: Vec::new(),
        };
        plan.cells = expand_cells(&plan);
        plan
    }
}

/// Parse the optional `[failures]` + `[failures.schedule]` sections.
fn parse_failures(doc: &Doc) -> Result<FailurePolicy, SpecError> {
    let mut policy = FailurePolicy::default();
    if let Some(sec) = doc.section("failures") {
        unknown_key_check(sec, &["mode"])?;
        if let Some(modes) = want_enum(sec, "mode", |s| match s {
            "frozen" => Ok(vec![FailureMode::Frozen]),
            "midrun" => Ok(vec![FailureMode::Midrun]),
            "compare" => Ok(vec![FailureMode::Frozen, FailureMode::Midrun]),
            other => Err(format!(
                "unknown failure mode {other:?} (expected frozen, midrun, compare)"
            )),
        })? {
            policy.modes = modes;
        }
    }
    if let Some(sec) = doc.section("failures.schedule") {
        unknown_key_check(sec, &["fail_at_ps", "repair_at_ps"])?;
        policy.times.fail_at_ps = want_u64_list(sec, "fail_at_ps")?.ok_or_else(|| {
            SpecError::at(sec.line, "missing `fail_at_ps` in [failures.schedule]")
        })?;
        policy.times.repair_at_ps = want_u64_list(sec, "repair_at_ps")?.unwrap_or_default();
        let t = &policy.times;
        if !t.repair_at_ps.is_empty() && t.repair_at_ps.len() != t.fail_at_ps.len() {
            return Err(SpecError::at(
                sec.line,
                "`repair_at_ps` must be empty or pair one-to-one with `fail_at_ps`",
            ));
        }
        for (i, (&f, &r)) in t.fail_at_ps.iter().zip(&t.repair_at_ps).enumerate() {
            if r <= f {
                return Err(SpecError::at(
                    sec.line,
                    format!("repair_at_ps[{i}] = {r} must come after fail_at_ps[{i}] = {f}"),
                ));
            }
        }
    }
    Ok(policy)
}

fn require_section<'d>(doc: &'d Doc, name: &str) -> Result<&'d Section, SpecError> {
    doc.section(name)
        .ok_or_else(|| SpecError::whole(format!("missing required section [{name}]")))
}

fn parse_topology_set(sec: &Section) -> Result<Vec<TopologyChoice>, SpecError> {
    let Some(e) = sec.get("set") else {
        return Err(SpecError::at(sec.line, "missing `set` in [topology]"));
    };
    match &e.value {
        Value::Str(s) if s == "all" => Ok(TopologyChoice::all().to_vec()),
        Value::Str(s) => Err(SpecError::at(
            e.line,
            format!("`set` must be \"all\" or a list of topology names, got {s:?}"),
        )),
        Value::StrList(names) if !names.is_empty() => names
            .iter()
            .map(|s| {
                s.parse::<TopologyChoice>()
                    .map_err(|m| SpecError::at(e.line, format!("bad `set`: {m}")))
            })
            .collect(),
        Value::StrList(_) => Err(SpecError::at(e.line, "`set` must not be empty")),
        v => Err(SpecError::at(
            e.line,
            format!("`set` must be \"all\" or a string array, got {}", v.shape()),
        )),
    }
}

/// `endpoints_full` accepts an integer or the `"small"` keyword (the
/// paper-scale build; equivalent to [`PAPER_SCALE`]).
fn parse_endpoints_full(sec: &Section) -> Result<Option<usize>, SpecError> {
    match sec.get("endpoints_full") {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Int(i) if *i > 0 => Ok(Some(*i as usize)),
            Value::Str(s) if s == "small" => Ok(Some(PAPER_SCALE)),
            v => Err(SpecError::at(
                e.line,
                format!(
                    "`endpoints_full` must be a positive integer or \"small\", got {}",
                    v.shape()
                ),
            )),
        },
    }
}

/// Substitute the `{n}` / `{engine}` / `{bytes}` / `{draws}` title
/// placeholders.
fn substitute(template: &str, n: usize, engine: EngineKind, bytes: u64, draws: usize) -> String {
    template
        .replace("{n}", &n.to_string())
        .replace("{engine}", engine.as_str())
        .replace("{bytes}", &crate::render::fmt_bytes(bytes))
        .replace("{draws}", &draws.to_string())
}

/// Expand the plan's axes into cells, in the exact nesting order each
/// style's renderer walks (so `cells[i]` is the i-th thing printed).
fn expand_cells(plan: &Plan) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    let mut push = |topology, engine, endpoints, bytes, kind, midrun: Option<MidrunTimes>| {
        let index = cells.len();
        cells.push(CellSpec {
            index,
            topology,
            engine,
            endpoints,
            bytes,
            window: plan.window,
            seed: plan.seed,
            kind,
            midrun,
        });
    };
    let engine = plan.engines[0];
    match plan.style {
        Style::Grid => {
            for &t in &plan.topologies {
                for &b in &plan.bytes {
                    push(t, engine, plan.endpoints, b, CellKind::Alltoall, None);
                }
            }
        }
        Style::Distribution => {
            for &t in &plan.topologies {
                push(
                    t,
                    engine,
                    plan.endpoints,
                    plan.bytes[0],
                    CellKind::Permutation {
                        rounds: plan.window,
                    },
                    None,
                );
            }
        }
        Style::GridByAlgo => {
            for &algo in &plan.algos {
                for &t in &plan.topologies {
                    for &b in &plan.bytes {
                        push(
                            t,
                            engine,
                            plan.endpoints,
                            b,
                            CellKind::Allreduce { algo },
                            None,
                        );
                    }
                }
            }
        }
        Style::ScalingByAlgo => {
            for &algo in &plan.algos {
                for &t in &plan.topologies {
                    for &n in &plan.endpoints_axis {
                        push(
                            t,
                            engine,
                            n,
                            plan.bytes[0],
                            CellKind::Allreduce { algo },
                            None,
                        );
                    }
                }
            }
        }
        Style::FailureBlocks => {
            for &t in &plan.topologies {
                for &f in &plan.failed_cables {
                    for &e in &plan.engines {
                        for &mode in &plan.failures.modes {
                            for d in 0..plan.draws {
                                let (kind, midrun) = match mode {
                                    FailureMode::Frozen => (
                                        CellKind::FailedAlltoall {
                                            failures: f,
                                            draw: d,
                                        },
                                        None,
                                    ),
                                    FailureMode::Midrun => (
                                        CellKind::MidrunAlltoall {
                                            failures: f,
                                            draw: d,
                                        },
                                        Some(plan.failures.times.clone()),
                                    ),
                                };
                                push(t, e, plan.endpoints, plan.bytes[0], kind, midrun);
                            }
                        }
                    }
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
[scenario]
name = "mini"
pattern = "alltoall"
engine = "flow"

[topology]
set = ["hx2mesh"]
endpoints = 16

[sweep]
bytes = [8192, 16384]

[output]
style = "grid"
title = "mini ({n} endpoints, {engine} engine)"
note = "n."
"#;

    #[test]
    fn parses_and_resolves_the_minimal_spec() {
        let s = Scenario::parse(MINI).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.seed, DEFAULT_SEED);
        assert_eq!(s.endpoints_full, 16, "endpoints_full defaults to endpoints");
        let plan = s.resolve(&Overrides::default());
        assert_eq!(plan.cells.len(), 2);
        assert_eq!(plan.title, "mini (16 endpoints, flow engine)");
        assert_eq!(plan.cells[1].bytes, 16384);
        assert_eq!(plan.cells[1].kind, CellKind::Alltoall);
    }

    #[test]
    fn overrides_pick_engine_seed_and_full_axes() {
        let s = Scenario::parse(MINI).unwrap();
        let plan = s.resolve(&Overrides {
            full: true,
            seed: Some(7),
            engine: Some(EngineKind::Packet),
            traces: None,
        });
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.engines, vec![EngineKind::Packet]);
        assert_eq!(
            plan.bytes,
            vec![8192, 16384],
            "bytes_full defaults to bytes"
        );
        assert_eq!(plan.title, "mini (16 endpoints, packet engine)");
    }

    #[test]
    fn canonical_form_is_a_fixpoint() {
        let s1 = Scenario::parse(MINI).unwrap();
        let t1 = s1.to_toml();
        let s2 = Scenario::parse(&t1).unwrap();
        assert_eq!(s2.to_toml(), t1);
    }

    #[test]
    fn style_pattern_mismatch_is_rejected() {
        let bad = MINI.replace("pattern = \"alltoall\"", "pattern = \"permutation\"");
        let err = Scenario::parse(&bad).unwrap_err();
        assert!(err.msg.contains("presents pattern"), "{err}");
    }

    #[test]
    fn both_engines_only_for_failure_blocks() {
        let bad = MINI.replace("engine = \"flow\"", "engine = \"both\"");
        let err = Scenario::parse(&bad).unwrap_err();
        assert!(err.msg.contains("failure_blocks"), "{err}");
    }

    const MIDRUN: &str = r#"
[scenario]
name = "midrun"
pattern = "failures"
engine = "flow"

[topology]
set = ["torus"]
endpoints = 16

[sweep]
bytes = [8192]
failed_cables = [0, 1]
draws = 2
traces = "draws"

[failures]
mode = "compare"

[failures.schedule]
fail_at_ps = [1000000]
repair_at_ps = [9000000]

[output]
style = "failure_blocks"
title = "midrun"
"#;

    #[test]
    fn midrun_failures_parse_and_expand() {
        let s = Scenario::parse(MIDRUN).unwrap();
        assert_eq!(
            s.failures.modes,
            vec![FailureMode::Frozen, FailureMode::Midrun]
        );
        assert_eq!(s.failures.times.fail_at_ps, vec![1_000_000]);
        assert_eq!(s.failures.times.repair_at_ps, vec![9_000_000]);
        let plan = s.resolve(&Overrides::default());
        // topologies(1) x failed(2) x engines(1) x modes(2) x draws(2)
        assert_eq!(plan.cells.len(), 8);
        assert_eq!(
            plan.cells[2].kind,
            CellKind::MidrunAlltoall {
                failures: 0,
                draw: 0
            }
        );
        assert_eq!(
            plan.cells[2].midrun.as_ref().unwrap().fail_at_ps,
            vec![1_000_000]
        );
        assert!(
            plan.cells[0].midrun.is_none(),
            "frozen cells carry no times"
        );
        let d_frozen = plan.cells[4].descriptor();
        let d_mid = plan.cells[6].descriptor();
        assert!(d_frozen.contains("failed_alltoall:f=1"), "{d_frozen}");
        assert!(d_mid.contains("midrun_alltoall:f=1"), "{d_mid}");
        assert!(d_mid.contains("fail=1000000"), "{d_mid}");
        assert_ne!(d_frozen, d_mid);
    }

    #[test]
    fn midrun_canonical_form_is_a_fixpoint() {
        let s1 = Scenario::parse(MIDRUN).unwrap();
        let t1 = s1.to_toml();
        let s2 = Scenario::parse(&t1).unwrap();
        assert_eq!(s2.to_toml(), t1);
        assert_eq!(s2.failures, s1.failures);
    }

    #[test]
    fn failure_policy_misuse_is_rejected() {
        // [failures] on a non-failures pattern.
        let bad = format!("{MINI}\n[failures]\nmode = \"midrun\"\n");
        let err = Scenario::parse(&bad).unwrap_err();
        assert!(err.msg.contains("only applies to failures"), "{err}");
        // midrun mode without a schedule.
        let bad = MIDRUN
            .replace("[failures.schedule]", "")
            .replace("fail_at_ps = [1000000]", "")
            .replace("repair_at_ps = [9000000]", "");
        let err = Scenario::parse(&bad).unwrap_err();
        assert!(err.msg.contains("needs a [failures.schedule]"), "{err}");
        // repair not after fail.
        let bad = MIDRUN.replace("repair_at_ps = [9000000]", "repair_at_ps = [1000000]");
        let err = Scenario::parse(&bad).unwrap_err();
        assert!(err.msg.contains("must come after"), "{err}");
        // ragged pairing.
        let bad = MIDRUN.replace(
            "repair_at_ps = [9000000]",
            "repair_at_ps = [9000000, 9000001]",
        );
        let err = Scenario::parse(&bad).unwrap_err();
        assert!(err.msg.contains("one-to-one"), "{err}");
    }

    #[test]
    fn descriptor_is_stable_and_distinct() {
        let s = Scenario::parse(MINI).unwrap();
        let plan = s.resolve(&Overrides::default());
        let d0 = plan.cells[0].descriptor();
        assert_eq!(
            d0,
            "topo=hx2mesh;engine=flow;n=16;bytes=8192;window=2;seed=12648430;kind=alltoall"
        );
        assert_ne!(d0, plan.cells[1].descriptor());
    }
}
