//! A dependency-free parser for the TOML subset the scenario specs use
//! (same no-crates.io regime as `hxlint`'s lexer).
//!
//! Supported: `[section]` headers (including dotted names like
//! `[failures.schedule]`, treated as flat sections keyed by the full
//! dotted name), `key = value` entries, `#` comments, and four value
//! shapes — basic strings with `\n`/`\t`/`\\`/`\"` escapes, integers,
//! booleans, and single-line homogeneous arrays of strings or integers.
//! Deliberately not supported (the spec schema never needs them): nested
//! tables, dotted keys, floats, dates, multi-line strings.
//!
//! The parser is strict where the spec layer needs it to be: duplicate
//! keys within a section and duplicate section names are hard errors (a
//! sweep axis given twice must not silently last-write-win), and every
//! diagnostic carries the 1-based source line.

use std::fmt;

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrList(Vec<String>),
    IntList(Vec<i64>),
}

impl Value {
    /// Human name of the value's shape, for error messages.
    pub fn shape(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::StrList(_) => "string array",
            Value::IntList(_) => "integer array",
        }
    }
}

/// One `key = value` entry with its source line.
#[derive(Debug, Clone)]
pub struct Entry {
    pub key: String,
    pub value: Value,
    pub line: u32,
}

/// One `[section]` with its entries in source order.
#[derive(Debug, Clone)]
pub struct Section {
    pub name: String,
    pub line: u32,
    pub entries: Vec<Entry>,
}

impl Section {
    /// Look up a key in this section.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed document: sections in source order.
#[derive(Debug, Clone, Default)]
pub struct Doc {
    pub sections: Vec<Section>,
}

impl Doc {
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

/// A parse or validation error pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line in the spec source; 0 = whole document.
    pub line: u32,
    pub msg: String,
}

impl SpecError {
    pub fn at(line: u32, msg: impl Into<String>) -> Self {
        Self {
            line,
            msg: msg.into(),
        }
    }

    pub fn whole(msg: impl Into<String>) -> Self {
        Self::at(0, msg)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec: {}", self.msg)
        } else {
            write!(f, "spec line {}: {}", self.line, self.msg)
        }
    }
}

fn is_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Section names additionally allow interior dots (`failures.schedule`):
/// every dot-separated segment must be a non-empty key identifier.
fn is_section_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .split('.')
            .all(|seg| !seg.is_empty() && seg.chars().all(is_key_char))
}

/// Strip a trailing `#` comment from a line, respecting string quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => escaped = true,
            '"' if !escaped => {
                in_str = !in_str;
                escaped = false;
            }
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Parse one scalar token (string, integer, or boolean).
fn parse_scalar(tok: &str, line: u32) -> Result<Value, SpecError> {
    let tok = tok.trim();
    if let Some(body) = tok.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(SpecError::at(line, format!("unterminated string {tok:?}")));
        };
        // Reject an interior unescaped quote ("a"b") that suffix-stripping
        // would otherwise let through.
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    other => {
                        return Err(SpecError::at(
                            line,
                            format!("unknown escape \\{} in string", other.unwrap_or(' ')),
                        ))
                    }
                },
                '"' => {
                    return Err(SpecError::at(
                        line,
                        "unescaped quote inside string".to_string(),
                    ))
                }
                c => out.push(c),
            }
        }
        return Ok(Value::Str(out));
    }
    match tok {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits = tok.strip_prefix('-').unwrap_or(tok);
    if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit() || c == '_') {
        let clean: String = tok.chars().filter(|&c| c != '_').collect();
        return clean
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| SpecError::at(line, format!("integer out of range: {tok}")));
    }
    Err(SpecError::at(
        line,
        format!("unrecognized value {tok:?} (expected string, integer, boolean, or array)"),
    ))
}

/// Split an array body on top-level commas, respecting string quotes.
fn split_array_items(body: &str, line: u32) -> Result<Vec<&str>, SpecError> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_str && !escaped => escaped = true,
            '"' if !escaped => {
                in_str = !in_str;
                escaped = false;
            }
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if in_str {
        return Err(SpecError::at(line, "unterminated string in array"));
    }
    // An empty tail after the last comma is a permitted trailing comma.
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        items.push(tail);
    }
    Ok(items)
}

fn parse_value(raw: &str, line: u32) -> Result<Value, SpecError> {
    let raw = raw.trim();
    if let Some(body) = raw.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(SpecError::at(
                line,
                "unterminated array (arrays must close on the same line)",
            ));
        };
        let items = split_array_items(body, line)?;
        let scalars: Vec<Value> = items
            .iter()
            .map(|it| parse_scalar(it, line))
            .collect::<Result<_, _>>()?;
        if scalars.iter().all(|v| matches!(v, Value::Int(_))) {
            return Ok(Value::IntList(
                scalars
                    .into_iter()
                    .map(|v| match v {
                        Value::Int(i) => i,
                        _ => unreachable!("all items matched Int"),
                    })
                    .collect(),
            ));
        }
        if scalars.iter().all(|v| matches!(v, Value::Str(_))) {
            return Ok(Value::StrList(
                scalars
                    .into_iter()
                    .map(|v| match v {
                        Value::Str(s) => s,
                        _ => unreachable!("all items matched Str"),
                    })
                    .collect(),
            ));
        }
        return Err(SpecError::at(
            line,
            "mixed-type array (arrays must be all strings or all integers)",
        ));
    }
    parse_scalar(raw, line)
}

/// Parse a spec document. See the module docs for the accepted subset.
pub fn parse(src: &str) -> Result<Doc, SpecError> {
    let mut doc = Doc::default();
    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix('[') {
            let Some(name) = body.strip_suffix(']') else {
                return Err(SpecError::at(lineno, format!("malformed section {line:?}")));
            };
            let name = name.trim();
            if !is_section_name(name) {
                return Err(SpecError::at(
                    lineno,
                    format!("malformed section name {name:?}"),
                ));
            }
            if doc.section(name).is_some() {
                return Err(SpecError::at(lineno, format!("duplicate section [{name}]")));
            }
            doc.sections.push(Section {
                name: name.to_string(),
                line: lineno,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SpecError::at(
                lineno,
                format!("expected `key = value` or `[section]`, got {line:?}"),
            ));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(is_key_char) {
            return Err(SpecError::at(lineno, format!("malformed key {key:?}")));
        }
        let Some(section) = doc.sections.last_mut() else {
            return Err(SpecError::at(
                lineno,
                format!("key `{key}` appears before any [section] header"),
            ));
        };
        if section.get(key).is_some() {
            return Err(SpecError::at(
                lineno,
                format!("duplicate key `{key}` in [{}]", section.name),
            ));
        }
        let value = parse_value(value, lineno)?;
        section.entries.push(Entry {
            key: key.to_string(),
            value,
            line: lineno,
        });
    }
    Ok(doc)
}

/// Render a string as a spec literal (the inverse of the escape handling
/// in [`parse`]); used by the canonical serializer.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = parse(
            "# a comment\n[scenario]\nname = \"x\" # trailing\nseed = 42\nfull = true\n\
             [sweep]\nbytes = [1, 2, 3]\nnames = [\"a\", \"b\"]\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        let sc = doc.section("scenario").unwrap();
        assert_eq!(sc.get("name").unwrap().value, Value::Str("x".into()));
        assert_eq!(sc.get("seed").unwrap().value, Value::Int(42));
        assert_eq!(sc.get("full").unwrap().value, Value::Bool(true));
        let sw = doc.section("sweep").unwrap();
        assert_eq!(
            sw.get("bytes").unwrap().value,
            Value::IntList(vec![1, 2, 3])
        );
        assert_eq!(
            sw.get("names").unwrap().value,
            Value::StrList(vec!["a".into(), "b".into()])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = parse("[s]\nnote = \"line1\\nline2 \\\"q\\\" \\\\ tab\\t.\"\n").unwrap();
        let Value::Str(s) = &doc.section("s").unwrap().get("note").unwrap().value else {
            panic!("not a string");
        };
        assert_eq!(s, "line1\nline2 \"q\" \\ tab\t.");
        let requoted = quote(s);
        let doc2 = parse(&format!("[s]\nnote = {requoted}\n")).unwrap();
        assert_eq!(
            doc2.section("s").unwrap().get("note").unwrap().value,
            Value::Str(s.clone())
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("[s]\nk = \"a # b\"\n").unwrap();
        assert_eq!(
            doc.section("s").unwrap().get("k").unwrap().value,
            Value::Str("a # b".into())
        );
    }

    #[test]
    fn dotted_section_names_parse_as_flat_sections() {
        let doc =
            parse("[failures]\nmode = \"midrun\"\n[failures.schedule]\nfail_at_ps = [1000]\n")
                .unwrap();
        assert!(doc.section("failures").is_some());
        let sched = doc.section("failures.schedule").unwrap();
        assert_eq!(
            sched.get("fail_at_ps").unwrap().value,
            Value::IntList(vec![1000])
        );
        // Degenerate dotted forms stay malformed.
        assert!(parse("[.a]\n").is_err());
        assert!(parse("[a.]\n").is_err());
        assert!(parse("[a..b]\n").is_err());
    }

    #[test]
    fn duplicate_key_is_an_error() {
        let err = parse("[sweep]\nbytes = [1]\nbytes = [2]\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("duplicate key `bytes`"), "{err}");
    }

    #[test]
    fn duplicate_section_is_an_error() {
        let err = parse("[a]\n[b]\n[a]\n").unwrap_err();
        assert!(err.msg.contains("duplicate section"), "{err}");
    }

    #[test]
    fn key_outside_section_is_an_error() {
        let err = parse("k = 1\n").unwrap_err();
        assert!(err.msg.contains("before any [section]"), "{err}");
    }

    #[test]
    fn mixed_array_is_an_error() {
        let err = parse("[s]\nk = [1, \"a\"]\n").unwrap_err();
        assert!(err.msg.contains("mixed-type"), "{err}");
    }

    #[test]
    fn junk_values_are_errors() {
        assert!(parse("[s]\nk = nope\n").is_err());
        assert!(parse("[s]\nk = \"open\n").is_err());
        assert!(parse("[s]\nk = [1, 2\n").is_err());
        assert!(parse("[s]\nk\n").is_err());
    }

    #[test]
    fn negative_and_underscored_integers() {
        let doc = parse("[s]\na = -7\nb = 1_000\n").unwrap();
        assert_eq!(
            doc.section("s").unwrap().get("a").unwrap().value,
            Value::Int(-7)
        );
        assert_eq!(
            doc.section("s").unwrap().get("b").unwrap().value,
            Value::Int(1000)
        );
    }
}
