//! The `hxserve` CLI: run declarative scenario specs.
//!
//! ```text
//! hxserve run   specs/fig11.toml --format table
//! hxserve batch specs/*.toml --stats stats.json
//! ```
//!
//! Rows stream as cells complete (in deterministic cell order); repeated
//! runs over unchanged specs are served from the cell cache and emit
//! byte-identical output.

use hxserve::cli::{self, COMMON_FLAGS, SERVE_FLAGS};
use hxserve::{exec, render, ExecOptions, Overrides, Scenario};
use std::io::Write as _;
use std::path::PathBuf;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Jsonl,
    Csv,
    Table,
}

struct ServeArgs {
    overrides: Overrides,
    format: Format,
    cache_dir: Option<PathBuf>,
    stats: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    specs: Vec<PathBuf>,
}

fn usage() -> String {
    cli::help_text(
        "hxserve <run|batch> <spec.toml>... [options]",
        &[COMMON_FLAGS, SERVE_FLAGS],
    )
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("hxserve: {msg}");
    eprintln!("{}", usage());
    std::process::exit(2);
}

fn parse_cli() -> ServeArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        fail_usage("missing command");
    };
    if command == "--help" || command == "-h" {
        print!("{}", usage());
        std::process::exit(0);
    }
    if command != "run" && command != "batch" {
        fail_usage(&format!(
            "unknown command {command:?} (expected run or batch)"
        ));
    }
    let (flags, positional) = match cli::parse_flags(&argv[1..], &[COMMON_FLAGS, SERVE_FLAGS]) {
        Ok(parsed) => parsed,
        Err(msg) => fail_usage(&msg),
    };
    let mut out = ServeArgs {
        overrides: Overrides::default(),
        format: Format::Jsonl,
        cache_dir: Some(PathBuf::from("target/hxserve-cache")),
        stats: None,
        metrics_out: None,
        trace_out: None,
        specs: positional.iter().map(PathBuf::from).collect(),
    };
    let mut no_cache = false;
    for (flag, value) in &flags {
        let value = value.as_deref().unwrap_or("");
        match flag.as_str() {
            "--help" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            "--full" => out.overrides.full = true,
            "--traces" => match value.parse() {
                Ok(n) => out.overrides.traces = Some(n),
                Err(_) => fail_usage(&format!("--traces needs an integer, got {value:?}")),
            },
            "--seed" => match value.parse() {
                Ok(s) => out.overrides.seed = Some(s),
                Err(_) => fail_usage(&format!("--seed needs an integer, got {value:?}")),
            },
            "--engine" => match value.parse() {
                Ok(e) => out.overrides.engine = Some(e),
                Err(msg) => fail_usage(&msg),
            },
            "--threads" => match value.parse::<usize>() {
                Ok(n) if n > 0 => cli::apply_threads(n),
                _ => fail_usage(&format!(
                    "--threads needs a positive integer, got {value:?}"
                )),
            },
            "--rates" => match value.parse() {
                Ok(m) => cli::apply_rates(m),
                Err(msg) => fail_usage(&msg),
            },
            "--retransmit" => match value.parse() {
                Ok(p) => cli::apply_retransmit(p),
                Err(msg) => fail_usage(&msg),
            },
            "--format" => {
                out.format = match value {
                    "jsonl" => Format::Jsonl,
                    "csv" => Format::Csv,
                    "table" => Format::Table,
                    other => fail_usage(&format!(
                        "unknown format {other:?} (expected jsonl, csv, table)"
                    )),
                }
            }
            "--cache-dir" => out.cache_dir = Some(PathBuf::from(value)),
            "--no-cache" => no_cache = true,
            "--stats" => out.stats = Some(PathBuf::from(value)),
            "--metrics-out" => out.metrics_out = Some(PathBuf::from(value)),
            "--trace-out" => out.trace_out = Some(PathBuf::from(value)),
            other => fail_usage(&format!("unhandled flag {other:?}")),
        }
    }
    if no_cache {
        out.cache_dir = None;
    }
    cli::apply_telemetry(out.metrics_out.as_deref(), out.trace_out.as_deref());
    match (command.as_str(), out.specs.len()) {
        ("run", 1) => {}
        ("run", n) => fail_usage(&format!("run takes exactly one spec, got {n}")),
        ("batch", 0) => fail_usage("batch needs at least one spec"),
        _ => {}
    }
    out
}

fn main() {
    let args = parse_cli();
    let opts = ExecOptions {
        cache_dir: args.cache_dir.clone(),
    };
    let stdout = std::io::stdout();
    let mut total_cells = 0usize;
    let mut total_hits = 0usize;
    let mut total_misses = 0usize;
    for path in &args.specs {
        let src = match std::fs::read_to_string(path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("hxserve: cannot read {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let scenario = match Scenario::parse(&src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hxserve: {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let plan = scenario.resolve(&args.overrides);
        let mut lock = stdout.lock();
        if args.format == Format::Csv {
            if let Some(header) = render::csv_header(&plan) {
                let _ = writeln!(lock, "{header}");
            }
        }
        let result = exec::run_with(&plan, &opts, |row| match args.format {
            Format::Jsonl => {
                let _ = writeln!(lock, "{}", render::jsonl_row(&plan, row));
            }
            Format::Csv => {
                if let Some(line) = render::csv_row(&plan, row) {
                    let _ = writeln!(lock, "{line}");
                }
            }
            Format::Table => {}
        });
        if args.format == Format::Table {
            let _ = write!(lock, "{}", render::render(&plan, &result.rows));
        }
        drop(lock);
        eprintln!(
            "[hxserve] {}: {} cells ({} cached, {} computed)",
            plan.name,
            result.rows.len(),
            result.cache_hits,
            result.cache_misses
        );
        total_cells += result.rows.len();
        total_hits += result.cache_hits;
        total_misses += result.cache_misses;
    }
    // Telemetry artifacts, and the wall-clock cost of producing them: the
    // only wall-clock in this binary, surfaced as `telemetry_overhead_s`
    // so `--stats` consumers can see what the flags cost end to end.
    #[allow(clippy::disallowed_methods)] // bin-side wall-clock; results never read it
    let t0 = std::time::Instant::now();
    if let Err(e) = cli::write_telemetry(args.metrics_out.as_deref(), args.trace_out.as_deref()) {
        eprintln!("hxserve: cannot write telemetry artifacts: {e}");
        std::process::exit(1);
    }
    let telemetry_overhead_s = t0.elapsed().as_secs_f64();
    if let Some(path) = &args.stats {
        let mut counters = String::from("{");
        for (i, (name, total)) in hxtelemetry::collect::counter_totals().iter().enumerate() {
            if i > 0 {
                counters.push(',');
            }
            counters.push_str(&format!("\"{name}\":{total}"));
        }
        counters.push('}');
        let body = format!(
            "{{\"specs\":{},\"cells\":{total_cells},\"cache_hits\":{total_hits},\"cache_misses\":{total_misses},\
             \"counters\":{counters},\"telemetry_overhead_s\":{telemetry_overhead_s:.6}}}\n",
            args.specs.len()
        );
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("hxserve: cannot write stats {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
