//! The scenario executor: expands a [`Plan`]'s cells onto the workspace
//! thread pool, memoizes completed cells through the on-disk cache, and
//! reassembles results in deterministic cell order.
//!
//! Concurrency model: cells run in chunks of `threads * 4` on the
//! vendored rayon pool. Within a chunk, results come back index-ordered
//! (the pool's contract), and chunks are emitted in order — so the row
//! stream handed to [`run_with`]'s callback is identical at any thread
//! count, and identical whether a cell was computed or served from cache.

use crate::cache::{self, CacheRecord};
use crate::spec::{CellKind, CellSpec, Plan, PAPER_SCALE};
use hammingmesh::experiments::{self, Measurement};
use hammingmesh::hxnet::{FailureSetId, Network};
use hammingmesh::hxsim::{FailureSchedule, SimConfig};
use hammingmesh::hxtelemetry::{self, Registry, TraceSink};
use rayon::prelude::*;
use std::path::{Path, PathBuf};

/// A bandwidth-style cell result (everything but the permutation
/// distributions).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BwCell {
    pub bw_fraction: f64,
    pub time_ps: u64,
    pub clean: bool,
}

/// Identity of the network a cell ran on, captured so renderers (and the
/// cache) never need to rebuild the topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetInfo {
    /// The built network's human-readable name (`"8x8 2D HyperX"`).
    pub name: String,
    /// `Network::num_ranks()` — what the Fig. 14 CSV reports.
    pub ranks: usize,
    /// `Network::endpoints.len()` — what the Fig. 10 block headers report.
    pub endpoints: usize,
    /// Total cable count of the pristine topology.
    pub cables: usize,
}

/// What a cell produced.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutput {
    Bandwidth(BwCell),
    /// Per-accelerator receive-bandwidth samples (permutation pattern).
    Distribution(Vec<f64>),
}

/// One executed cell, in plan order.
#[derive(Clone, Debug)]
pub struct CellRow {
    pub spec: CellSpec,
    pub net: NetInfo,
    /// Fingerprint of the drawn failure set (0 for non-failure cells).
    pub failure_set_id: u64,
    pub output: CellOutput,
    /// Served from the on-disk cache (never affects rendered output).
    pub cached: bool,
}

/// Executor configuration.
#[derive(Clone, Debug, Default)]
pub struct ExecOptions {
    /// Cell cache directory; `None` disables memoization entirely.
    pub cache_dir: Option<PathBuf>,
}

/// The outcome of running a plan: rows in cell order plus cache counters.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub rows: Vec<CellRow>,
    pub cache_hits: usize,
    pub cache_misses: usize,
}

/// Run every cell of the plan. Equivalent to [`run_with`] with a no-op
/// row callback.
pub fn run(plan: &Plan, opts: &ExecOptions) -> RunResult {
    run_with(plan, opts, |_| {})
}

/// Run every cell, invoking `on_row` for each completed row **in cell
/// order** (the streaming hook behind `hxserve`'s JSONL/CSV output).
/// Rows surface chunk by chunk: a chunk's cells run concurrently, then
/// its rows are emitted in index order before the next chunk starts.
pub fn run_with(plan: &Plan, opts: &ExecOptions, mut on_row: impl FnMut(&CellRow)) -> RunResult {
    let chunk = rayon::current_num_threads().saturating_mul(4).max(1);
    let mut rows: Vec<CellRow> = Vec::with_capacity(plan.cells.len());
    for batch in plan.cells.chunks(chunk) {
        let done: Vec<CellRow> = batch
            .par_iter()
            .map(|cell| exec_cell(&plan.spec_src, cell, opts.cache_dir.as_deref()))
            .collect();
        for row in done {
            on_row(&row);
            rows.push(row);
        }
    }
    let cache_hits = rows.iter().filter(|r| r.cached).count();
    let cache_misses = rows.len() - cache_hits;
    RunResult {
        rows,
        cache_hits,
        cache_misses,
    }
}

/// Build the cell's network at the right scale: counts at or above
/// [`PAPER_SCALE`] get the paper-scale machine, smaller counts the
/// proportionally reduced build.
fn build_net(cell: &CellSpec) -> Network {
    if cell.endpoints >= PAPER_SCALE {
        cell.topology.build_small()
    } else {
        cell.topology.build_scaled(cell.endpoints)
    }
}

fn net_info(net: &Network) -> NetInfo {
    NetInfo {
        name: net.name.clone(),
        ranks: net.num_ranks(),
        endpoints: net.endpoints.len(),
        cables: net.topo.cables().len(),
    }
}

/// Pack a [`FailureSetId`] into the cache key's u64 slot. The count lands
/// in the high half so two sets differing only in size can't collide via
/// fingerprint alone.
fn fsid_u64(id: FailureSetId) -> u64 {
    (u64::from(id.count)).rotate_left(32) ^ id.fingerprint
}

/// Execute (or recall) one cell.
fn exec_cell(spec_src: &str, cell: &CellSpec, cache_dir: Option<&Path>) -> CellRow {
    // Telemetry scope: everything this cell records — including the
    // engine-level events of the simulations it runs — lands under a
    // label derived from the cell index, so artifacts are byte-identical
    // at any thread count.
    let _tel_scope = hxtelemetry::collect::scope(&format!("cell/{:04}", cell.index));
    let tel_trace = hxtelemetry::collect::trace_enabled();
    let tel_metrics = hxtelemetry::collect::metrics_enabled();
    let tel_any = tel_trace || tel_metrics;
    let mut sink = TraceSink::new(tel_trace);
    let mut reg = Registry::new();
    if tel_any {
        sink.instant_args("cell_start", "serve", 0, vec![("cell", cell.index as u64)]);
    }
    // Failure cells draw their cable set first: the cache key includes the
    // set's content fingerprint, so a changed drawing recipe can never be
    // served a stale result. The draw itself is cheap next to the sim.
    let (prepared, failure_set_id, schedule) = match cell.kind {
        CellKind::FailedAlltoall { failures, draw } => {
            let mut net = build_net(cell);
            let got = net.fail_random_cables_drawn(failures, cell.seed, draw as u64);
            assert_eq!(
                got, failures,
                "{}: could only fail {got}/{failures} cables",
                net.name
            );
            let id = net.topo.failure_set_id();
            (Some(net), fsid_u64(id), None)
        }
        CellKind::MidrunAlltoall { failures, draw } => {
            // Same draw (and so the same fingerprint/cache identity) as
            // the frozen cell, but the run starts on the pristine network
            // and the drawn cables arrive as mid-run link events.
            let mut net = build_net(cell);
            let got = net.fail_random_cables_drawn(failures, cell.seed, draw as u64);
            assert_eq!(
                got, failures,
                "{}: could only fail {got}/{failures} cables",
                net.name
            );
            let id = net.topo.failure_set_id();
            let drawn: Vec<_> = net
                .topo
                .cables()
                .into_iter()
                .filter(|&(n, p)| net.topo.link_failed(n, p))
                .collect();
            for &(n, p) in &drawn {
                net.topo.restore_link(n, p);
            }
            let times = cell
                .midrun
                .as_ref()
                // hxlint: allow(P001) expand_cells sets `midrun` on every MidrunAlltoall cell
                .expect("midrun cells carry times");
            let at = |v: &[u64], i: usize| v[i.min(v.len() - 1)];
            let mut sched = FailureSchedule::new();
            for (i, &(n, p)) in drawn.iter().enumerate() {
                sched = sched.fail(at(&times.fail_at_ps, i), n, p);
                if !times.repair_at_ps.is_empty() {
                    sched = sched.repair(at(&times.repair_at_ps, i), n, p);
                }
            }
            (Some(net), fsid_u64(id), Some(sched))
        }
        _ => (None, 0u64, None),
    };
    let descriptor = cell.descriptor();
    let key = cache::cell_key(spec_src, &descriptor, failure_set_id);
    if let Some(dir) = cache_dir {
        if let Some(rec) = cache::load(dir, key, &descriptor) {
            if tel_any {
                sink.instant_args(
                    "cell_cache_hit",
                    "serve",
                    0,
                    vec![("cell", cell.index as u64)],
                );
                let hits = reg.counter("cell_cache_hits");
                reg.inc(hits, 1);
                hxtelemetry::collect::submit(reg, sink);
            }
            return CellRow {
                spec: cell.clone(),
                net: rec.net,
                failure_set_id,
                output: rec.output,
                cached: true,
            };
        }
    }
    let net = match prepared {
        Some(net) => net,
        None => build_net(cell),
    };
    let info = net_info(&net);
    let output = match cell.kind {
        CellKind::Alltoall => bw(experiments::alltoall_bandwidth_on(
            &net,
            cell.bytes,
            cell.window,
            cell.engine,
        )),
        CellKind::Permutation { rounds } => {
            CellOutput::Distribution(experiments::permutation_bandwidths_on(
                &net,
                cell.bytes,
                rounds,
                cell.seed,
                cell.engine,
            ))
        }
        CellKind::Allreduce { algo } => bw(experiments::allreduce_bandwidth_on(
            &net,
            algo,
            cell.bytes,
            cell.engine,
        )),
        CellKind::FailedAlltoall { failures, .. } => {
            let m = experiments::alltoall_bandwidth_on(&net, cell.bytes, cell.window, cell.engine);
            assert!(
                m.clean,
                "{} with {failures} failed cables did not deliver all traffic ({})",
                net.name, cell.engine
            );
            bw(m)
        }
        CellKind::MidrunAlltoall { failures, .. } => {
            let cfg = SimConfig {
                // hxlint: allow(P001) the prepared arm above builds a schedule for every midrun cell
                failures: schedule.expect("midrun cells build a schedule"),
                ..SimConfig::default()
            };
            let m = experiments::alltoall_bandwidth_cfg(
                &net,
                cell.bytes,
                cell.window,
                cell.engine,
                cfg,
            );
            assert!(
                m.clean,
                "{} with {failures} mid-run cable failures did not deliver all traffic ({})",
                net.name, cell.engine
            );
            bw(m)
        }
    };
    if let Some(dir) = cache_dir {
        // A failed store (disk full, read-only dir) costs a recompute next
        // run, never a wrong answer — drop the error.
        let _ = cache::store(
            dir,
            key,
            &CacheRecord {
                descriptor,
                net: info.clone(),
                output: output.clone(),
            },
        );
    }
    if tel_any {
        let computed = reg.counter("cells_computed");
        reg.inc(computed, 1);
        hxtelemetry::collect::submit(reg, sink);
    }
    CellRow {
        spec: cell.clone(),
        net: info,
        failure_set_id,
        output,
        cached: false,
    }
}

fn bw(m: Measurement) -> CellOutput {
    CellOutput::Bandwidth(BwCell {
        bw_fraction: m.bw_fraction,
        time_ps: m.time_ps,
        clean: m.clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Overrides, Scenario};

    const TINY: &str = r#"
[scenario]
name = "tiny"
pattern = "alltoall"

[topology]
set = ["hx2mesh", "torus"]
endpoints = 16

[sweep]
bytes = [8192]

[output]
style = "grid"
title = "tiny"
"#;

    #[test]
    fn runs_cells_in_order_without_cache() {
        let plan = Scenario::parse(TINY)
            .unwrap()
            .resolve(&Overrides::default());
        let mut seen = Vec::new();
        let res = run_with(&plan, &ExecOptions::default(), |row| {
            seen.push(row.spec.index);
        });
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(res.cache_hits, 0);
        assert_eq!(res.cache_misses, 2);
        for row in &res.rows {
            let CellOutput::Bandwidth(b) = &row.output else {
                panic!("bandwidth cell expected");
            };
            assert!(b.clean && b.bw_fraction > 0.0);
            assert_eq!(row.net.ranks, 16);
        }
    }

    #[test]
    fn results_identical_at_any_thread_count() {
        let plan = Scenario::parse(TINY)
            .unwrap()
            .resolve(&Overrides::default());
        let baseline = run(&plan, &ExecOptions::default());
        for threads in ["1", "3"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let again = run(&plan, &ExecOptions::default());
            for (a, b) in baseline.rows.iter().zip(&again.rows) {
                assert_eq!(a.output, b.output, "{threads} threads");
            }
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}
