//! Renderers: turn a plan's row stream into the exact stdout tables the
//! original figure binaries printed (pinned byte-for-byte by
//! `crates/bench/tests/spec_golden.rs`), the figures' CSV side files, and
//! `hxserve`'s machine formats (JSONL, streaming CSV).
//!
//! None of the output includes the `cached` flag or any wall-clock value,
//! so a warm (fully cached) run is byte-identical to the cold run that
//! populated the cache.

use crate::exec::{BwCell, CellOutput, CellRow};
use crate::spec::{CellKind, FailureMode, Plan, Style};
use hammingmesh::prelude::ClusterSize;
use std::fmt::Write as _;

/// Human-readable byte size for axes (`32KiB`, `8MiB`, `512B`).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

fn bw_cell(row: &CellRow) -> BwCell {
    match &row.output {
        CellOutput::Bandwidth(b) => *b,
        CellOutput::Distribution(_) => {
            unreachable!("plan expansion pairs bandwidth styles with bandwidth cells")
        }
    }
}

/// `sorted` must be ascending; nearest-rank percentile, matching the
/// original Fig. 12 binary.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Render the full stdout report (header line, tables, trailing note) for
/// a completed run. `rows` must be the plan's cells in order.
pub fn render(plan: &Plan, rows: &[CellRow]) -> String {
    assert_eq!(rows.len(), plan.cells.len(), "row set must match the plan");
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {} ===", plan.title);
    match plan.style {
        Style::Grid => {
            let cols: Vec<String> = plan.bytes.iter().map(|&b| fmt_bytes(b)).collect();
            grid_block(&mut out, plan, rows, 0, &cols);
        }
        Style::GridByAlgo => {
            let cols: Vec<String> = plan.bytes.iter().map(|&b| fmt_bytes(b)).collect();
            let block = plan.topologies.len() * cols.len();
            for (ai, algo) in plan.algos.iter().enumerate() {
                let _ = writeln!(out, "\nalgorithm: {algo:?}");
                grid_block(&mut out, plan, rows, ai * block, &cols);
            }
        }
        Style::ScalingByAlgo => {
            let cols: Vec<String> = plan
                .endpoints_axis
                .iter()
                .map(|n| format!("{n} accels"))
                .collect();
            let block = plan.topologies.len() * cols.len();
            for (ai, algo) in plan.algos.iter().enumerate() {
                let _ = writeln!(out, "\nalgorithm: {algo:?}");
                grid_block(&mut out, plan, rows, ai * block, &cols);
            }
        }
        Style::Distribution => distribution_block(&mut out, plan, rows),
        Style::FailureBlocks => failure_blocks(&mut out, plan, rows),
    }
    let _ = writeln!(out, "\n{}", plan.note);
    out
}

/// One topology-rows x `cols` table of percentage cells starting at
/// `offset` (shared by the grid, grid_by_algo, and scaling styles).
fn grid_block(out: &mut String, plan: &Plan, rows: &[CellRow], offset: usize, cols: &[String]) {
    let _ = write!(out, "{:<24}", "topology");
    for c in cols {
        let _ = write!(out, " {c:>10}");
    }
    out.push('\n');
    for (ti, choice) in plan.topologies.iter().enumerate() {
        let _ = write!(out, "{:<24}", choice.name());
        for ci in 0..cols.len() {
            let b = bw_cell(&rows[offset + ti * cols.len() + ci]);
            let _ = write!(
                out,
                " {:>9.1}%{}",
                b.bw_fraction * 100.0,
                if b.clean { "" } else { "!" }
            );
        }
        out.push('\n');
    }
}

/// The Fig. 12 table: per-topology receive-bandwidth percentiles and the
/// cost-per-average-bandwidth column, relative to the first row.
fn distribution_block(out: &mut String, plan: &Plan, rows: &[CellRow]) {
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>14}",
        "topology", "p10%", "median%", "p90%", "mean%", "cost/avgBW"
    );
    let costs = hammingmesh::hxcost::table2_entries(ClusterSize::Small);
    let mut first_cost_per_bw = None;
    for (ti, &choice) in plan.topologies.iter().enumerate() {
        let CellOutput::Distribution(samples) = &rows[ti].output else {
            unreachable!("distribution style pairs with distribution cells")
        };
        let mut bw = samples.clone();
        // total_cmp orders the positive finite samples identically to the
        // original partial_cmp sort, without its NaN panic path.
        bw.sort_by(f64::total_cmp);
        let mean = bw.iter().sum::<f64>() / bw.len() as f64;
        // Table II costs are indexed by the topology's row in
        // `TopologyChoice::all()`, which is the enum discriminant.
        let cost_per_bw = costs[choice as usize].cost_musd() / mean.max(1e-9);
        let rel = *first_cost_per_bw.get_or_insert(cost_per_bw);
        let _ = writeln!(
            out,
            "{:<24} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>10.2}x-FT",
            choice.name(),
            percentile(&bw, 0.10) * 100.0,
            percentile(&bw, 0.50) * 100.0,
            percentile(&bw, 0.90) * 100.0,
            mean * 100.0,
            cost_per_bw / rel
        );
    }
}

/// The Fig. 10 routed tables: one block per topology, failed-cables rows
/// by engine (x failure-mode, for midrun comparisons) columns, each cell
/// the mean over the draws.
fn failure_blocks(out: &mut String, plan: &Plan, rows: &[CellRow]) {
    let e_n = plan.engines.len();
    let m_n = plan.failures.modes.len();
    let d_n = plan.draws;
    let f_n = plan.failed_cables.len();
    for ti in 0..plan.topologies.len() {
        let base = ti * f_n * e_n * m_n * d_n;
        let net = &rows[base].net;
        let _ = writeln!(
            out,
            "\n{} ({} endpoints, {} cables):",
            net.name, net.endpoints, net.cables
        );
        // Mode-tagged headers ("packet mid%") need the wider column; the
        // single-frozen-mode layout keeps the original 9-char one.
        let legacy = m_n == 1 && plan.failures.modes[0] == FailureMode::Frozen;
        let w = if legacy { 9 } else { 12 };
        let _ = write!(out, "{:>8}", "failed");
        for e in &plan.engines {
            for &mode in &plan.failures.modes {
                let label = if legacy {
                    format!("{e}%")
                } else {
                    let tag = match mode {
                        FailureMode::Frozen => "frz",
                        FailureMode::Midrun => "mid",
                    };
                    format!("{e} {tag}%")
                };
                let _ = write!(out, " {label:>w$}");
            }
        }
        out.push('\n');
        for (fi, &f) in plan.failed_cables.iter().enumerate() {
            let _ = write!(out, "{f:>8}");
            for ei in 0..e_n {
                for mi in 0..m_n {
                    let mut sum = 0.0;
                    for di in 0..d_n {
                        let idx = base + ((fi * e_n + ei) * m_n + mi) * d_n + di;
                        sum += bw_cell(&rows[idx]).bw_fraction;
                    }
                    let _ = write!(out, " {:>w$.1}", sum / d_n as f64 * 100.0);
                }
            }
            out.push('\n');
        }
    }
}

/// Does the plan have a midrun column (which adds a `mode` CSV column)?
fn has_midrun(plan: &Plan) -> bool {
    plan.failures.modes.contains(&FailureMode::Midrun)
}

/// CSV column header for the styles that emit CSV (the Fig. 14 and
/// Fig. 10 side files); `None` for the stdout-only styles. Frozen-only
/// failure plans keep the original column set; plans with a midrun
/// component gain a `mode` column after `engine`.
pub fn csv_header(plan: &Plan) -> Option<String> {
    match plan.style {
        Style::ScalingByAlgo => {
            Some("algorithm,topology,engine,endpoints,bytes,bw_fraction,sim_ps,clean".to_string())
        }
        Style::FailureBlocks if has_midrun(plan) => {
            Some("topology,engine,mode,failed_cables,draw,bw_fraction,sim_ps,clean".to_string())
        }
        Style::FailureBlocks => {
            Some("topology,engine,failed_cables,draw,bw_fraction,sim_ps,clean".to_string())
        }
        _ => None,
    }
}

/// One CSV line for a cell (no trailing newline), matching the original
/// binaries' column conventions. `None` when the style emits no CSV.
pub fn csv_row(plan: &Plan, row: &CellRow) -> Option<String> {
    match (plan.style, &row.spec.kind, &row.output) {
        (Style::ScalingByAlgo, CellKind::Allreduce { algo }, CellOutput::Bandwidth(b)) => {
            Some(format!(
                "{algo:?},{},{},{},{},{:.4},{},{}",
                row.spec.topology.name(),
                row.spec.engine,
                row.net.ranks,
                row.spec.bytes,
                b.bw_fraction,
                b.time_ps,
                b.clean
            ))
        }
        (
            Style::FailureBlocks,
            CellKind::FailedAlltoall { failures, draw },
            CellOutput::Bandwidth(b),
        ) => {
            let mode = if has_midrun(plan) { "frozen," } else { "" };
            Some(format!(
                "{},{},{mode}{failures},{draw},{:.4},{},{}",
                row.net.name, row.spec.engine, b.bw_fraction, b.time_ps, b.clean
            ))
        }
        (
            Style::FailureBlocks,
            CellKind::MidrunAlltoall { failures, draw },
            CellOutput::Bandwidth(b),
        ) => Some(format!(
            "{},{},midrun,{failures},{draw},{:.4},{},{}",
            row.net.name, row.spec.engine, b.bw_fraction, b.time_ps, b.clean
        )),
        _ => None,
    }
}

/// The complete CSV side file for a run, or `None` for stdout-only styles.
pub fn render_csv(plan: &Plan, rows: &[CellRow]) -> Option<String> {
    let header = csv_header(plan)?;
    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(&header);
    out.push('\n');
    for row in rows {
        if let Some(line) = csv_row(plan, row) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    Some(out)
}

fn json_str(s: &str) -> String {
    // The spec escape set (\n \t \\ \") is exactly the JSON escape set the
    // workspace's identifiers and names can contain.
    crate::toml::quote(s)
}

/// One JSONL object for a cell (no trailing newline). Excludes the
/// `cached` flag by design: warm and cold runs must emit identical bytes.
pub fn jsonl_row(plan: &Plan, row: &CellRow) -> String {
    let mut out = String::with_capacity(160);
    let _ = write!(
        out,
        "{{\"scenario\":{},\"cell\":{},\"topology\":{},\"engine\":\"{}\",\"endpoints\":{},\"ranks\":{},\"bytes\":{}",
        json_str(&plan.name),
        row.spec.index,
        json_str(row.spec.topology.spec_name()),
        row.spec.engine,
        row.spec.endpoints,
        row.net.ranks,
        row.spec.bytes,
    );
    match row.spec.kind {
        CellKind::Alltoall => {
            let _ = write!(out, ",\"kind\":\"alltoall\",\"window\":{}", row.spec.window);
        }
        CellKind::Permutation { rounds } => {
            let _ = write!(out, ",\"kind\":\"permutation\",\"rounds\":{rounds}");
        }
        CellKind::Allreduce { algo } => {
            let _ = write!(
                out,
                ",\"kind\":\"allreduce\",\"algo\":{}",
                json_str(algo.spec_name())
            );
        }
        CellKind::FailedAlltoall { failures, draw } => {
            let _ = write!(
                out,
                ",\"kind\":\"failed_alltoall\",\"failed_cables\":{failures},\"draw\":{draw},\"failure_set_id\":\"{:016x}\"",
                row.failure_set_id
            );
        }
        CellKind::MidrunAlltoall { failures, draw } => {
            let ints = |v: &[u64]| {
                v.iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let t = row
                .spec
                .midrun
                .as_ref()
                // hxlint: allow(P001) expand_cells sets `midrun` on every MidrunAlltoall cell
                .expect("midrun cells carry times");
            let _ = write!(
                out,
                ",\"kind\":\"midrun_alltoall\",\"failed_cables\":{failures},\"draw\":{draw},\"failure_set_id\":\"{:016x}\",\"fail_at_ps\":[{}],\"repair_at_ps\":[{}]",
                row.failure_set_id,
                ints(&t.fail_at_ps),
                ints(&t.repair_at_ps)
            );
        }
    }
    match &row.output {
        CellOutput::Bandwidth(b) => {
            let _ = write!(
                out,
                ",\"bw_fraction\":{},\"sim_ps\":{},\"clean\":{}}}",
                json_f64(b.bw_fraction),
                b.time_ps,
                b.clean
            );
        }
        CellOutput::Distribution(samples) => {
            let joined: Vec<String> = samples.iter().map(|&s| json_f64(s)).collect();
            let _ = write!(out, ",\"samples\":[{}]}}", joined.join(","));
        }
    }
    out
}

/// A finite f64 as a JSON number that parses back to the same bits
/// (Rust's shortest-round-trip Display).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "bandwidth fractions are finite");
    let s = format!("{v}");
    // Display omits the decimal point for integral values; keep it a JSON
    // number either way (it already is), nothing to fix up.
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOptions, NetInfo};
    use crate::spec::{Overrides, Scenario};

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(32 << 10), "32KiB");
        assert_eq!(fmt_bytes(8 << 20), "8MiB");
    }

    #[test]
    fn grid_render_shape_and_determinism() {
        let spec = r#"
[scenario]
name = "t"
pattern = "alltoall"

[topology]
set = ["hx2mesh", "torus"]
endpoints = 16

[sweep]
bytes = [8192, 16384]

[output]
style = "grid"
title = "t (16 endpoints)"
note = "n"
"#;
        let plan = Scenario::parse(spec)
            .unwrap()
            .resolve(&Overrides::default());
        let res = crate::exec::run(&plan, &ExecOptions::default());
        let text = render(&plan, &res.rows);
        assert!(text.starts_with("\n=== t (16 endpoints) ===\n"), "{text}");
        assert!(text.contains("Hx2Mesh"), "{text}");
        assert!(text.contains("2D torus"), "{text}");
        assert!(text.ends_with("\nn\n"), "{text:?}");
        // Rendering is a pure function of the rows.
        assert_eq!(text, render(&plan, &res.rows));
    }

    #[test]
    fn jsonl_rows_are_valid_enough_and_exclude_cached() {
        let spec = r#"
[scenario]
name = "t"
pattern = "alltoall"

[topology]
set = ["hx2mesh"]
endpoints = 16

[sweep]
bytes = [8192]

[output]
style = "grid"
title = "t"
"#;
        let plan = Scenario::parse(spec)
            .unwrap()
            .resolve(&Overrides::default());
        let res = crate::exec::run(&plan, &ExecOptions::default());
        let mut row = res.rows[0].clone();
        let cold = jsonl_row(&plan, &row);
        assert!(
            cold.starts_with("{\"scenario\":\"t\",\"cell\":0,"),
            "{cold}"
        );
        assert!(cold.ends_with('}'), "{cold}");
        assert!(!cold.contains("cached"), "{cold}");
        row.cached = true;
        assert_eq!(jsonl_row(&plan, &row), cold, "cached flag must not leak");
    }

    #[test]
    fn csv_rows_only_for_csv_styles() {
        let plan_of = |src: &str| Scenario::parse(src).unwrap().resolve(&Overrides::default());
        let grid = plan_of(
            "[scenario]\nname = \"g\"\npattern = \"alltoall\"\n[topology]\nset = [\"torus\"]\n\
             endpoints = 16\n[sweep]\nbytes = [8192]\n[output]\nstyle = \"grid\"\ntitle = \"g\"\n",
        );
        let frozen = plan_of(
            "[scenario]\nname = \"f\"\npattern = \"failures\"\nengine = \"flow\"\n[topology]\n\
             set = [\"torus\"]\nendpoints = 64\n[sweep]\nbytes = [32768]\n\
             failed_cables = [0, 4]\ndraws = 2\n[output]\nstyle = \"failure_blocks\"\n\
             title = \"f\"\n",
        );
        let compare = plan_of(
            "[scenario]\nname = \"c\"\npattern = \"failures\"\nengine = \"flow\"\n[topology]\n\
             set = [\"torus\"]\nendpoints = 64\n[sweep]\nbytes = [32768]\n\
             failed_cables = [0, 4]\ndraws = 2\n[failures]\nmode = \"compare\"\n\
             [failures.schedule]\nfail_at_ps = [1000000]\n[output]\n\
             style = \"failure_blocks\"\ntitle = \"c\"\n",
        );
        assert_eq!(csv_header(&grid), None);
        assert_eq!(
            csv_header(&frozen).unwrap(),
            "topology,engine,failed_cables,draw,bw_fraction,sim_ps,clean"
        );
        assert_eq!(
            csv_header(&compare).unwrap(),
            "topology,engine,mode,failed_cables,draw,bw_fraction,sim_ps,clean"
        );
        let mut row = CellRow {
            spec: crate::spec::CellSpec {
                index: 0,
                topology: hammingmesh::topologies::TopologyChoice::Torus,
                engine: hammingmesh::hxsim::EngineKind::Flow,
                endpoints: 64,
                bytes: 32768,
                window: 2,
                seed: 1,
                kind: CellKind::FailedAlltoall {
                    failures: 4,
                    draw: 1,
                },
                midrun: None,
            },
            net: NetInfo {
                name: "8x8 2D torus".into(),
                ranks: 64,
                endpoints: 64,
                cables: 64,
            },
            failure_set_id: 7,
            output: CellOutput::Bandwidth(crate::exec::BwCell {
                bw_fraction: 0.08215,
                time_ps: 123,
                clean: true,
            }),
            cached: false,
        };
        assert_eq!(
            csv_row(&frozen, &row).unwrap(),
            "8x8 2D torus,flow,4,1,0.0822,123,true"
        );
        assert_eq!(
            csv_row(&compare, &row).unwrap(),
            "8x8 2D torus,flow,frozen,4,1,0.0822,123,true"
        );
        row.spec.kind = CellKind::MidrunAlltoall {
            failures: 4,
            draw: 1,
        };
        row.spec.midrun = Some(crate::spec::MidrunTimes {
            fail_at_ps: vec![1_000_000],
            repair_at_ps: Vec::new(),
        });
        assert_eq!(
            csv_row(&compare, &row).unwrap(),
            "8x8 2D torus,flow,midrun,4,1,0.0822,123,true"
        );
        assert_eq!(csv_row(&grid, &row), None);
    }
}
