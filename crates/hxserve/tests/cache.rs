//! The memoization contract of the scenario cache:
//!
//! * a byte-identical spec re-run is served entirely from cache, and the
//!   served rows render byte-identically to the cold run;
//! * a one-character change to the spec source misses everything (the key
//!   covers the spec bytes, not just the cell descriptor);
//! * disabling the cache leaves the directory untouched.

use hxserve::{exec, render, ExecOptions, Overrides, Scenario};
use std::path::PathBuf;

const SPEC: &str = r#"
[scenario]
name = "cache-probe"
pattern = "failures"
engine = "flow"
seed = 7

[topology]
set = ["hx2mesh", "torus"]
endpoints = 16

[sweep]
bytes = [4096]
failed_cables = [0, 1]
draws = 2
traces = "draws"

[output]
style = "failure_blocks"
title = "cache probe"
"#;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hxserve_cache_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn jsonl(spec_src: &str, opts: &ExecOptions) -> (String, usize, usize) {
    let plan = Scenario::parse(spec_src)
        .unwrap()
        .resolve(&Overrides::default());
    let res = exec::run(&plan, opts);
    let body: String = res
        .rows
        .iter()
        .map(|r| render::jsonl_row(&plan, r) + "\n")
        .collect();
    (body, res.cache_hits, res.cache_misses)
}

#[test]
fn identical_spec_hits_and_renders_byte_identically() {
    let dir = tmp_dir("hit");
    let opts = ExecOptions {
        cache_dir: Some(dir.clone()),
    };
    let (cold, hits0, misses0) = jsonl(SPEC, &opts);
    assert_eq!(hits0, 0, "cold run must not hit");
    assert_eq!(misses0, 8, "2 topologies x 2 failure counts x 2 draws");

    let (warm, hits1, misses1) = jsonl(SPEC, &opts);
    assert_eq!((hits1, misses1), (8, 0), "warm run must be all hits");
    assert_eq!(warm, cold, "cached rows must render byte-identically");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn one_character_spec_change_misses_everything() {
    let dir = tmp_dir("miss");
    let opts = ExecOptions {
        cache_dir: Some(dir.clone()),
    };
    let (_, _, misses0) = jsonl(SPEC, &opts);
    assert_eq!(misses0, 8);

    // Same cells, same descriptors — only the title text differs.
    let touched = SPEC.replace("cache probe", "cache probe!");
    assert_eq!(touched.len(), SPEC.len() + 1);
    let (_, hits, misses) = jsonl(&touched, &opts);
    assert_eq!(
        (hits, misses),
        (0, 8),
        "a changed spec source must invalidate every cell"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_cache_writes_nothing() {
    let dir = tmp_dir("off");
    let (_, hits, misses) = jsonl(SPEC, &ExecOptions { cache_dir: None });
    assert_eq!((hits, misses), (0, 8), "every cell computed, none served");
    assert!(!dir.exists(), "no cache dir may be created");
}

/// Two draws of the same failure count produce different failure sets,
/// so their rows must carry different `failure_set_id`s — and the zero-
/// failure cells must agree on the empty set id across topologies' draws.
#[test]
fn failure_set_ids_key_the_draws_apart() {
    let plan = Scenario::parse(SPEC)
        .unwrap()
        .resolve(&Overrides::default());
    let res = exec::run(&plan, &ExecOptions::default());
    // Layout: topo x failed x engine x draw; draws are innermost.
    let by_cell: Vec<u64> = res.rows.iter().map(|r| r.failure_set_id).collect();
    assert_eq!(by_cell[0], by_cell[1], "f=0 draws share the empty set id");
    assert_ne!(
        by_cell[2], by_cell[3],
        "f=1 draws must draw different cables"
    );
}
