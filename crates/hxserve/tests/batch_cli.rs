//! End-to-end contract of the `hxserve` binary: a `batch` run executed
//! twice against the same cache directory must serve the second pass
//! (near-)entirely from cache — ≥90% hits, asserted from the `--stats`
//! counters — and the streamed JSONL must be byte-identical between the
//! passes. This is the same check CI's perf-smoke job runs on the
//! committed specs at release scale.

use std::path::PathBuf;
use std::process::Command;

const SPEC_A: &str = r#"
[scenario]
name = "batch-a"
pattern = "alltoall"
engine = "flow"

[topology]
set = ["hx2mesh", "torus"]
endpoints = 16

[sweep]
bytes = [4096, 16384]

[output]
style = "grid"
title = "batch a"
"#;

const SPEC_B: &str = r#"
[scenario]
name = "batch-b"
pattern = "allreduce"
engine = "flow"

[topology]
set = ["hx2mesh"]
endpoints = 16

[sweep]
bytes = [16384]
algos = ["rings", "torus"]

[output]
style = "grid_by_algo"
title = "batch b"
"#;

struct Workdir(PathBuf);

impl Workdir {
    fn new(tag: &str) -> Self {
        let d = std::env::temp_dir().join(format!("hxserve_cli_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        Self(d)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Workdir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn stat(stats: &str, field: &str) -> usize {
    let pat = format!("\"{field}\":");
    let rest = &stats[stats
        .find(&pat)
        .unwrap_or_else(|| panic!("{field} in {stats}"))
        + pat.len()..];
    rest[..rest.find([',', '}']).unwrap()]
        .trim()
        .parse()
        .unwrap()
}

fn run_batch(dir: &Workdir, pass: &str, extra: &[&str]) -> (Vec<u8>, String) {
    let stats_path = dir.path(&format!("stats_{pass}.json"));
    let out = Command::new(env!("CARGO_BIN_EXE_hxserve"))
        .arg("batch")
        .arg(dir.path("a.toml"))
        .arg(dir.path("b.toml"))
        .args(["--cache-dir", dir.path("cache").to_str().unwrap()])
        .args(["--stats", stats_path.to_str().unwrap()])
        .args(extra)
        .output()
        .expect("spawn hxserve");
    assert!(
        out.status.success(),
        "hxserve batch ({pass}) exited with {:?}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );
    let stats = std::fs::read_to_string(&stats_path).expect("stats written");
    (out.stdout, stats)
}

#[test]
fn second_batch_pass_is_cached_and_byte_identical() {
    let dir = Workdir::new("batch");
    std::fs::write(dir.path("a.toml"), SPEC_A).unwrap();
    std::fs::write(dir.path("b.toml"), SPEC_B).unwrap();

    let (cold_out, cold_stats) = run_batch(&dir, "cold", &[]);
    assert_eq!(stat(&cold_stats, "specs"), 2);
    let cells = stat(&cold_stats, "cells");
    assert_eq!(cells, 2 * 2 + 2, "grid 2x2 plus two allreduce cells");
    assert_eq!(stat(&cold_stats, "cache_hits"), 0);
    assert_eq!(stat(&cold_stats, "cache_misses"), cells);

    let (warm_out, warm_stats) = run_batch(&dir, "warm", &[]);
    let hits = stat(&warm_stats, "cache_hits");
    assert!(
        hits * 10 >= cells * 9,
        "warm pass must be >=90% cache hits, got {hits}/{cells}"
    );
    assert_eq!(
        warm_out, cold_out,
        "warm JSONL must be byte-identical to the cold pass"
    );
    // JSONL stream: one object per cell, in plan order, no cached marker.
    let body = String::from_utf8(cold_out).unwrap();
    assert_eq!(body.lines().count(), cells);
    assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(!body.contains("cached"));
}

/// The cell cache key deliberately excludes the max-min solver mode:
/// `--rates full` and `--rates incremental` are proven bitwise-equivalent
/// (tests/flow_incremental_equiv.rs), so cells computed under one mode
/// are valid hits under the other. A cold pass with the full solver
/// followed by a warm pass with the incremental solver must behave
/// exactly like a same-mode re-run: >=90% hits, byte-identical JSONL.
#[test]
fn rate_solver_switch_keeps_cache_warm() {
    let dir = Workdir::new("rates");
    std::fs::write(dir.path("a.toml"), SPEC_A).unwrap();
    std::fs::write(dir.path("b.toml"), SPEC_B).unwrap();

    let (cold_out, cold_stats) = run_batch(&dir, "cold", &["--rates", "full"]);
    let cells = stat(&cold_stats, "cells");
    assert_eq!(stat(&cold_stats, "cache_hits"), 0);

    let (warm_out, warm_stats) = run_batch(&dir, "warm", &["--rates", "incremental"]);
    let hits = stat(&warm_stats, "cache_hits");
    assert!(
        hits * 10 >= cells * 9,
        "solver switch must not cool the cache: {hits}/{cells} hits"
    );
    assert_eq!(
        warm_out, cold_out,
        "incremental warm pass must replay the full-solver cold pass byte for byte"
    );
}

/// Satellite contract of the telemetry tentpole: `--stats` keeps its
/// legacy fields but gains the registry counter totals and the measured
/// `telemetry_overhead_s`, and `--metrics-out`/`--trace-out` write a
/// scope-keyed metrics document and a valid Chrome trace.
#[test]
fn stats_gain_registry_counters_and_telemetry_artifacts() {
    let dir = Workdir::new("telemetry");
    std::fs::write(dir.path("a.toml"), SPEC_A).unwrap();
    std::fs::write(dir.path("b.toml"), SPEC_B).unwrap();
    let metrics_path = dir.path("metrics.json");
    let trace_path = dir.path("trace.json");
    let tel_flags = [
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ];

    let (_, cold_stats) = run_batch(&dir, "cold", &tel_flags);
    let cells = stat(&cold_stats, "cells");
    assert_eq!(stat(&cold_stats, "cells_computed"), cells, "{cold_stats}");
    assert!(stat(&cold_stats, "flows_started") > 0, "{cold_stats}");
    assert!(
        cold_stats.contains("\"telemetry_overhead_s\":"),
        "{cold_stats}"
    );
    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(metrics.contains("\"cell/0000\""), "{metrics}");
    assert!(metrics.contains("\"msg_latency_ps\""), "{metrics}");
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let events = hxtelemetry::validate_chrome_trace(&trace).expect("valid Chrome trace");
    assert!(events > 0, "trace holds no events");

    // A warm pass surfaces the cache through the trace counters too.
    let (_, warm_stats) = run_batch(&dir, "warm", &tel_flags);
    assert_eq!(
        stat(&warm_stats, "cell_cache_hits"),
        stat(&warm_stats, "cache_hits"),
        "{warm_stats}"
    );
}

#[test]
fn run_renders_csv_and_table_formats() {
    let dir = Workdir::new("formats");
    let spec = dir.path("scal.toml");
    std::fs::write(
        &spec,
        r#"
[scenario]
name = "scal"
pattern = "allreduce"
engine = "flow"

[topology]
set = ["hx2mesh"]
endpoints = 16

[sweep]
bytes = [16384]
algos = ["rings"]
endpoints = [16, 64]
traces = "cap_endpoints"

[output]
style = "scaling_by_algo"
title = "scal {bytes}"
"#,
    )
    .unwrap();

    let run = |format: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_hxserve"))
            .args([
                "run",
                spec.to_str().unwrap(),
                "--no-cache",
                "--format",
                format,
            ])
            .output()
            .expect("spawn hxserve");
        assert!(out.status.success(), "--format {format} failed");
        String::from_utf8(out.stdout).unwrap()
    };
    let csv = run("csv");
    assert!(
        csv.starts_with("algorithm,topology,engine,endpoints,bytes,bw_fraction,sim_ps,clean\n"),
        "{csv}"
    );
    assert_eq!(csv.lines().count(), 1 + 2, "header plus one row per cell");
    let table = run("table");
    assert!(table.contains("=== scal 16KiB ==="), "{table}");
    assert!(table.contains("algorithm: DisjointRings"), "{table}");
}

#[test]
fn cli_errors_are_exit_code_2() {
    let cases: &[&[&str]] = &[
        &["run"],                               // missing spec path
        &["batch"],                             // no specs
        &["frobnicate"],                        // unknown command
        &["run", "x.toml", "--wat"],            // unknown flag
        &["run", "x.toml", "--format", "yaml"], // bad enum value
        &["run", "x.toml", "--traces"],         // missing value
    ];
    for args in cases {
        let out = Command::new(env!("CARGO_BIN_EXE_hxserve"))
            .args(*args)
            .output()
            .expect("spawn hxserve");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2\n--- stderr ---\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let help = Command::new(env!("CARGO_BIN_EXE_hxserve"))
        .arg("--help")
        .output()
        .expect("spawn hxserve");
    assert_eq!(help.status.code(), Some(0), "--help exits 0");
    let text = String::from_utf8(help.stdout).unwrap();
    for flag in [
        "--full",
        "--traces",
        "--seed",
        "--engine",
        "--threads",
        "--format",
        "--no-cache",
    ] {
        assert!(text.contains(flag), "--help must document {flag}:\n{text}");
    }
}

/// A spec that fails to parse is an exit-1 data error (not a usage
/// error), reported with the file path.
#[test]
fn broken_spec_is_exit_code_1_with_the_path() {
    let dir = Workdir::new("broken");
    let spec = dir.path("broken.toml");
    std::fs::write(&spec, "[scenario]\nname = \"x\"\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_hxserve"))
        .args(["run", spec.to_str().unwrap()])
        .output()
        .expect("spawn hxserve");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("broken.toml"), "{err}");
}
