//! Spec-layer fixtures, in the hxlint style: every `ok_*.toml` under
//! `tests/fixtures/` must parse and survive a canonical round-trip, every
//! `bad_*.toml` must be rejected with the error named in its first-line
//! `# expect-error:` annotation. The committed scenario specs under
//! `specs/` are held to the same round-trip contract, so a spec that
//! drifts from the parser (or vice versa) fails here, not at figure time.

use hxserve::Scenario;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

fn toml_files(dir: &PathBuf, prefix: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_str().unwrap();
            name.ends_with(".toml") && name.starts_with(prefix)
        })
        .map(|p| {
            (
                p.file_stem().unwrap().to_str().unwrap().to_string(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// `parse(to_toml(s))` must reproduce `s` exactly (a fixpoint): the
/// canonical serialization is complete and the parser accepts it.
fn assert_round_trip(name: &str, src: &str) {
    let spec = Scenario::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let canonical = spec.to_toml();
    let reparsed = Scenario::parse(&canonical)
        .unwrap_or_else(|e| panic!("{name}: canonical form does not re-parse: {e}\n{canonical}"));
    assert_eq!(
        reparsed.to_toml(),
        canonical,
        "{name}: canonical serialization is not a fixpoint"
    );
}

#[test]
fn ok_fixtures_parse_and_round_trip() {
    let fixtures = toml_files(&fixture_dir(), "ok_");
    assert!(fixtures.len() >= 3, "fixture set went missing");
    for (name, src) in fixtures {
        assert_round_trip(&name, &src);
        // Resolving with defaults must yield a runnable, non-empty plan.
        let plan = Scenario::parse(&src)
            .unwrap()
            .resolve(&hxserve::Overrides::default());
        assert!(!plan.cells.is_empty(), "{name}: resolved to zero cells");
    }
}

#[test]
fn bad_fixtures_are_rejected_with_the_annotated_error() {
    let fixtures = toml_files(&fixture_dir(), "bad_");
    assert!(fixtures.len() >= 5, "fixture set went missing");
    for (name, src) in fixtures {
        let first = src.lines().next().unwrap_or_default();
        let want = first
            .strip_prefix("# expect-error:")
            .unwrap_or_else(|| panic!("{name}: first line must be `# expect-error: ...`"))
            .trim();
        match Scenario::parse(&src) {
            Ok(_) => panic!("{name}: expected rejection ({want:?}), but the spec parsed"),
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains(want),
                    "{name}: error {msg:?} does not contain {want:?}"
                );
            }
        }
    }
}

#[test]
fn committed_specs_parse_round_trip_and_match_their_file_names() {
    let specs = toml_files(&specs_dir(), "");
    assert!(
        specs.len() >= 5,
        "expected the five converted figure specs under specs/"
    );
    for (name, src) in specs {
        assert_round_trip(&name, &src);
        let spec = Scenario::parse(&src).unwrap();
        assert_eq!(spec.name, name, "spec name must match its file stem");
    }
}

/// The quick and full configurations of every committed spec expand to
/// plausible work queues (non-empty, full at least as large as quick),
/// and cell indices are dense.
#[test]
fn committed_specs_resolve_at_both_scales() {
    for (name, src) in toml_files(&specs_dir(), "") {
        let spec = Scenario::parse(&src).unwrap();
        let quick = spec.resolve(&hxserve::Overrides::default());
        let full = spec.resolve(&hxserve::Overrides {
            full: true,
            ..Default::default()
        });
        assert!(!quick.cells.is_empty(), "{name}: quick plan is empty");
        assert!(
            full.cells.len() >= quick.cells.len(),
            "{name}: full plan smaller than quick"
        );
        for (i, cell) in quick.cells.iter().enumerate() {
            assert_eq!(cell.index, i, "{name}: cell indices must be dense");
        }
    }
}
