//! Deterministic telemetry for the HammingMesh simulation stack.
//!
//! Three pillars, all driven by *simulated* time — no wall clock, no
//! ambient entropy, no external dependencies:
//!
//! - [`hist::HistogramU64`]: a log-bucketed (hdrhistogram-style, ~2
//!   significant digits) fixed-size histogram with O(1) record and
//!   exact-bucket percentiles, replacing sort-the-Vec percentile scans.
//! - [`registry::Registry`]: named counter/gauge/histogram handles
//!   registered once and updated through copyable ids, plus a sim-time
//!   [`registry::Sampler`] that snapshots selected gauges on a simulated
//!   period into a bounded ring.
//! - [`trace::TraceSink`]: structured spans and instant events serialized
//!   as Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!   A disabled sink records nothing and costs one branch per call site.
//!
//! The [`collect`] module is the process-global rendezvous: engines record
//! into cheap local sinks and submit under a deterministic *scope* label
//! (cell index, load label); artifact writers iterate the sorted scope map,
//! which makes `--metrics-out`/`--trace-out` files byte-identical at any
//! thread count by construction.

pub mod collect;
pub mod hist;
pub mod registry;
pub mod trace;

pub use collect::{scope, ScopeGuard};
pub use hist::HistogramU64;
pub use registry::{CounterId, GaugeId, HistId, Registry, Sample, Sampler};
pub use trace::{validate_chrome_trace, TraceEvent, TraceSink};
