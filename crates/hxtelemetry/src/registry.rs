//! Named metric handles: counters, gauges, and histograms registered once
//! and updated through copyable ids, plus a sim-time gauge sampler.
//!
//! The registry is deliberately a plain value type — engines own a local
//! `Registry`, update it lock-free on the hot path, and hand it to
//! [`crate::collect::submit`] when the run retires. Names are resolved to
//! ids exactly once at construction, so the per-event cost is an indexed
//! add. Everything is keyed on *simulated* time; there is no wall clock
//! anywhere in this module.

use crate::hist::HistogramU64;

/// Handle for a monotonically increasing counter.
#[derive(Clone, Copy, Debug)]
pub struct CounterId(usize);

/// Handle for a point-in-time signed gauge.
#[derive(Clone, Copy, Debug)]
pub struct GaugeId(usize);

/// Handle for a [`HistogramU64`].
#[derive(Clone, Copy, Debug)]
pub struct HistId(usize);

/// A bag of named metrics. Registration is idempotent per name.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    hists: Vec<(String, HistogramU64)>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a full-range histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistId {
        self.histogram_with_max(name, u64::MAX)
    }

    /// Register (or look up) a histogram that saturates at `max_value`.
    pub fn histogram_with_max(&mut self, name: &str, max_value: u64) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            return HistId(i);
        }
        self.hists
            .push((name.to_string(), HistogramU64::with_max(max_value)));
        HistId(self.hists.len() - 1)
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    #[inline]
    pub fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    #[inline]
    pub fn add(&mut self, id: GaugeId, delta: i64) {
        self.gauges[id.0].1 += delta;
    }

    #[inline]
    pub fn record(&mut self, id: HistId, value: u64) {
        self.hists[id.0].1.record(value);
    }

    /// Fold an externally maintained histogram into a registered one.
    pub fn merge_hist(&mut self, id: HistId, h: &HistogramU64) {
        self.hists[id.0].1.merge(h);
    }

    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].1
    }

    pub fn gauge_name(&self, id: GaugeId) -> &str {
        &self.gauges[id.0].0
    }

    pub fn hist(&self, id: HistId) -> &HistogramU64 {
        &self.hists[id.0].1
    }

    /// Counters as `(name, value)`, sorted by name.
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<_> = self
            .counters
            .iter()
            .map(|(n, c)| (n.as_str(), *c))
            .collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Gauges as `(name, value)`, sorted by name.
    pub fn gauges_sorted(&self) -> Vec<(&str, i64)> {
        let mut v: Vec<_> = self.gauges.iter().map(|(n, g)| (n.as_str(), *g)).collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Histograms as `(name, hist)`, sorted by name.
    pub fn hists_sorted(&self) -> Vec<(&str, &HistogramU64)> {
        let mut v: Vec<_> = self.hists.iter().map(|(n, h)| (n.as_str(), h)).collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Fold another registry into this one by name: counters add, gauges
    /// take the incoming value (last write wins), histograms merge.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            let id = self.counter(name);
            self.counters[id.0].1 += *v;
        }
        for (name, v) in &other.gauges {
            let id = self.gauge(name);
            self.gauges[id.0].1 = *v;
        }
        for (name, h) in &other.hists {
            if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
                self.hists[i].1.merge(h);
            } else {
                self.hists.push((name.clone(), h.clone()));
            }
        }
    }
}

/// One sampler snapshot: the simulated timestamp and the sampled gauge
/// values, in the order the sampler was configured with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    pub ts_ps: u64,
    pub values: Vec<i64>,
}

/// Snapshots selected gauges every `period_ps` of *simulated* time into a
/// bounded ring (oldest samples evicted first). Drive it from the event
/// loop with [`Sampler::advance`]; it never reads a clock of its own, so
/// it passes the D002 determinism rule by construction.
#[derive(Clone, Debug)]
pub struct Sampler {
    period_ps: u64,
    next_ps: u64,
    cap: usize,
    gauges: Vec<GaugeId>,
    gauge_names: Vec<String>,
    ring: std::collections::VecDeque<Sample>,
}

impl Sampler {
    /// A sampler over `gauges`, firing every `period_ps`, keeping the most
    /// recent `cap` samples. A zero period disables sampling entirely.
    pub fn new(reg: &Registry, period_ps: u64, cap: usize, gauges: Vec<GaugeId>) -> Self {
        let gauge_names = gauges
            .iter()
            .map(|&g| reg.gauge_name(g).to_string())
            .collect();
        Sampler {
            period_ps,
            next_ps: period_ps,
            cap,
            gauges,
            gauge_names,
            ring: std::collections::VecDeque::new(),
        }
    }

    /// Advance simulated time to `now_ps`, emitting one snapshot per
    /// period boundary crossed. Boundaries that would immediately be
    /// evicted from the ring are skipped, so a large time jump costs at
    /// most `cap` snapshots.
    pub fn advance(&mut self, now_ps: u64, reg: &Registry) {
        if self.period_ps == 0 || self.cap == 0 || now_ps < self.next_ps {
            return;
        }
        let crossed = (now_ps - self.next_ps) / self.period_ps + 1;
        let skip = crossed.saturating_sub(self.cap as u64);
        let mut ts = self.next_ps + skip * self.period_ps;
        for _ in 0..crossed - skip {
            if self.ring.len() == self.cap {
                self.ring.pop_front();
            }
            let values = self.gauges.iter().map(|&g| reg.gauge_value(g)).collect();
            self.ring.push_back(Sample { ts_ps: ts, values });
            ts += self.period_ps;
        }
        self.next_ps += crossed * self.period_ps;
    }

    /// Names of the sampled gauges, in column order.
    pub fn gauge_names(&self) -> &[String] {
        &self.gauge_names
    }

    /// Drain the ring, oldest first.
    pub fn take_samples(&mut self) -> Vec<Sample> {
        self.ring.drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut r = Registry::new();
        let c = r.counter("events");
        let g = r.gauge("depth");
        r.inc(c, 3);
        r.inc(c, 4);
        r.set(g, -2);
        r.add(g, 5);
        assert_eq!(r.counter_value(c), 7);
        assert_eq!(r.gauge_value(g), 3);
        // Registration is idempotent: same name, same slot.
        let c2 = r.counter("events");
        r.inc(c2, 1);
        assert_eq!(r.counter_value(c), 8);
    }

    #[test]
    fn merge_sums_counters_and_merges_hists() {
        let mut a = Registry::new();
        let ca = a.counter("n");
        let ha = a.histogram("lat");
        a.inc(ca, 2);
        a.record(ha, 10);
        let mut b = Registry::new();
        let cb = b.counter("n");
        let hb = b.histogram("lat");
        b.inc(cb, 5);
        b.record(hb, 40);
        a.merge(&b);
        assert_eq!(a.counter_value(ca), 7);
        assert_eq!(a.hist(ha).count(), 2);
        assert_eq!(a.hist(ha).max(), 40);
    }

    #[test]
    fn sampler_fires_on_period_boundaries_and_bounds_the_ring() {
        let mut r = Registry::new();
        let g = r.gauge("q");
        let mut s = Sampler::new(&r, 10, 3, vec![g]);
        r.set(g, 1);
        s.advance(25, &r); // boundaries at 10, 20
        r.set(g, 9);
        s.advance(95, &r); // boundaries at 30..=90, ring keeps last 3
        let rows = s.take_samples();
        assert_eq!(
            rows,
            vec![
                Sample {
                    ts_ps: 70,
                    values: vec![9]
                },
                Sample {
                    ts_ps: 80,
                    values: vec![9]
                },
                Sample {
                    ts_ps: 90,
                    values: vec![9]
                },
            ]
        );
        // Next boundary is 100, untouched by the drain.
        s.advance(100, &r);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sampler_with_zero_period_never_fires() {
        let mut r = Registry::new();
        let g = r.gauge("q");
        let mut s = Sampler::new(&r, 0, 8, vec![g]);
        s.advance(1_000_000, &r);
        assert!(s.is_empty());
    }
}
