//! Structured trace events serialized as Chrome trace-event JSON.
//!
//! Events carry *simulated* picosecond timestamps; the writer converts to
//! the microsecond `ts` unit the trace-event format specifies with exact
//! integer math (`ps / 1e6` with six fixed decimals), so output bytes are
//! a pure function of the recorded events. Load the resulting file in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use std::io::{self, Write};

/// Event phase, a subset of the trace-event `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// `ph:"i"` — a point-in-time instant event.
    Instant,
    /// `ph:"X"` — a complete span with a duration.
    Complete,
}

/// One recorded event. `args` values render as unsigned JSON integers.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: &'static str,
    pub cat: &'static str,
    pub ph: Phase,
    pub ts_ps: u64,
    pub dur_ps: u64,
    pub args: Vec<(&'static str, u64)>,
}

/// An append-only event buffer. A disabled sink records nothing — every
/// recording method is a load-compare-return, so instrumented hot paths
/// pay one predictable branch when tracing is off.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceSink {
    pub fn new(enabled: bool) -> Self {
        TraceSink {
            enabled,
            events: Vec::new(),
        }
    }

    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// True when this sink records. Guard arg construction with this at
    /// call sites where building the arg list itself has a cost.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an instant event at simulated time `ts_ps`.
    #[inline]
    pub fn instant(&mut self, name: &'static str, cat: &'static str, ts_ps: u64) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            name,
            cat,
            ph: Phase::Instant,
            ts_ps,
            dur_ps: 0,
            args: Vec::new(),
        });
    }

    /// Record an instant event with arguments.
    #[inline]
    pub fn instant_args(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ts_ps: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            name,
            cat,
            ph: Phase::Instant,
            ts_ps,
            dur_ps: 0,
            args,
        });
    }

    /// Record a complete span covering `[ts_ps, ts_ps + dur_ps]`.
    #[inline]
    pub fn span(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ts_ps: u64,
        dur_ps: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            name,
            cat,
            ph: Phase::Complete,
            ts_ps,
            dur_ps,
            args,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the sink, yielding the recorded events in order.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Picoseconds → trace-event microseconds, exactly: an integer part and
/// six fixed decimals, pure integer math.
fn ts_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

fn write_event<W: Write>(w: &mut W, ev: &TraceEvent, pid: usize) -> io::Result<()> {
    let ph = match ev.ph {
        Phase::Instant => "i",
        Phase::Complete => "X",
    };
    write!(
        w,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":0",
        escape_json(ev.name),
        escape_json(ev.cat),
        ph,
        ts_us(ev.ts_ps),
        pid
    )?;
    if ev.ph == Phase::Complete {
        write!(w, ",\"dur\":{}", ts_us(ev.dur_ps))?;
    }
    if ev.ph == Phase::Instant {
        // Thread-scoped instant marker (the renderer default).
        write!(w, ",\"s\":\"t\"")?;
    }
    if !ev.args.is_empty() {
        write!(w, ",\"args\":{{")?;
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "\"{}\":{}", escape_json(k), v)?;
        }
        write!(w, "}}")?;
    }
    write!(w, "}}")
}

/// Serialize scopes of events as one Chrome trace-event JSON document.
/// Each scope becomes a `pid` (in the given order) named via a
/// `process_name` metadata event, so Perfetto shows one track group per
/// scope. Output bytes are a pure function of the input.
pub fn write_chrome_trace<W: Write>(w: &mut W, scopes: &[(&str, &[TraceEvent])]) -> io::Result<()> {
    write!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    let mut first = true;
    for (pid, (label, _)) in scopes.iter().enumerate() {
        if !first {
            write!(w, ",")?;
        }
        first = false;
        write!(
            w,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            escape_json(label)
        )?;
    }
    for (pid, (_, events)) in scopes.iter().enumerate() {
        for ev in *events {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            writeln!(w)?;
            write_event(w, ev, pid)?;
        }
    }
    writeln!(w, "]}}")
}

// ---------------------------------------------------------------------------
// Minimal trace-event schema validator (used by tests and the determinism
// harness). Hand-rolled so the workspace stays dependency-free.
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "truncated escape".to_string())?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc as char),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            self.i += 4;
                            out.push('?');
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.i;
        while let Some(&c) = self.b.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map_err(|e| format!("bad number '{text}': {e}"))
    }

    /// Parse any JSON value.
    fn parse_value(&mut self) -> Result<Value, String> {
        match self
            .peek()
            .ok_or_else(|| "unexpected end of input".to_string())?
        {
            b'{' => {
                self.eat(b'{')?;
                let mut out = Vec::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                } else {
                    loop {
                        let key = self.parse_string()?;
                        self.eat(b':')?;
                        let val = self.parse_value()?;
                        out.push((key, val));
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                break;
                            }
                            _ => return Err(format!("bad object at byte {}", self.i)),
                        }
                    }
                }
                Ok(Value::Object(out))
            }
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                } else {
                    loop {
                        items.push(self.parse_value()?);
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                break;
                            }
                            _ => return Err(format!("bad array at byte {}", self.i)),
                        }
                    }
                }
                Ok(Value::Array(items))
            }
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b't' | b'f' | b'n' => {
                for lit in ["true", "false", "null"] {
                    if self.b[self.i..].starts_with(lit.as_bytes()) {
                        self.i += lit.len();
                        return Ok(Value::Other);
                    }
                }
                Err(format!("bad literal at byte {}", self.i))
            }
            _ => {
                self.parse_number()?;
                Ok(Value::Num)
            }
        }
    }
}

/// Just enough JSON to schema-check a trace file.
#[derive(Clone, Debug)]
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Str(String),
    Num,
    Other,
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Validate that `text` parses as JSON and conforms to the Chrome
/// trace-event container format: a root object with a `traceEvents` array
/// whose elements each carry a string `name`, a string `ph`, and numeric
/// `ts`/`pid`. Returns the number of events on success.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let mut cur = Cursor {
        b: text.as_bytes(),
        i: 0,
    };
    let root = cur.parse_value()?;
    cur.skip_ws();
    if cur.i != cur.b.len() {
        return Err(format!("trailing bytes after JSON document at {}", cur.i));
    }
    let events = match root.get("traceEvents") {
        Some(Value::Array(items)) => items,
        Some(_) => return Err("traceEvents is not an array".into()),
        None => return Err("missing traceEvents key".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        if !matches!(ev, Value::Object(_)) {
            return Err(format!("event {i} is not an object"));
        }
        match ev.get("name") {
            Some(Value::Str(_)) => {}
            _ => return Err(format!("event {i}: missing string field 'name'")),
        }
        let ph = match ev.get("ph") {
            Some(Value::Str(s)) if !s.is_empty() => s.clone(),
            _ => return Err(format!("event {i}: missing string field 'ph'")),
        };
        for field in ["ts", "pid"] {
            match ev.get(field) {
                Some(Value::Num) => {}
                _ => return Err(format!("event {i}: missing numeric field '{field}'")),
            }
        }
        if ph == "X" && !matches!(ev.get("dur"), Some(Value::Num)) {
            return Err(format!("event {i}: complete event without numeric 'dur'"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = TraceSink::disabled();
        s.instant("flow_start", "flow", 100);
        s.span("cell", "exec", 0, 50, vec![("n", 1)]);
        assert!(s.is_empty());
    }

    #[test]
    fn emitted_trace_passes_the_schema_check() {
        let mut s = TraceSink::new(true);
        s.instant("flow_start", "flow", 1_234_567);
        s.instant_args("rate_epoch", "flow", 2_000_000, vec![("touched_flows", 7)]);
        s.span("cell_start", "exec", 0, 5_000_000, vec![("index", 3)]);
        let events = s.into_events();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[("main", &events)]).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        // 1 process_name metadata event + 3 recorded events.
        assert_eq!(validate_chrome_trace(&text), Ok(4), "trace was:\n{text}");
        assert!(
            text.contains("\"ts\":1.234567"),
            "exact µs conversion:\n{text}"
        );
        assert!(text.contains("\"touched_flows\":7"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("{}").is_err(), "missing traceEvents");
        assert!(
            validate_chrome_trace("{\"traceEvents\":1}").is_err(),
            "not an array"
        );
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\",\"ts\":0,\"pid\":0}]}").is_err(),
            "missing name"
        );
        assert!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":0,\"pid\":0}]"
            )
            .is_err(),
            "truncated document"
        );
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn scopes_map_to_stable_pids() {
        let mut a = TraceSink::new(true);
        a.instant("job_queued", "cluster", 10);
        let mut b = TraceSink::new(true);
        b.instant("job_placed", "cluster", 20);
        let (ea, eb) = (a.into_events(), b.into_events());
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[("load/heavy", &ea), ("load/light", &eb)]).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains("\"args\":{\"name\":\"load/heavy\"}"));
        assert!(text.contains(
            "\"name\":\"job_placed\",\"cat\":\"cluster\",\"ph\":\"i\",\"ts\":0.000020,\"pid\":1"
        ));
    }
}
