//! Log-bucketed streaming histogram over `u64` values.
//!
//! Layout (hdrhistogram-style, ~2 significant digits): values below 128
//! get a unit-width bucket each (so small values are *exact*); every
//! higher power-of-two range `[2^e, 2^(e+1))` is split into 64 equal
//! sub-buckets, bounding the relative quantization error by 1/64 ≈ 1.6%.
//! The bucket array covers the full `u64` range in 3776 fixed slots
//! (~30 KB), so `record` is a single index increment — O(1), no
//! allocation, no sorting, ever.

/// Unit-width buckets for values `0..UNIT` (exact representation).
const UNIT: usize = 128;
/// Sub-buckets per power-of-two segment.
const SUB: usize = 64;
/// Segments for exponents 7..=63 (values `128..=u64::MAX`).
const SEGS: usize = 57;
/// Total bucket count.
const SLOTS: usize = UNIT + SEGS * SUB;

/// Streaming histogram with O(1) record and exact-bucket percentiles.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramU64 {
    counts: Box<[u64]>,
    count: u64,
    sum: u128,
    /// Record-time clamp: values above this land in its bucket (saturation).
    max_value: u64,
    min_seen: u64,
    max_seen: u64,
}

impl Default for HistogramU64 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HistogramU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramU64")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < UNIT as u64 {
        v as usize
    } else {
        // Highest set bit e is in 7..=63; the 6 bits below it pick the
        // sub-bucket within segment e.
        let e = 63 - v.leading_zeros();
        UNIT + (e as usize - 7) * SUB + ((v >> (e - 6)) & 63) as usize
    }
}

/// Inclusive `[lower, upper]` value range covered by bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < UNIT {
        (idx as u64, idx as u64)
    } else {
        let seg = (idx - UNIT) / SUB;
        let off = ((idx - UNIT) % SUB) as u64;
        let e = seg as u32 + 7;
        let width = 1u64 << (e - 6);
        let lower = (1u64 << e) + off * width;
        (lower, lower + (width - 1))
    }
}

impl HistogramU64 {
    /// Histogram covering the full `u64` range.
    pub fn new() -> Self {
        Self::with_max(u64::MAX)
    }

    /// Histogram that clamps recorded values to `max_value`; anything
    /// larger saturates into `max_value`'s bucket.
    pub fn with_max(max_value: u64) -> Self {
        HistogramU64 {
            counts: vec![0; SLOTS].into_boxed_slice(),
            count: 0,
            sum: 0,
            max_value,
            min_seen: u64::MAX,
            max_seen: 0,
        }
    }

    /// Record one observation. O(1): clamp, index, increment.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let v = v.min(self.max_value);
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min_seen = self.min_seen.min(v);
        self.max_seen = self.max_seen.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded (post-clamp) values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_seen
        }
    }

    /// Largest recorded value — exact, not a bucket bound.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 1]`. Returns the upper bound
    /// of the bucket holding the rank (exact for values below 128),
    /// clamped to the true observed maximum. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * p).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(idx).1.min(self.max_seen);
            }
        }
        self.max_seen
    }

    /// Merge another histogram's observations into this one (elementwise
    /// count add — associative and commutative). The tighter of the two
    /// saturation bounds wins for future records.
    pub fn merge(&mut self, other: &HistogramU64) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max_value = self.max_value.min(other.max_value);
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Non-empty buckets as `(lower, upper, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_128_and_log_above() {
        // Unit range: every value is its own bucket.
        for v in [0u64, 1, 2, 77, 127] {
            let idx = bucket_index(v);
            assert_eq!(bucket_bounds(idx), (v, v));
        }
        // Segment starts: 2^e must open a fresh sub-bucket at offset 0.
        for e in 7..=63u32 {
            let v = 1u64 << e;
            let (lo, _hi) = bucket_bounds(bucket_index(v));
            assert_eq!(lo, v, "2^{e} must be a bucket lower bound");
        }
        // Relative width <= 1/64 within every segment.
        for v in [128u64, 1000, 123_456, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
            assert!(
                hi - lo <= lo / 64,
                "bucket [{lo}, {hi}] wider than 1/64 relative"
            );
        }
        // Buckets tile the u64 range with no gaps or overlaps.
        let mut expect_lo = 0u64;
        for idx in 0..SLOTS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expect_lo, "gap before bucket {idx}");
            if idx + 1 == SLOTS {
                assert_eq!(hi, u64::MAX);
                break;
            }
            expect_lo = hi + 1;
        }
    }

    #[test]
    fn small_values_report_exact_percentiles() {
        let mut h = HistogramU64::new();
        for v in [10u64, 10, 10, 40, 40] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 10);
        assert_eq!(h.percentile(1.0), 40);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut h = HistogramU64::new();
        let mut v = 3u64;
        for _ in 0..10_000 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(v >> 24);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = h.percentile(i as f64 / 100.0);
            assert!(q >= prev, "p{} = {q} < p{} = {prev}", i, i - 1);
            prev = q;
        }
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn percentile_error_is_within_two_significant_digits() {
        let mut h = HistogramU64::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, exact) in [(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000)] {
            let got = h.percentile(p);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(
                err <= 1.0 / 64.0,
                "p{p}: got {got}, exact {exact}, err {err}"
            );
        }
    }

    #[test]
    fn saturation_clamps_at_the_max_bound() {
        let mut h = HistogramU64::with_max(1_000_000);
        h.record(5);
        h.record(u64::MAX);
        h.record(2_000_000);
        assert_eq!(h.count(), 3);
        assert_eq!(
            h.max(),
            1_000_000,
            "over-bound records saturate to the bound"
        );
        assert_eq!(h.percentile(1.0), 1_000_000);
        assert_eq!(h.sum(), 5 + 2 * 1_000_000u128);
    }

    #[test]
    fn merge_is_associative_and_matches_single_stream() {
        let streams: [&[u64]; 3] = [
            &[1, 5, 200, 4096],
            &[0, 0, 7, 1 << 33],
            &[127, 128, 129, u64::MAX],
        ];
        let mut parts: Vec<HistogramU64> = streams
            .iter()
            .map(|s| {
                let mut h = HistogramU64::new();
                for &v in *s {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut whole = HistogramU64::new();
        for s in streams {
            for &v in s {
                whole.record(v);
            }
        }
        // (a ⊕ b) ⊕ c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts.remove(0);
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, whole, "merge must equal the single-stream histogram");
    }
}
