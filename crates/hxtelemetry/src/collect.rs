//! Process-global, scope-keyed telemetry collection.
//!
//! Engines and drivers never share mutable telemetry state on the hot
//! path: each deterministic unit of work (a scenario cell, a sweep load
//! point, a whole figure run) records into *local* [`Registry`] /
//! [`TraceSink`] values and [`submit`]s them once when the unit retires,
//! under the scope label installed by [`scope`]. Because scope labels are
//! derived from stable identities (cell index, load name) — never from
//! thread ids or arrival order — and the artifact writers iterate the
//! scope map in sorted order, `--metrics-out` / `--trace-out` files are
//! byte-identical at any `RAYON_NUM_THREADS` by construction.
//!
//! Both collection channels are off by default; a disabled channel makes
//! [`submit`] a no-op and lets instrumented code skip recording entirely
//! (engines cache [`trace_enabled`] / [`metrics_enabled`] into local
//! flags at construction, so the steady-state disabled cost is one
//! branch per event site).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::registry::{Registry, Sample};
use crate::trace::{escape_json, write_chrome_trace, TraceEvent, TraceSink};

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static METRICS_ON: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<BTreeMap<String, ScopeData>> = Mutex::new(BTreeMap::new());

thread_local! {
    static SCOPE: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Everything submitted under one scope label, merged across submissions.
#[derive(Debug, Default)]
pub struct ScopeData {
    pub registry: Registry,
    pub events: Vec<TraceEvent>,
    pub sampler_gauges: Vec<String>,
    pub samples: Vec<Sample>,
}

/// Enable/disable trace collection process-wide.
pub fn set_trace_enabled(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Enable/disable metrics collection process-wide.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ON.store(on, Ordering::Relaxed);
}

#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Installs `label` as the current thread's telemetry scope until the
/// guard drops. Scopes nest; submissions land under the innermost label.
#[must_use = "the scope ends when the guard drops"]
pub struct ScopeGuard(());

/// Enter a telemetry scope. Labels must be a deterministic function of
/// the work unit (e.g. `cell/0007`, `load/heavy`) — never of scheduling.
pub fn scope(label: &str) -> ScopeGuard {
    SCOPE.with(|s| s.borrow_mut().push(label.to_string()));
    ScopeGuard(())
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

fn current_scope() -> String {
    SCOPE
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_else(|| "main".to_string())
}

fn lock_store() -> std::sync::MutexGuard<'static, BTreeMap<String, ScopeData>> {
    // A poisoned store just means another thread panicked mid-submit;
    // telemetry state is still structurally sound, so keep going.
    STORE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Merge a finished unit's registry and trace events into the global
/// store under the current scope. No-op when both channels are disabled.
pub fn submit(registry: Registry, sink: TraceSink) {
    submit_with_samples(registry, sink, Vec::new(), Vec::new());
}

/// [`submit`], plus a sampler's gauge columns and drained ring.
pub fn submit_with_samples(
    registry: Registry,
    sink: TraceSink,
    sampler_gauges: Vec<String>,
    samples: Vec<Sample>,
) {
    if !trace_enabled() && !metrics_enabled() {
        return;
    }
    let key = current_scope();
    let mut store = lock_store();
    let data = store.entry(key).or_default();
    if metrics_enabled() {
        data.registry.merge(&registry);
        if !samples.is_empty() {
            data.sampler_gauges = sampler_gauges;
            data.samples.extend(samples);
        }
    }
    if trace_enabled() {
        data.events.extend(sink.into_events());
    }
}

/// Clear all collected state (tests and back-to-back in-process runs).
pub fn reset() {
    lock_store().clear();
}

/// Total of every counter named `name`, summed across scopes.
pub fn counter_total(name: &str) -> u64 {
    let store = lock_store();
    store
        .values()
        .map(|d| {
            d.registry
                .counters_sorted()
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, v)| *v)
        })
        .sum()
}

/// All counters summed across scopes, as `(name, total)` sorted by name.
pub fn counter_totals() -> Vec<(String, u64)> {
    let store = lock_store();
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for data in store.values() {
        for (name, v) in data.registry.counters_sorted() {
            *totals.entry(name.to_string()).or_insert(0) += v;
        }
    }
    totals.into_iter().collect()
}

/// Render all collected metrics as a deterministic JSON document:
/// scopes sorted by label; counters/gauges/histograms sorted by name;
/// histogram summaries from the streaming buckets; sampler rows in ring
/// order. Bytes depend only on submitted data.
pub fn render_metrics() -> String {
    let store = lock_store();
    let mut out = String::from("{\"scopes\":{");
    for (si, (label, data)) in store.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n\"{}\":{{", escape_json(label)));
        out.push_str("\"counters\":{");
        for (i, (name, v)) in data.registry.counters_sorted().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in data.registry.gauges_sorted().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in data.registry.hists_sorted().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                escape_json(name),
                h.count(),
                h.sum(),
                h.min(),
                h.percentile(0.5),
                h.percentile(0.9),
                h.percentile(0.99),
                h.max()
            ));
        }
        out.push_str("},\"samples\":{\"gauges\":[");
        for (i, g) in data.sampler_gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape_json(g)));
        }
        out.push_str("],\"rows\":[");
        for (i, s) in data.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&s.ts_ps.to_string());
            for v in &s.values {
                out.push_str(&format!(",{v}"));
            }
            out.push(']');
        }
        out.push_str("]}}");
    }
    out.push_str("\n}}\n");
    out
}

/// Render all collected trace events as one Chrome trace-event JSON
/// document (scopes sorted by label → stable pids).
pub fn render_trace() -> io::Result<String> {
    let store = lock_store();
    let scopes: Vec<(&str, &[TraceEvent])> = store
        .iter()
        .map(|(label, data)| (label.as_str(), data.events.as_slice()))
        .collect();
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, &scopes)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Write the metrics document to `path`.
pub fn write_metrics_file(path: &Path) -> io::Result<()> {
    let doc = render_metrics();
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.as_bytes())
}

/// Write the Chrome trace document to `path`.
pub fn write_trace_file(path: &Path) -> io::Result<()> {
    let doc = render_trace()?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_chrome_trace;
    use std::sync::{Mutex as TestMutex, OnceLock};

    /// The store and enable flags are process-global; serialize the tests
    /// that touch them so `cargo test`'s parallel runner can't interleave.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<TestMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn one_unit(scope_label: &str, latency: u64) {
        let _s = scope(scope_label);
        let mut reg = Registry::new();
        let c = reg.counter("flows_started");
        let h = reg.histogram("msg_latency_ps");
        reg.inc(c, 1);
        reg.record(h, latency);
        let mut sink = TraceSink::new(trace_enabled());
        sink.instant("flow_start", "flow", latency);
        submit(reg, sink);
    }

    #[test]
    fn disabled_channels_drop_submissions() {
        let _g = guard();
        set_trace_enabled(false);
        set_metrics_enabled(false);
        reset();
        one_unit("cell/0000", 10);
        assert_eq!(render_metrics(), "{\"scopes\":{\n}}\n");
    }

    #[test]
    fn artifacts_are_invariant_to_submission_order() {
        let _g = guard();
        set_trace_enabled(true);
        set_metrics_enabled(true);
        reset();
        one_unit("cell/0001", 200);
        one_unit("cell/0000", 100);
        let forward = (render_metrics(), render_trace().expect("trace"));
        reset();
        one_unit("cell/0000", 100);
        one_unit("cell/0001", 200);
        let reverse = (render_metrics(), render_trace().expect("trace"));
        assert_eq!(
            forward, reverse,
            "scope-keyed artifacts must not depend on order"
        );
        assert!(validate_chrome_trace(&forward.1).is_ok());
        set_trace_enabled(false);
        set_metrics_enabled(false);
        reset();
    }

    #[test]
    fn counter_totals_sum_across_scopes() {
        let _g = guard();
        set_trace_enabled(false);
        set_metrics_enabled(true);
        reset();
        one_unit("cell/0000", 10);
        one_unit("cell/0001", 20);
        assert_eq!(counter_total("flows_started"), 2);
        assert_eq!(counter_totals(), vec![("flows_started".to_string(), 2)]);
        set_metrics_enabled(false);
        reset();
    }

    #[test]
    fn scopes_nest_and_restore() {
        let _g = guard();
        assert_eq!(current_scope(), "main");
        {
            let _a = scope("outer");
            assert_eq!(current_scope(), "outer");
            {
                let _b = scope("inner");
                assert_eq!(current_scope(), "inner");
            }
            assert_eq!(current_scope(), "outer");
        }
        assert_eq!(current_scope(), "main");
    }
}
