//! # hxmodels — DNN training workload models (§V-B)
//!
//! The paper evaluates HammingMesh on five representative models:
//! ResNet-152, CosmoFlow, GPT-3, GPT-3 with Mixture-of-Experts, and DLRM.
//! Each is described by the paper's measured A100 compute times and its
//! communication volumes along the three parallelism axes (§V-B1):
//!
//! * data dimension:     `VD = W * NP / (O * P)` reduced once per iteration,
//! * pipeline dimension: `VP = M * W * NA / (D * P * O)` per neighbor hop,
//! * operator dimension: `VO = W * NO` per operator invocation.
//!
//! Three consumers:
//!
//! * [`workloads`] — the model definitions with the paper's constants,
//! * [`schedule`] — builds a one-iteration [`hxcollect::Schedule`]
//!   (compute + comm DAG) for simulation on any topology, at full or
//!   reduced scale,
//! * [`analytic`] — α-β iteration-time estimates and the Fig. 15 relative
//!   cost-savings computation (network cost ratio x communication overhead
//!   ratio).

pub mod analytic;
pub mod schedule;
pub mod workloads;

pub use analytic::{fig15_savings, IterationEstimate, TopologyPerf};
pub use workloads::{DnnWorkload, Parallelism};

/// FP32 word size (§V-B: "trained in FP32").
pub const WORD: u64 = 4;
