//! α-β iteration-time estimates and the Fig. 15 cost-savings computation.
//!
//! The paper obtains iteration times from full SST simulations; we estimate
//! them with a per-phase α-β model whose two topology-dependent inputs are
//! the Table II measured bandwidth fractions (allreduce share of peak,
//! alltoall share of injection) and a latency term derived from the
//! topology diameter. The *shape* — which topology wins per workload and
//! roughly by how much — is what Fig. 15 reports; EXPERIMENTS.md records
//! our numbers against the paper's.

use crate::workloads::{CommPhase, DnnWorkload};

/// Per-topology performance inputs for the analytic model.
#[derive(Clone, Debug)]
pub struct TopologyPerf {
    pub name: &'static str,
    /// Network cost in M$ (Table II).
    pub cost_musd: f64,
    /// Allreduce bandwidth as share of peak (Table II "ared. BW").
    pub allreduce_frac: f64,
    /// Global alltoall bandwidth as share of injection (Table II "glob.").
    pub alltoall_frac: f64,
    /// Cable diameter (Table II).
    pub diameter: u32,
    /// Injection bandwidth per accelerator in bytes/ps (4 x 400 Gb/s).
    pub inj_bytes_per_ps: f64,
}

impl TopologyPerf {
    /// Per-message latency: ~1 µs software/NIC overhead plus per-hop
    /// switch+cable latency over the diameter.
    pub fn alpha_ps(&self) -> f64 {
        1_000_000.0 + self.diameter as f64 * (40_000.0 + 20_000.0) * 2.0
    }

    /// The small-cluster Table II rows with their measured bandwidth
    /// fractions, in row order.
    pub fn table2_small() -> Vec<TopologyPerf> {
        let inj = 4.0 / 20.0; // 4 ports x 0.05 B/ps
        let mk = |name, cost, ared: f64, glob: f64, diam| TopologyPerf {
            name,
            cost_musd: cost,
            allreduce_frac: ared / 100.0,
            alltoall_frac: glob / 100.0,
            diameter: diam,
            inj_bytes_per_ps: inj,
        };
        vec![
            mk("nonblocking fat tree", 25.3, 98.9, 99.9, 4),
            mk("50% tapered fat tree", 17.6, 98.9, 51.2, 4),
            mk("75% tapered fat tree", 13.2, 98.9, 25.7, 4),
            mk("Dragonfly", 27.9, 98.8, 62.9, 3),
            mk("2D HyperX", 10.8, 98.1, 91.6, 4),
            mk("Hx2Mesh", 5.4, 98.3, 25.4, 4),
            mk("Hx4Mesh", 2.7, 98.4, 11.3, 8),
            mk("2D torus", 2.5, 98.1, 2.0, 32),
        ]
    }

    /// The large-cluster Table II rows.
    pub fn table2_large() -> Vec<TopologyPerf> {
        let inj = 4.0 / 20.0;
        let mk = |name, cost, ared: f64, glob: f64, diam| TopologyPerf {
            name,
            cost_musd: cost,
            allreduce_frac: ared / 100.0,
            alltoall_frac: glob / 100.0,
            diameter: diam,
            inj_bytes_per_ps: inj,
        };
        vec![
            mk("nonblocking fat tree", 680.0, 99.8, 98.9, 6),
            mk("50% tapered fat tree", 419.0, 99.8, 47.6, 6),
            mk("75% tapered fat tree", 271.0, 99.8, 24.0, 6),
            mk("Dragonfly", 429.0, 98.6, 71.5, 5),
            mk("2D HyperX", 448.0, 91.4, 95.8, 8),
            mk("Hx2Mesh", 224.0, 92.3, 25.0, 8),
            mk("Hx4Mesh", 43.3, 92.2, 10.5, 8),
            mk("2D torus", 39.5, 91.4, 1.1, 128),
        ]
    }
}

/// Result of the iteration-time model.
#[derive(Clone, Copy, Debug)]
pub struct IterationEstimate {
    pub compute_ps: u64,
    /// Total communication time if fully serialized.
    pub comm_ps: u64,
    /// Communication left exposed after overlap.
    pub exposed_ps: u64,
    /// compute + exposed.
    pub iteration_ps: u64,
}

impl IterationEstimate {
    pub fn iteration_ms(&self) -> f64 {
        self.iteration_ps as f64 / 1e9
    }

    pub fn overhead_fraction(&self) -> f64 {
        self.exposed_ps as f64 / self.compute_ps as f64
    }
}

/// Number of pipeline microbatch slots assumed per iteration.
const MICROBATCHES: u64 = 8;

/// Estimate one training iteration of `w` on topology `perf`.
pub fn estimate_iteration(w: &DnnWorkload, perf: &TopologyPerf) -> IterationEstimate {
    let alpha = perf.alpha_ps();
    let inj = perf.inj_bytes_per_ps;
    let ar_bw = perf.allreduce_frac * inj / 2.0; // achievable allreduce bytes/ps
    let port_bw = inj / 4.0;
    let p = w.parallelism.p as u64;
    // Serialized pipeline depth: fill + drain.
    let chain = if p > 1 { p + MICROBATCHES } else { 1 };

    let mut comm = 0.0f64;
    for phase in &w.phases {
        comm += match *phase {
            CommPhase::DataAllreduce { bytes, chunks } => {
                // Two bidirectional rings across D, chunked for overlap.
                bytes as f64 / ar_bw + 2.0 * w.parallelism.d as f64 * alpha / chunks as f64
            }
            CommPhase::PipelineSendRecv { bytes, steps } => {
                // Per-stage handoff on one port, serialized over the chain.
                let per_step = alpha + bytes as f64 / port_bw;
                per_step * (steps as u64 + chain) as f64
            }
            CommPhase::OperatorAllreduce { bytes, count } => {
                // `count` per-stage reductions over O, on the pipeline
                // critical path when P > 1.
                let o = w.parallelism.o.max(2) as f64;
                let per_op = 2.0 * o * alpha + (bytes / MICROBATCHES) as f64 / ar_bw;
                per_op * count as f64 * chain as f64
            }
            CommPhase::OperatorAlltoall { bytes, count } => {
                // Group-local alltoall; groups are small, so even
                // low-global-bandwidth topologies retain a reasonable
                // effective fraction (floor 0.10).
                let frac = perf.alltoall_frac.max(0.10);
                let group = 16.0f64.min(w.parallelism.total() as f64);
                count as f64 * (bytes as f64 * (group - 1.0) / (frac * inj) + alpha)
            }
            CommPhase::HaloExchange { bytes, count } => {
                count as f64 * (alpha + bytes as f64 / port_bw)
            }
        };
    }
    let comm_ps = comm as u64;
    let exposed = (comm * (1.0 - w.overlap)) as u64;
    IterationEstimate {
        compute_ps: w.compute_ps,
        comm_ps,
        exposed_ps: exposed,
        iteration_ps: w.compute_ps + exposed,
    }
}

/// Fig. 15: relative cost saving of an HxMesh versus another topology for
/// one workload — "the ratio of the network costs times the inverse of the
/// ratio of communication overheads" (§V-B5).
pub fn fig15_savings(w: &DnnWorkload, other: &TopologyPerf, hx: &TopologyPerf) -> f64 {
    let e_other = estimate_iteration(w, other);
    let e_hx = estimate_iteration(w, hx);
    let cost_ratio = other.cost_musd / hx.cost_musd;
    // Overhead floor avoids 0/0 for fully-overlapped workloads.
    let o_other = e_other.exposed_ps.max(1) as f64;
    let o_hx = e_hx.exposed_ps.max(1) as f64;
    cost_ratio * (o_other / o_hx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(name: &str) -> TopologyPerf {
        TopologyPerf::table2_small()
            .into_iter()
            .find(|t| t.name == name)
            .unwrap()
    }

    #[test]
    fn resnet_overhead_is_small_everywhere() {
        // §V-B2: "less than 2.5% communication overhead in the worst case".
        let w = DnnWorkload::resnet152();
        for t in TopologyPerf::table2_small() {
            let e = estimate_iteration(&w, &t);
            assert!(
                e.overhead_fraction() < 0.035,
                "{}: overhead {:.3}",
                t.name,
                e.overhead_fraction()
            );
        }
    }

    #[test]
    fn gpt3_topology_ordering_matches_paper() {
        // §V-B5: fat tree < Hx2Mesh < Hx4Mesh < torus.
        let w = DnnWorkload::gpt3();
        let ft = estimate_iteration(&w, &small("nonblocking fat tree")).iteration_ps;
        let hx2 = estimate_iteration(&w, &small("Hx2Mesh")).iteration_ps;
        let hx4 = estimate_iteration(&w, &small("Hx4Mesh")).iteration_ps;
        let torus = estimate_iteration(&w, &small("2D torus")).iteration_ps;
        assert!(ft <= hx2, "ft {ft} vs hx2 {hx2}");
        assert!(hx2 < hx4, "hx2 {hx2} vs hx4 {hx4}");
        assert!(hx4 < torus, "hx4 {hx4} vs torus {torus}");
    }

    #[test]
    fn fig15_hx_wins_on_cost_for_bandwidth_bound_models() {
        // Fig. 15: ResNet savings of Hx2Mesh vs nonblocking FT ~3.7x; at
        // minimum the saving must be well above 1 and below the raw cost
        // ratio (4.7x).
        let w = DnnWorkload::resnet152();
        let s = fig15_savings(&w, &small("nonblocking fat tree"), &small("Hx2Mesh"));
        assert!(s > 2.0 && s < 5.5, "ResNet Hx2 saving {s:.2}");
        // Hx4Mesh saves more than Hx2Mesh against the same baseline.
        let s4 = fig15_savings(&w, &small("nonblocking fat tree"), &small("Hx4Mesh"));
        assert!(s4 > s, "Hx4 {s4:.2} vs Hx2 {s:.2}");
    }

    #[test]
    fn torus_is_cheaper_but_slower_tradeoff_shows() {
        // Fig. 15 bottom-right: the torus can be cheaper than Hx2Mesh
        // (saving < 1 for some models) yet loses on communication-heavy
        // GPT-3 (§V-B5 conclusion).
        let gpt = DnnWorkload::gpt3();
        let e_torus = estimate_iteration(&gpt, &small("2D torus"));
        let e_hx2 = estimate_iteration(&gpt, &small("Hx2Mesh"));
        assert!(e_torus.exposed_ps > e_hx2.exposed_ps);
    }

    #[test]
    fn estimates_scale_with_bandwidth_fraction() {
        let w = DnnWorkload::resnet152();
        let mut fast = small("nonblocking fat tree");
        let mut slow = fast.clone();
        slow.allreduce_frac = 0.5;
        let ef = estimate_iteration(&w, &fast);
        let es = estimate_iteration(&w, &slow);
        assert!(es.comm_ps > ef.comm_ps);
        fast.alltoall_frac = 0.0; // unused by ResNet
        let ef2 = estimate_iteration(&w, &fast);
        assert_eq!(ef.comm_ps, ef2.comm_ps);
    }
}
