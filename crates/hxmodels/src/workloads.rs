//! The five evaluation workloads with the paper's measured constants.

use crate::WORD;

/// Degrees of the three parallelism axes (§II-D): a job uses `d*p*o`
/// accelerators with logical address (1..D, 1..P, 1..O).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    pub d: usize,
    pub p: usize,
    pub o: usize,
}

impl Parallelism {
    pub fn total(&self) -> usize {
        self.d * self.p * self.o
    }
}

/// Communication phases a workload performs each iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CommPhase {
    /// Gradient allreduce over the data dimension (`groups` independent
    /// chunked nonblocking allreduces of `bytes` each, §V-B2).
    DataAllreduce { bytes: u64, chunks: u32 },
    /// Pipeline neighbor send/recv of `bytes` per microbatch step,
    /// `steps` times (forward + backward).
    PipelineSendRecv { bytes: u64, steps: u32 },
    /// Operator-dimension allreduce of `bytes`, `count` times per
    /// iteration (Megatron-style MHA/FF reductions).
    OperatorAllreduce { bytes: u64, count: u32 },
    /// Operator-dimension alltoall of `bytes` per peer, `count` times
    /// (MoE expert routing, DLRM embedding exchange).
    OperatorAlltoall { bytes: u64, count: u32 },
    /// Nearest-neighbor halo exchange of `bytes`, `count` times
    /// (CosmoFlow convolutions).
    HaloExchange { bytes: u64, count: u32 },
}

/// A training workload: the paper's measured compute time plus its
/// communication phases.
#[derive(Clone, Debug)]
pub struct DnnWorkload {
    pub name: &'static str,
    pub parallelism: Parallelism,
    /// Compute time of one iteration on A100s (ps).
    pub compute_ps: u64,
    pub phases: Vec<CommPhase>,
    /// Fraction of communication the paper finds overlappable with
    /// compute for this model (ResNet: nearly all; GPT-3 pipeline: little).
    pub overlap: f64,
    /// Iteration times (ms) the paper reports, for EXPERIMENTS.md
    /// comparison: (nonblocking FT, 2D torus, Hx2Mesh, Hx4Mesh).
    pub paper_iteration_ms: Option<(f64, f64, f64, f64)>,
}

impl DnnWorkload {
    /// ResNet-152 (§V-B2): pure data parallelism on 1,024 accelerators,
    /// 60.2 M parameters in 10 gradient chunks, 108 ms/iteration.
    pub fn resnet152() -> Self {
        let np: u64 = 60_200_000;
        let par = Parallelism {
            d: 1024,
            p: 1,
            o: 1,
        };
        Self {
            name: "ResNet-152",
            parallelism: par,
            compute_ps: ms_to_ps(108.0),
            phases: vec![CommPhase::DataAllreduce {
                bytes: WORD * np / (par.o as u64 * par.p as u64),
                chunks: 10,
            }],
            overlap: 1.0,
            paper_iteration_ms: Some((109.7, 110.1, 110.1, 110.1)),
        }
    }

    /// CosmoFlow (§V-B3): D=256, O=4, 8.9 M parameters, 44.3 ms compute;
    /// halo exchanges and allgather/reduce-scatter within the operator
    /// dimension, gradient allreduce over data.
    pub fn cosmoflow() -> Self {
        let np: u64 = 8_900_000;
        let par = Parallelism { d: 256, p: 1, o: 4 };
        // One 128^3 x 4 sample is 8 MiB FP32; halo regions are a fraction
        // of the local 32-sample batch per conv layer (7 conv layers).
        let halo = WORD * 128 * 128 * 4 * 8; // ~1 MiB halo slabs
        Self {
            name: "CosmoFlow",
            parallelism: par,
            compute_ps: ms_to_ps(44.3),
            phases: vec![
                CommPhase::HaloExchange {
                    bytes: halo,
                    count: 2 * 7,
                },
                CommPhase::DataAllreduce {
                    bytes: WORD * np / par.o as u64,
                    chunks: 4,
                },
                CommPhase::OperatorAllreduce {
                    bytes: WORD * np / par.o as u64,
                    count: 2,
                },
            ],
            overlap: 0.95,
            paper_iteration_ms: None, // paper reports <2% / 3.4% / 4.4% overhead
        }
    }

    /// GPT-3 (§V-B5): P=96, O=4, D=1. NA = 4 * 2048 * 12288 FP32 values
    /// ~= 400 MB per layer boundary per (here: aggregated micro)batch;
    /// Megatron allreduces for MHA+FF in forward and backward.
    pub fn gpt3() -> Self {
        let par = Parallelism { d: 1, p: 96, o: 4 };
        // NA per example = 4 * 2048 * 12288 ≈ 100 MB (paper). Per-GPU
        // pipeline volume VP = M*W*NA/(D*P*O); the paper's simulation moves
        // ~100 MB per stage boundary per pass; we use that directly.
        let na_bytes: u64 = 100 * 1000 * 1000;
        Self {
            name: "GPT-3",
            parallelism: par,
            compute_ps: ms_to_ps(31.8),
            phases: vec![
                // forward + backward pipeline handoffs, sliced into 8
                // microbatch steps
                CommPhase::PipelineSendRecv {
                    bytes: na_bytes / (4 * 8),
                    steps: 2 * 8,
                },
                // one allreduce for FF and one for MHA in fwd and bwd,
                // of the layer I/O size, across O=4
                CommPhase::OperatorAllreduce {
                    bytes: na_bytes / 4,
                    count: 4,
                },
            ],
            overlap: 0.35,
            paper_iteration_ms: Some((34.8, 72.2, 41.7, 49.9)),
        }
    }

    /// GPT-3 with 16-expert MoE FFs (§V-B5): adds two alltoalls per pass.
    pub fn gpt3_moe() -> Self {
        let base = Self::gpt3();
        let na_bytes: u64 = 100 * 1000 * 1000;
        let mut phases = base.phases.clone();
        // two alltoalls in fwd and two in bwd over the 16-expert groups;
        // all operations are the size of the layer input/output.
        phases.push(CommPhase::OperatorAlltoall {
            bytes: na_bytes / 16,
            count: 4,
        });
        Self {
            name: "GPT-3 MoE",
            parallelism: base.parallelism,
            compute_ps: ms_to_ps(49.9),
            phases,
            overlap: 0.45,
            paper_iteration_ms: Some((52.2, 73.8, 58.3, 63.3)),
        }
    }

    /// DLRM (§V-B4): hybrid model/data parallelism on 128 nodes, two
    /// alltoalls (1 MB) and one allreduce (2.96 MB) per iteration;
    /// compute 95 + 209 + 796 us.
    pub fn dlrm() -> Self {
        Self {
            name: "DLRM",
            parallelism: Parallelism { d: 128, p: 1, o: 1 },
            compute_ps: us_to_ps(95.0 + 209.0 + 796.0),
            phases: vec![
                CommPhase::OperatorAlltoall {
                    bytes: 1_000_000 / 128,
                    count: 2,
                },
                CommPhase::DataAllreduce {
                    bytes: 2_960_000,
                    chunks: 4,
                },
            ],
            overlap: 0.3,
            paper_iteration_ms: Some((2.96, 3.12, 2.97, 3.00)),
        }
    }

    /// All five evaluation workloads in Fig. 15 order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::resnet152(),
            Self::gpt3(),
            Self::gpt3_moe(),
            Self::cosmoflow(),
            Self::dlrm(),
        ]
    }

    /// Total bytes each accelerator moves per iteration (order-of-
    /// magnitude check against the paper's formulas).
    pub fn bytes_per_accel(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match *p {
                CommPhase::DataAllreduce { bytes, .. } => 2 * bytes,
                CommPhase::PipelineSendRecv { bytes, steps } => bytes * steps as u64,
                CommPhase::OperatorAllreduce { bytes, count } => 2 * bytes * count as u64,
                CommPhase::OperatorAlltoall { bytes, count } => bytes * count as u64,
                CommPhase::HaloExchange { bytes, count } => bytes * count as u64,
            })
            .sum()
    }
}

pub fn ms_to_ps(ms: f64) -> u64 {
    (ms * 1e9) as u64
}

pub fn us_to_ps(us: f64) -> u64 {
    (us * 1e6) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_formulas_match_paper() {
        // ResNet-152: VD = W*NP with D-only parallelism; 60.2M params in
        // FP32 = 240.8 MB reduced per iteration.
        let r = DnnWorkload::resnet152();
        match r.phases[0] {
            CommPhase::DataAllreduce { bytes, chunks } => {
                assert_eq!(bytes, 4 * 60_200_000);
                assert_eq!(chunks, 10);
            }
            _ => panic!(),
        }
        // GPT-3: NA ≈ 100 MB per example at the cut layers.
        let g = DnnWorkload::gpt3();
        assert_eq!(g.parallelism.total(), 384);
        assert_eq!(g.compute_ps, 31_800_000_000);
    }

    #[test]
    fn all_workloads_have_positive_traffic() {
        for w in DnnWorkload::all() {
            assert!(w.bytes_per_accel() > 0, "{}", w.name);
            assert!(w.compute_ps > 0);
            assert!((0.0..=1.0).contains(&w.overlap));
        }
    }

    #[test]
    fn paper_iteration_times_recorded() {
        let g = DnnWorkload::gpt3();
        let (ft, torus, hx2, hx4) = g.paper_iteration_ms.unwrap();
        // The headline ordering: fat tree < Hx2 < Hx4 < torus for GPT-3.
        assert!(ft < hx2 && hx2 < hx4 && hx4 < torus);
    }
}
