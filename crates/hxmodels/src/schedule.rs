//! Build a simulatable one-iteration [`Schedule`] for a DNN workload.
//!
//! The schedule expresses the D x P x O structure of §II-D directly:
//! data-parallel gradient rings across `d`, a fill/drain pipeline across
//! `p` with per-stage compute slices, operator rings across `o`, and
//! MoE/DLRM alltoalls. Payloads are opaque (timing-only); numerical
//! correctness of the collective building blocks is covered by
//! `hxcollect`'s logical executor.
//!
//! Scaling: `ScaledConfig` shrinks the parallelism degrees while keeping
//! per-accelerator communication volumes, so a laptop-size simulation
//! exercises the same per-endpoint load as the paper's cluster (DESIGN.md
//! substitution #2).

use crate::workloads::{CommPhase, DnnWorkload, Parallelism};
use hxcollect::schedule::{Payload, RecvAction, Schedule};

/// A workload scaled to a simulatable size.
#[derive(Clone, Debug)]
pub struct ScaledConfig {
    pub parallelism: Parallelism,
    /// Microbatches in flight through the pipeline.
    pub microbatches: u32,
    /// Multiplier applied to all byte counts (to shorten simulations;
    /// bandwidth ratios are preserved).
    pub bytes_scale: f64,
}

impl ScaledConfig {
    /// Shrink `w`'s parallelism to at most `max_ranks` accelerators,
    /// preserving the axis structure (d is reduced first, then p).
    pub fn fit(w: &DnnWorkload, max_ranks: usize) -> Self {
        let mut par = w.parallelism;
        while par.total() > max_ranks && par.d > 1 {
            par.d = (par.d / 2).max(1);
        }
        while par.total() > max_ranks && par.p > 2 {
            par.p = (par.p / 2).max(2);
        }
        while par.total() > max_ranks && par.o > 1 {
            par.o = (par.o / 2).max(1);
        }
        Self {
            parallelism: par,
            microbatches: 4,
            bytes_scale: 1.0,
        }
    }

    /// Rank of logical coordinate (di, pi, oi): o fastest, then p, then d.
    pub fn rank(&self, di: usize, pi: usize, oi: usize) -> u32 {
        ((di * self.parallelism.p + pi) * self.parallelism.o + oi) as u32
    }
}

/// Scale a byte count, keeping at least one packet's worth.
fn scaled(bytes: u64, f: f64) -> u64 {
    ((bytes as f64 * f) as u64).max(256)
}

/// Opaque unidirectional ring allreduce over `members`: 2(g-1) rounds of
/// `total/g` bytes. Returns per-member final op indices.
fn opaque_ring(
    s: &mut Schedule,
    members: &[u32],
    total: u64,
    tag_base: u64,
    entry: &[Vec<u32>],
) -> Vec<u32> {
    let g = members.len();
    if g < 2 || total == 0 {
        return entry
            .iter()
            .map(|d| d.last().copied().unwrap_or(0))
            .collect();
    }
    let chunk = (total / g as u64).max(1);
    let mut last: Vec<Option<u32>> = vec![None; g];
    for k in 0..2 * (g - 1) {
        for i in 0..g {
            let me = members[i] as usize;
            let next = members[(i + 1) % g];
            let prev = members[(i + g - 1) % g];
            let deps = match last[i] {
                Some(r) => vec![r],
                None => entry[i].clone(),
            };
            s.send(
                me,
                next,
                tag_base + k as u64,
                Payload::Opaque { bytes: chunk },
                deps,
            );
            let r = s.recv(
                me,
                prev,
                tag_base + k as u64,
                RecvAction::Discard,
                Vec::new(),
            );
            last[i] = Some(r);
        }
    }
    last.into_iter().map(Option::unwrap).collect()
}

/// Opaque balanced-shift alltoall over `members`, `bytes` per peer.
fn opaque_alltoall(
    s: &mut Schedule,
    members: &[u32],
    bytes: u64,
    tag_base: u64,
    entry: &[Vec<u32>],
) {
    let g = members.len();
    if g < 2 || bytes == 0 {
        return;
    }
    for shift in 1..g {
        for i in 0..g {
            let me = members[i] as usize;
            let to = members[(i + shift) % g];
            let from = members[(i + g - shift) % g];
            s.send(
                me,
                to,
                tag_base + shift as u64,
                Payload::Opaque { bytes },
                entry[i].clone(),
            );
            s.recv(
                me,
                from,
                tag_base + shift as u64,
                RecvAction::Discard,
                Vec::new(),
            );
        }
    }
}

/// Build a one-iteration schedule for `w` at `cfg`'s scale.
pub fn build_iteration(w: &DnnWorkload, cfg: &ScaledConfig) -> Schedule {
    let par = cfg.parallelism;
    let n = par.total();
    let mut s = Schedule::new(n, 1);
    let mb = cfg.microbatches.max(1);
    let f = cfg.bytes_scale;

    // Per-rank compute, sliced per pipeline stage and microbatch when a
    // pipeline exists; communication runs concurrently (overlap emerges in
    // the simulator, it is not assumed).
    let compute_slice = w.compute_ps / (mb as u64) / par.p.max(1) as u64;

    // Pipeline stage gating ops: gate[d][p][o] = ops that end stage work.
    let mut stage_gate: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut tag = 0u64;
    let fresh_tag = |tag: &mut u64, span: u64| {
        let t = *tag;
        *tag += span;
        t
    };

    if par.p > 1 {
        // Explicit fill/drain pipeline: forward then backward per
        // microbatch, with a compute slice between hops.
        let handoff = w
            .phases
            .iter()
            .find_map(|ph| match *ph {
                CommPhase::PipelineSendRecv { bytes, .. } => Some(scaled(bytes, f)),
                _ => None,
            })
            .unwrap_or(1024);
        for di in 0..par.d {
            for oi in 0..par.o {
                // per (d, o) replica: a chain over p stages
                let chain: Vec<u32> = (0..par.p).map(|pi| cfg.rank(di, pi, oi)).collect();
                let mut prev_recv: Vec<Option<u32>> = vec![None; par.p];
                for m in 0..mb {
                    let t0 = fresh_tag(&mut tag, 2 * par.p as u64 + 4);
                    // forward
                    for pi in 0..par.p {
                        let me = chain[pi] as usize;
                        let mut deps: Vec<u32> = prev_recv[pi].into_iter().collect();
                        let c = s.compute(me, compute_slice, deps.clone());
                        deps = vec![c];
                        if pi + 1 < par.p {
                            s.send(
                                me,
                                chain[pi + 1],
                                t0 + pi as u64,
                                Payload::Opaque { bytes: handoff },
                                deps,
                            );
                            let r = s.recv(
                                chain[pi + 1] as usize,
                                chain[pi],
                                t0 + pi as u64,
                                RecvAction::Discard,
                                Vec::new(),
                            );
                            prev_recv[pi + 1] = Some(r);
                        } else {
                            stage_gate[me].push(c);
                        }
                    }
                    let _ = m;
                }
            }
        }
    } else {
        for r in 0..n {
            let c = s.compute(r, w.compute_ps, Vec::new());
            stage_gate[r].push(c);
        }
    }

    for phase in &w.phases {
        match *phase {
            CommPhase::DataAllreduce { bytes, chunks } => {
                if par.d < 2 {
                    continue;
                }
                let per_chunk = scaled(bytes, f) / chunks.max(1) as u64;
                for pi in 0..par.p {
                    for oi in 0..par.o {
                        let members: Vec<u32> = (0..par.d).map(|di| cfg.rank(di, pi, oi)).collect();
                        let entry: Vec<Vec<u32>> = members
                            .iter()
                            .map(|&mm| stage_gate[mm as usize].clone())
                            .collect();
                        for _ in 0..chunks.max(1) {
                            let t0 = fresh_tag(&mut tag, 2 * par.d as u64 + 4);
                            opaque_ring(&mut s, &members, per_chunk * par.d as u64, t0, &entry);
                        }
                    }
                }
            }
            CommPhase::PipelineSendRecv { .. } => {
                // Handled by the pipeline chain above.
            }
            CommPhase::OperatorAllreduce { bytes, count } => {
                if par.o < 2 {
                    continue;
                }
                for di in 0..par.d {
                    for pi in 0..par.p {
                        let members: Vec<u32> = (0..par.o).map(|oi| cfg.rank(di, pi, oi)).collect();
                        let entry: Vec<Vec<u32>> = vec![Vec::new(); members.len()];
                        let mut gate = entry.clone();
                        for _ in 0..count.max(1) {
                            let t0 = fresh_tag(&mut tag, 2 * par.o as u64 + 4);
                            let exits = opaque_ring(&mut s, &members, scaled(bytes, f), t0, &gate);
                            gate = exits.into_iter().map(|e| vec![e]).collect();
                        }
                    }
                }
            }
            CommPhase::OperatorAlltoall { bytes, count } => {
                // Expert groups of up to 16 consecutive ranks.
                let group = 16.min(n);
                if group < 2 {
                    continue;
                }
                for g0 in (0..n).step_by(group) {
                    let members: Vec<u32> = (g0..(g0 + group).min(n)).map(|r| r as u32).collect();
                    if members.len() < 2 {
                        continue;
                    }
                    let entry: Vec<Vec<u32>> = vec![Vec::new(); members.len()];
                    for _ in 0..count.max(1) {
                        let t0 = fresh_tag(&mut tag, members.len() as u64 + 4);
                        opaque_alltoall(&mut s, &members, scaled(bytes, f), t0, &entry);
                    }
                }
            }
            CommPhase::HaloExchange { bytes, count } => {
                if par.o < 2 {
                    continue;
                }
                // Neighbor exchange along the o ring.
                for di in 0..par.d {
                    for pi in 0..par.p {
                        let members: Vec<u32> = (0..par.o).map(|oi| cfg.rank(di, pi, oi)).collect();
                        for k in 0..count.max(1) {
                            let t0 = fresh_tag(&mut tag, 4);
                            for i in 0..members.len() {
                                let me = members[i] as usize;
                                let nxt = members[(i + 1) % members.len()];
                                let prv = members[(i + members.len() - 1) % members.len()];
                                s.send(
                                    me,
                                    nxt,
                                    t0,
                                    Payload::Opaque {
                                        bytes: scaled(bytes, f),
                                    },
                                    Vec::new(),
                                );
                                s.recv(me, prv, t0, RecvAction::Discard, Vec::new());
                            }
                            let _ = k;
                        }
                    }
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hxsim::SimConfig;

    #[test]
    fn scaled_config_fits_budget() {
        for w in DnnWorkload::all() {
            let cfg = ScaledConfig::fit(&w, 64);
            assert!(
                cfg.parallelism.total() <= 64,
                "{}: {:?}",
                w.name,
                cfg.parallelism
            );
            assert!(cfg.parallelism.total() >= 2);
        }
    }

    #[test]
    fn schedules_validate() {
        for w in DnnWorkload::all() {
            let mut cfg = ScaledConfig::fit(&w, 32);
            cfg.bytes_scale = 0.01;
            let s = build_iteration(&w, &cfg);
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(s.num_ops() > 0, "{}", w.name);
        }
    }

    /// End-to-end: simulate a scaled GPT-3 iteration on a small HxMesh and
    /// a torus; both must complete, and the iteration must take at least
    /// the compute time.
    #[test]
    fn scaled_gpt3_runs_on_simulator() {
        // Both backends must replay the full DNN-iteration schedule
        // (sends, recvs, and compute ops with dependencies).
        let w = DnnWorkload::gpt3();
        let mut cfg = ScaledConfig::fit(&w, 16);
        cfg.bytes_scale = 0.001;
        let sched = build_iteration(&w, &cfg);
        let net = hxnet::hammingmesh::HxMeshParams::square(2, 2).build();
        for kind in hxsim::EngineKind::all() {
            let mut app = hxcollect::simapp::ScheduleApp::new(&sched);
            let stats = hxsim::simulate(&net, SimConfig::default(), kind, &mut app);
            assert!(stats.clean(), "{kind}: {stats:?}");
            assert!(app.is_done(), "{kind}");
            assert!(stats.finish_ps >= w.compute_ps / cfg.microbatches as u64);
        }
    }

    #[test]
    fn resnet_schedule_is_pure_data_parallel() {
        let w = DnnWorkload::resnet152();
        let mut cfg = ScaledConfig::fit(&w, 8);
        cfg.bytes_scale = 0.001;
        let s = build_iteration(&w, &cfg);
        // Every rank participates in the gradient rings: sends > 0.
        for (r, ops) in s.ops.iter().enumerate() {
            assert!(ops.len() > 1, "rank {r} idle");
        }
    }
}
