//! # hxalloc — job allocation on HammingMesh (§IV)
//!
//! HxMesh jobs request a `u x v` block of boards, but — unlike on a torus —
//! the rows of a *virtual sub-HxMesh* need not be contiguous: any set of
//! boards where all selected rows share the same set of column coordinates
//! forms a full-bandwidth virtual HxMesh (§III-E). This turns allocation
//! from 2D bin packing (strongly NP-hard, §IV) into the simple greedy
//! row-intersection procedure of §IV-A, implemented here together with the
//! paper's optimization heuristics:
//!
//! * **transpose** — retry `v x u`,
//! * **aspect** — try alternative aspect ratios up to 8,
//! * **sort** — place large jobs first,
//! * **locality** — prefer shapes/placements that keep traffic out of the
//!   upper fat-tree levels (Fig. 9's metric),
//!
//! plus board failures (Fig. 10) and the synthetic job-size workload
//! standing in for the Alibaba MLaaS trace (Fig. 7 — DESIGN.md
//! substitution #3).

pub mod experiments;
pub mod mesh;
pub mod workload;

pub use mesh::{AllocError, BoardMesh, Heuristics, JobId, Placement};
pub use workload::{JobMix, JobSizeDistribution};
