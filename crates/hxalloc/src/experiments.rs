//! The allocation experiments behind Figs. 8, 9 and 10.
//!
//! Each function runs many random job traces (drawn from the Fig. 7
//! distribution) against a mesh and reports utilization / upper-level
//! traffic statistics. The bench binaries print them in the papers'
//! figure layout; tests assert the qualitative claims (§IV-B).

use crate::mesh::{BoardMesh, Heuristics};
use crate::workload::{JobMix, JobSizeDistribution};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// A heuristic stack from Fig. 8's legend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Strategy {
    pub heuristics: Heuristics,
    /// Allocate jobs largest-first instead of arrival order.
    pub sort: bool,
    pub name: &'static str,
}

/// The six stacks of Fig. 8, in legend order.
pub fn fig8_strategies() -> Vec<Strategy> {
    let h = |transpose, aspect, locality| Heuristics {
        transpose,
        aspect,
        locality,
    };
    vec![
        Strategy {
            heuristics: h(false, false, false),
            sort: false,
            name: "greedy",
        },
        Strategy {
            heuristics: h(true, false, false),
            sort: false,
            name: "greedy+transpose",
        },
        Strategy {
            heuristics: h(true, true, false),
            sort: false,
            name: "greedy+transpose+aspect",
        },
        Strategy {
            heuristics: h(true, true, true),
            sort: false,
            name: "greedy+transpose+aspect+locality",
        },
        Strategy {
            heuristics: h(true, true, false),
            sort: true,
            name: "greedy+transpose+aspect+sort",
        },
        Strategy {
            heuristics: h(true, true, true),
            sort: true,
            name: "greedy+transpose+aspect+sort+locality",
        },
    ]
}

/// Summary statistics over many traces.
#[derive(Clone, Debug, Default)]
pub struct Distribution {
    pub samples: Vec<f64>,
}

impl Distribution {
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut v = self.samples.clone();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx]
    }

    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }
}

/// Allocate one job mix on a fresh or pre-failed mesh; returns the final
/// mesh (with per-job placements) and its utilization.
pub fn allocate_mix(mesh: &mut BoardMesh, mix: &JobMix, strat: Strategy) -> f64 {
    let mut jobs: Vec<(usize, usize)> = mix.shapes.clone();
    if strat.sort {
        jobs.sort_by_key(|&(u, v)| std::cmp::Reverse(u * v));
    }
    for (id, &(u, v)) in jobs.iter().enumerate() {
        // Failed allocations are skipped (the paper reports the utilization
        // achieved by whatever fits).
        let _ = mesh.allocate(id as u32, u, v, strat.heuristics);
    }
    debug_assert!(mesh.check_invariants().is_ok());
    mesh.utilization()
}

/// Fig. 8: utilization distribution of `traces` random job mixes on an
/// `x` x `y` mesh under one strategy.
pub fn fig8_utilization(
    x: usize,
    y: usize,
    traces: usize,
    strat: Strategy,
    seed: u64,
) -> Distribution {
    let dist = JobSizeDistribution::for_cluster(x * y);
    let samples: Vec<f64> = (0..traces)
        .into_par_iter()
        .map(|t| {
            let mix = JobMix::draw(
                &dist,
                x * y,
                seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let mut mesh = BoardMesh::new(x, y);
            allocate_mix(&mut mesh, &mix, strat)
        })
        .collect();
    Distribution { samples }
}

/// Fig. 9: average share of traffic crossing the upper fat-tree levels for
/// the jobs of random mixes, for alltoall and allreduce traffic.
pub fn fig9_upper_traffic(
    x: usize,
    y: usize,
    traces: usize,
    strat: Strategy,
    seed: u64,
) -> (Distribution, Distribution) {
    let dist = JobSizeDistribution::for_cluster(x * y);
    let pairs: Vec<(f64, f64)> = (0..traces)
        .into_par_iter()
        .map(|t| {
            let mix = JobMix::draw(
                &dist,
                x * y,
                seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let mut mesh = BoardMesh::new(x, y);
            allocate_mix(&mut mesh, &mix, strat);
            let (mut a2a, mut ar, mut boards) = (0.0, 0.0, 0usize);
            for p in mesh.placements() {
                let w = p.boards() as f64;
                a2a += mesh.upper_traffic_alltoall(&p.rows, &p.cols) * w;
                ar += mesh.upper_traffic_allreduce(&p.rows, &p.cols) * w;
                boards += p.boards();
            }
            if boards == 0 {
                (0.0, 0.0)
            } else {
                (a2a / boards as f64, ar / boards as f64)
            }
        })
        .collect();
    let mut alltoall = Distribution::default();
    let mut allreduce = Distribution::default();
    for (a, b) in pairs {
        alltoall.push(a);
        allreduce.push(b);
    }
    (alltoall, allreduce)
}

/// Fig. 10: utilization of *working* boards with `failures` random failed
/// boards, over `traces` mixes.
pub fn fig10_failures(
    x: usize,
    y: usize,
    failures: usize,
    traces: usize,
    sorted: bool,
    seed: u64,
) -> Distribution {
    let strat = Strategy {
        heuristics: Heuristics {
            transpose: true,
            aspect: true,
            locality: false,
        },
        sort: sorted,
        name: if sorted { "sorted" } else { "unsorted" },
    };
    let samples: Vec<f64> = (0..traces)
        .into_par_iter()
        .map(|t| {
            let tseed = seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = StdRng::seed_from_u64(tseed);
            let mut mesh = BoardMesh::new(x, y);
            let mut cells: Vec<(usize, usize)> =
                (0..y).flat_map(|r| (0..x).map(move |c| (r, c))).collect();
            cells.shuffle(&mut rng);
            for &(r, c) in cells.iter().take(failures.min(cells.len())) {
                mesh.fail_board(r, c);
            }
            let dist = JobSizeDistribution::for_cluster(x * y);
            let mix = JobMix::draw(&dist, mesh.working_boards(), tseed ^ 0xABCD);
            allocate_mix(&mut mesh, &mix, strat)
        })
        .collect();
    Distribution { samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §IV-B: "even without any optimization, the greedy algorithm leads
    /// to a 90% system utilization", and each heuristic helps.
    #[test]
    fn fig8_qualitative_claims_small_hx2() {
        let strategies = fig8_strategies();
        let greedy = fig8_utilization(16, 16, 40, strategies[0], 11);
        assert!(
            greedy.mean() > 0.78,
            "plain greedy utilization {:.3} (paper: ~0.90)",
            greedy.mean()
        );
        let transpose = fig8_utilization(16, 16, 40, strategies[1], 11);
        assert!(
            transpose.mean() >= greedy.mean() + 0.01,
            "transpose should add ~5% as in Fig. 8: {:.3} vs {:.3}",
            transpose.mean(),
            greedy.mean()
        );
        let sorted = fig8_utilization(16, 16, 40, strategies[4], 11);
        assert!(
            sorted.mean() > 0.93,
            "sorted stack utilization {:.3} (paper: >0.98)",
            sorted.mean()
        );
        assert!(sorted.mean() >= transpose.mean());
    }

    /// §IV-B / Fig. 9: upper-level traffic below 50%, and locality reduces
    /// it.
    #[test]
    fn fig9_upper_traffic_below_half() {
        let strategies = fig8_strategies();
        let (a2a, ar) = fig9_upper_traffic(64, 64, 8, strategies[2], 5);
        assert!(a2a.mean() < 0.5, "alltoall upper traffic {:.3}", a2a.mean());
        assert!(ar.mean() < 0.2, "allreduce upper traffic {:.3}", ar.mean());
        let (a2a_loc, _) = fig9_upper_traffic(64, 64, 8, strategies[3], 5);
        assert!(
            a2a_loc.mean() <= a2a.mean() + 0.02,
            "locality should not increase upper traffic: {:.3} vs {:.3}",
            a2a_loc.mean(),
            a2a.mean()
        );
    }

    /// Fig. 10: with failures, median utilization of working boards stays
    /// above 70% (paper: "almost all cases higher than 70%").
    #[test]
    fn fig10_failure_resilience() {
        let d = fig10_failures(16, 16, 20, 30, true, 3);
        assert!(d.median() > 0.70, "median {:.3}", d.median());
        // Unsorted decreases utilization by at most ~10% (paper claim).
        let du = fig10_failures(16, 16, 20, 30, false, 3);
        assert!(
            d.median() - du.median() < 0.15,
            "sorted {:.3} vs unsorted {:.3}",
            d.median(),
            du.median()
        );
    }

    #[test]
    fn distribution_stats() {
        let mut d = Distribution::default();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            d.push(v);
        }
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.median(), 3.0);
        assert_eq!(d.percentile(1.0), 5.0);
        assert_eq!(d.percentile(0.0), 1.0);
    }
}
