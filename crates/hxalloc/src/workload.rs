//! Synthetic job-size workload standing in for the Alibaba MLaaS trace
//! (Fig. 7, DESIGN.md substitution #3).
//!
//! The paper samples job sizes from a two-month trace of a 6,742-GPU
//! cluster; the trace itself is not redistributable, so we model its
//! board-level size distribution with a truncated power law blended with
//! point masses at the small power-of-two sizes that dominate MLaaS
//! traces. The calibration target is the CDF the paper prints: ~39% of
//! boards belong to jobs smaller than 100 boards in the sampled mix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parametric job-size distribution (sizes in boards).
#[derive(Clone, Debug)]
pub struct JobSizeDistribution {
    /// Power-law exponent for the tail (P(s) ∝ s^-alpha).
    pub alpha: f64,
    /// Largest job size in boards.
    pub max_boards: usize,
    /// Probability mass given to the small power-of-two sizes {1,2,4,8}.
    pub small_mass: f64,
    /// Probability that a job requests a skewed shape (aspect ~2-4, random
    /// orientation) instead of the near-square default — explicit
    /// data x pipeline decompositions like 4 x 16 (§IV-A "Aspect ratio").
    pub skew_prob: f64,
}

impl Default for JobSizeDistribution {
    fn default() -> Self {
        Self {
            alpha: 1.6,
            max_boards: 1024,
            small_mass: 0.3,
            skew_prob: 0.35,
        }
    }
}

impl JobSizeDistribution {
    /// Distribution for filling a cluster of `total` boards: single jobs
    /// are capped at a quarter of the cluster (calibrated so the greedy
    /// allocator reproduces Fig. 8's ~90% baseline — shared MLaaS clusters
    /// do not hand the whole machine to one job).
    pub fn for_cluster(total: usize) -> Self {
        Self {
            max_boards: (total / 4).max(8).min(total),
            ..Self::default()
        }
    }

    /// Requested shape for a sampled size: near-square by default, skewed
    /// (half the rows, random orientation) with probability `skew_prob`.
    pub fn shape(&self, s: usize, rng: &mut StdRng) -> (usize, usize) {
        let (u, v) = request_shape(s);
        if u > 1 && rng.random_range(0.0..1.0) < self.skew_prob {
            let u2 = (u / 2).max(1);
            let v2 = s.div_ceil(u2);
            if rng.random_range(0..2) == 0 {
                return (v2, u2);
            }
            return (u2, v2);
        }
        if rng.random_range(0..2) == 0 {
            (v, u)
        } else {
            (u, v)
        }
    }

    /// Sample one job size in boards (>= 1).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        if rng.random_range(0.0..1.0) < self.small_mass {
            // hxlint: allow(P001) index drawn from 0..4 of a 4-element array
            return *[1usize, 2, 4, 8].get(rng.random_range(0..4usize)).unwrap();
        }
        // Inverse-CDF sampling of a truncated continuous power law on
        // [1, max], then floor.
        let a = 1.0 - self.alpha; // != 0 for alpha != 1
        let u: f64 = rng.random_range(0.0..1.0);
        let max = self.max_boards as f64;
        let s = (1.0 + u * (max.powf(a) - 1.0)).powf(1.0 / a);
        (s.floor() as usize).clamp(1, self.max_boards)
    }

    /// Board-weighted CDF at `size`: the probability that a *board* is
    /// allocated to a job of at most `size` boards, estimated by sampling.
    pub fn board_weighted_cdf(&self, size: usize, samples: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut below = 0u64;
        let mut total = 0u64;
        for _ in 0..samples {
            let s = self.sample(&mut rng) as u64;
            total += s;
            if s as usize <= size {
                below += s;
            }
        }
        below as f64 / total as f64
    }
}

/// A job mix that fills a cluster of `total_boards` exactly, in random
/// draw order (§IV-B: samples that do not fit are carried to the next
/// mix — here, clamped into the remaining space, which preserves the mass
/// balance for a single mix).
#[derive(Clone, Debug)]
pub struct JobMix {
    /// Requested job shapes `(u, v)` in arrival order.
    pub shapes: Vec<(usize, usize)>,
}

impl JobMix {
    /// Draw a mix whose requested boards total exactly `total_boards`.
    /// Shapes are the near-square requests of [`request_shape`].
    pub fn draw(dist: &JobSizeDistribution, total_boards: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shapes = Vec::new();
        let mut used = 0usize;
        while used < total_boards {
            let s = dist.sample(&mut rng);
            let (u, v) = dist.shape(s, &mut rng);
            let (u, v) = if used + u * v > total_boards {
                // Carry policy: clamp the final sample into the gap.
                request_shape(total_boards - used)
            } else {
                (u, v)
            };
            // The clamped shape may still overshoot by padding; shrink to
            // an exact fit if so (a 1 x k strip always exists).
            let (u, v) = if used + u * v > total_boards {
                (1, total_boards - used)
            } else {
                (u, v)
            };
            shapes.push((u, v));
            used += u * v;
        }
        Self { shapes }
    }

    pub fn total_boards(&self) -> usize {
        self.shapes.iter().map(|&(u, v)| u * v).sum()
    }

    pub fn num_jobs(&self) -> usize {
        self.shapes.len()
    }
}

/// Most-square factorization `u x v = s` with `u <= v`.
pub fn most_square_shape(s: usize) -> (usize, usize) {
    let mut u = (s as f64).sqrt() as usize;
    while u >= 1 {
        if s.is_multiple_of(u) {
            return (u, s / u);
        }
        u -= 1;
    }
    (1, s)
}

/// Near-square *request* shape for `s` boards: jobs ask for the smallest
/// `u x v >= s` with `u = ⌈√s⌉` (§IV-B: "we make jobs as square as
/// possible"). Awkward sizes (primes) are padded up instead of degrading
/// into 1 x s strips no mesh could host.
pub fn request_shape(s: usize) -> (usize, usize) {
    let u = (s as f64).sqrt().ceil() as usize;
    let v = s.div_ceil(u);
    (u.min(v), u.max(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_stays_in_range() {
        let d = JobSizeDistribution::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=1024).contains(&s));
        }
    }

    /// Fig. 7 calibration: ~39% of boards go to jobs of < 100 boards.
    /// With the RNG seeds pinned, 200k-sample estimates sit at 0.382-0.387
    /// across seeds (measured over seeds {1, 2, 3, 7, 42}), so the band is
    /// ±0.025 around the paper's knee instead of the former ±0.10.
    #[test]
    fn board_weighted_cdf_matches_paper_knee() {
        let d = JobSizeDistribution::default();
        let cdf100 = d.board_weighted_cdf(100, 200_000, 7);
        assert!(
            (0.36..=0.41).contains(&cdf100),
            "board-weighted CDF(100) = {cdf100:.3}, calibration target ~0.39"
        );
    }

    #[test]
    fn mix_fills_cluster_exactly() {
        let d = JobSizeDistribution::for_cluster(256);
        for seed in 0..20 {
            let mix = JobMix::draw(&d, 256, seed);
            assert_eq!(mix.total_boards(), 256);
            assert!(mix.shapes.iter().all(|&(u, v)| u >= 1 && v >= 1));
        }
    }

    #[test]
    fn most_square_shapes() {
        assert_eq!(most_square_shape(1), (1, 1));
        assert_eq!(most_square_shape(12), (3, 4));
        assert_eq!(most_square_shape(16), (4, 4));
        assert_eq!(most_square_shape(13), (1, 13)); // prime
    }

    #[test]
    fn request_shapes_are_near_square() {
        assert_eq!(request_shape(1), (1, 1));
        assert_eq!(request_shape(12), (3, 4));
        assert_eq!(request_shape(13), (4, 4)); // padded, not 1x13
        assert_eq!(request_shape(100), (10, 10));
        for s in 1..200usize {
            let (u, v) = request_shape(s);
            assert!(u * v >= s && u * v <= s + v, "{s} -> {u}x{v}");
            assert!(v - u <= 1 || u * v < s + u, "{s} -> {u}x{v} too skewed");
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let d = JobSizeDistribution::default();
        let a = d.board_weighted_cdf(10, 50_000, 3);
        let b = d.board_weighted_cdf(100, 50_000, 3);
        let c = d.board_weighted_cdf(1000, 50_000, 3);
        assert!(a <= b && b <= c);
    }
}
