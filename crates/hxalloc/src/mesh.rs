//! The board mesh, the §IV-A greedy allocator, and its heuristics.

use std::collections::BTreeMap;

pub type JobId = u32;

/// A placed job: the selected board rows and the column coordinates shared
/// by every selected row (the §III-E virtual sub-HxMesh condition).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    pub job: JobId,
    /// Physical board-row indexes (length `u`).
    pub rows: Vec<usize>,
    /// Physical board-column indexes (length `v`), identical in all rows.
    pub cols: Vec<usize>,
}

impl Placement {
    pub fn boards(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// All (row, col) board coordinates of this placement.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .flat_map(move |&r| self.cols.iter().map(move |&c| (r, c)))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No feasible row set exists for any attempted shape.
    NoSpace,
    /// The request exceeds the mesh dimensions in every allowed shape.
    TooLarge,
}

/// Which §IV-A optimization heuristics to apply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Heuristics {
    /// Retry the transposed shape on failure.
    pub transpose: bool,
    /// Try alternative aspect ratios (up to [`Heuristics::MAX_ASPECT`]).
    pub aspect: bool,
    /// Prefer the candidate placement minimizing upper-tree traffic.
    pub locality: bool,
}

impl Heuristics {
    /// The paper allows reshaping up to aspect ratio 8 (§IV-B).
    pub const MAX_ASPECT: usize = 8;

    pub fn none() -> Self {
        Self::default()
    }

    pub fn all() -> Self {
        Self {
            transpose: true,
            aspect: true,
            locality: true,
        }
    }
}

/// An `x`-columns by `y`-rows mesh of boards with an allocation map.
#[derive(Clone, Debug)]
pub struct BoardMesh {
    x: usize,
    y: usize,
    /// `state[r * x + c]`: None = free, Some(id) = owner job or FAILED.
    state: Vec<Option<JobId>>,
    /// Keyed in a `BTreeMap` so iteration (`placements()`, defrag
    /// checkpointing, invariant scans, float accumulations over jobs) is
    /// in job-id order — deterministic across processes and thread
    /// counts, unlike `HashMap`'s per-instance `RandomState` order.
    placements: BTreeMap<JobId, Placement>,
    /// Boards per leaf switch along a line (for the locality metric);
    /// 64-port leaves serve 32 line ports = 16 boards.
    leaf_span: usize,
}

/// Sentinel owner for failed boards.
pub const FAILED: JobId = JobId::MAX;

impl BoardMesh {
    pub fn new(x: usize, y: usize) -> Self {
        Self {
            x,
            y,
            state: vec![None; x * y],
            placements: BTreeMap::new(),
            leaf_span: 16,
        }
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.x, self.y)
    }

    pub fn total_boards(&self) -> usize {
        self.x * self.y
    }

    pub fn failed_boards(&self) -> usize {
        self.state.iter().filter(|s| **s == Some(FAILED)).count()
    }

    pub fn working_boards(&self) -> usize {
        self.total_boards() - self.failed_boards()
    }

    pub fn allocated_boards(&self) -> usize {
        self.state
            .iter()
            .filter(|s| s.is_some() && **s != Some(FAILED))
            .count()
    }

    /// Utilization over *working* boards (Fig. 10's y-axis).
    pub fn utilization(&self) -> f64 {
        if self.working_boards() == 0 {
            return 0.0;
        }
        self.allocated_boards() as f64 / self.working_boards() as f64
    }

    /// Working boards currently unallocated.
    pub fn free_boards(&self) -> usize {
        self.working_boards() - self.allocated_boards()
    }

    /// Largest `u x v` virtual sub-mesh the greedy allocator could place
    /// right now, by area. For each candidate width `v` the rows are
    /// scanned exactly as [`BoardMesh::allocate`]'s greedy core does —
    /// rows whose free set (or whose intersection with the running common
    /// set) drops below `v` are skipped — and the row count the scan
    /// accumulates is precisely the largest `u` for which
    /// `greedy_find(u, v)` would succeed. Rows need not be adjacent,
    /// columns must be common: this is the allocator's own feasibility,
    /// not the NP-hard maximum biclique.
    pub fn largest_free_rect(&self) -> (usize, usize) {
        let free: Vec<Vec<usize>> = (0..self.y).map(|r| self.free_cols(r)).collect();
        let mut best = (0usize, 0usize);
        for v in 1..=self.x {
            let mut selected = 0usize;
            let mut common: Vec<usize> = Vec::new();
            for cols in &free {
                if cols.len() < v {
                    continue;
                }
                if selected == 0 {
                    common = cols.clone();
                    selected = 1;
                } else {
                    let inter: Vec<usize> = common
                        .iter()
                        .copied()
                        .filter(|c| cols.contains(c))
                        .collect();
                    if inter.len() >= v {
                        common = inter;
                        selected += 1;
                    }
                }
            }
            if selected * v > best.0 * best.1 {
                best = (selected, v);
            }
        }
        best
    }

    /// External fragmentation of the free space: the fraction of free
    /// boards that do **not** fit in the largest greedily-placeable
    /// rectangle ([`BoardMesh::largest_free_rect`]). 0.0 when the free
    /// space is one placeable block (or there is none); approaches 1.0
    /// when the free boards are scattered so no large job can land. This
    /// is the quantity `hxcluster` integrates over time.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_boards();
        if free == 0 {
            return 0.0;
        }
        let (u, v) = self.largest_free_rect();
        1.0 - (u * v) as f64 / free as f64
    }

    pub fn owner(&self, row: usize, col: usize) -> Option<JobId> {
        self.state[row * self.x + col]
    }

    pub fn placement(&self, job: JobId) -> Option<&Placement> {
        self.placements.get(&job)
    }

    pub fn placements(&self) -> impl Iterator<Item = &Placement> {
        self.placements.values()
    }

    /// Mark a board failed (it must be free; failing allocated boards
    /// would first require checkpoint/restart of the owner, §IV-A).
    pub fn fail_board(&mut self, row: usize, col: usize) {
        let slot = &mut self.state[row * self.x + col];
        assert!(slot.is_none(), "failing an allocated board");
        *slot = Some(FAILED);
    }

    /// Free column indexes per row.
    fn free_cols(&self, row: usize) -> Vec<usize> {
        (0..self.x)
            .filter(|&c| self.state[row * self.x + c].is_none())
            .collect()
    }

    /// The §IV-A greedy core: find `u` rows whose free-column intersection
    /// holds at least `v` columns. Returns (rows, columns).
    fn greedy_find(&self, u: usize, v: usize) -> Option<(Vec<usize>, Vec<usize>)> {
        if u > self.y || v > self.x {
            return None;
        }
        let mut selected: Vec<usize> = Vec::with_capacity(u);
        let mut common: Vec<usize> = Vec::new();
        for row in 0..self.y {
            let free = self.free_cols(row);
            if free.len() < v {
                continue;
            }
            if selected.is_empty() {
                selected.push(row);
                common = free;
            } else {
                let inter: Vec<usize> = common
                    .iter()
                    .copied()
                    .filter(|c| free.contains(c))
                    .collect();
                if inter.len() >= v {
                    selected.push(row);
                    common = inter;
                }
            }
            if selected.len() == u {
                common.truncate(v);
                return Some((selected, common));
            }
        }
        None
    }

    /// Candidate shapes for `boards` boards under the heuristics, in
    /// preference order (most square first — §IV-B default).
    fn shapes(&self, u: usize, v: usize, h: Heuristics) -> Vec<(usize, usize)> {
        let mut shapes = vec![(u, v)];
        if h.transpose && u != v {
            shapes.push((v, u));
        }
        if h.aspect {
            let boards = u * v;
            let mut alts: Vec<(usize, usize)> = Vec::new();
            for uu in 1..=boards {
                if !boards.is_multiple_of(uu) {
                    continue;
                }
                let vv = boards / uu;
                let aspect = uu.max(vv) / uu.min(vv).max(1);
                if aspect <= Heuristics::MAX_ASPECT && !shapes.contains(&(uu, vv)) {
                    alts.push((uu, vv));
                }
            }
            // Most square alternatives first.
            alts.sort_by_key(|&(a, b)| (a.max(b) - a.min(b), a.max(b)));
            shapes.extend(alts);
        }
        shapes
    }

    /// Allocate a `u x v` job. On success the mesh records the placement.
    pub fn allocate(
        &mut self,
        job: JobId,
        u: usize,
        v: usize,
        h: Heuristics,
    ) -> Result<Placement, AllocError> {
        assert!(u >= 1 && v >= 1);
        assert!(
            !self.placements.contains_key(&job),
            "job {job} already placed"
        );
        let shapes = self.shapes(u, v, h);
        if shapes.iter().all(|&(a, b)| a > self.y || b > self.x) {
            return Err(AllocError::TooLarge);
        }
        let mut candidates: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
        for (uu, vv) in shapes {
            if let Some(found) = self.greedy_find(uu, vv) {
                if h.locality {
                    candidates.push(found);
                } else {
                    return Ok(self.commit(job, found));
                }
            }
        }
        if candidates.is_empty() {
            return Err(AllocError::NoSpace);
        }
        // Locality: minimize the estimated upper-tree traffic share.
        let best = candidates
            .into_iter()
            .min_by(|a, b| {
                let ta = self.upper_traffic_alltoall(&a.0, &a.1);
                let tb = self.upper_traffic_alltoall(&b.0, &b.1);
                ta.total_cmp(&tb)
            })
            // hxlint: allow(P001) candidates.is_empty() returned NoSpace above
            .unwrap();
        Ok(self.commit(job, best))
    }

    fn commit(&mut self, job: JobId, (rows, cols): (Vec<usize>, Vec<usize>)) -> Placement {
        let p = Placement { job, rows, cols };
        for (r, c) in p.cells() {
            debug_assert!(self.state[r * self.x + c].is_none());
            self.state[r * self.x + c] = Some(job);
        }
        self.placements.insert(job, p.clone());
        p
    }

    /// Release a job's boards.
    pub fn free(&mut self, job: JobId) {
        let Some(p) = self.placements.remove(&job) else {
            return;
        };
        for (r, c) in p.cells() {
            self.state[r * self.x + c] = None;
        }
    }

    /// Fraction of a job's alltoall traffic that crosses the upper level of
    /// the line fat trees (Fig. 9): pairs of selected coordinates living
    /// under different leaf switches, over all pairs, averaged over the
    /// row and column dimensions.
    pub fn upper_traffic_alltoall(&self, rows: &[usize], cols: &[usize]) -> f64 {
        let frac = |coords: &[usize]| -> f64 {
            let n = coords.len();
            if n < 2 {
                return 0.0;
            }
            let mut cross = 0usize;
            for i in 0..n {
                for j in 0..n {
                    if i != j && coords[i] / self.leaf_span != coords[j] / self.leaf_span {
                        cross += 1;
                    }
                }
            }
            cross as f64 / (n * (n - 1)) as f64
        };
        (frac(cols) + frac(rows)) / 2.0
    }

    /// Fraction of a job's ring-allreduce traffic crossing the upper levels
    /// (Fig. 9, right): ring neighbors in sorted coordinate order that land
    /// under different leaves.
    pub fn upper_traffic_allreduce(&self, rows: &[usize], cols: &[usize]) -> f64 {
        let frac = |coords: &[usize]| -> f64 {
            let n = coords.len();
            if n < 2 {
                return 0.0;
            }
            let mut sorted = coords.to_vec();
            sorted.sort_unstable();
            let mut cross = 0usize;
            for i in 0..n {
                let a = sorted[i];
                let b = sorted[(i + 1) % n];
                if a / self.leaf_span != b / self.leaf_span {
                    cross += 1;
                }
            }
            cross as f64 / n as f64
        };
        (frac(cols) + frac(rows)) / 2.0
    }

    /// Defragmentation (§IV-A-b): checkpoint every job, clear the mesh,
    /// and restart them largest-first. The paper argues this takes under a
    /// second of wall-clock data movement on a real system; here it models
    /// the utilization recovery. Returns the number of jobs that could not
    /// be re-placed (0 in the common case — they are restored to their
    /// original placement if replacement fails).
    pub fn defragment(&mut self, h: Heuristics) -> usize {
        let mut jobs: Vec<Placement> = self.placements.values().cloned().collect();
        // Job id breaks board-count ties: without it the restart order —
        // and therefore the resulting placements — would inherit the
        // HashMap's per-process iteration order and differ run to run.
        jobs.sort_by_key(|p| (std::cmp::Reverse(p.boards()), p.job));
        // Checkpoint: clear all placements.
        for p in &jobs {
            for (r, c) in p.cells() {
                self.state[r * self.x + c] = None;
            }
        }
        self.placements.clear();
        // Restart largest-first.
        let mut dropped = 0;
        for p in &jobs {
            if self.allocate(p.job, p.rows.len(), p.cols.len(), h).is_err() {
                // Restore the original placement — it is guaranteed free
                // because earlier jobs were placed greedily into at least
                // as much space, but guard anyway.
                if p.cells().all(|(r, c)| self.state[r * self.x + c].is_none()) {
                    self.commit(p.job, (p.rows.clone(), p.cols.clone()));
                } else {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// §IV-A(a): no two jobs may share a board, and each job's rows must
    /// share identical column sets (checked from the committed state).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = vec![false; self.x * self.y];
        for p in self.placements.values() {
            for (r, c) in p.cells() {
                let idx = r * self.x + c;
                if seen[idx] {
                    return Err(format!("board ({r},{c}) double-booked"));
                }
                seen[idx] = true;
                if self.state[idx] != Some(p.job) {
                    return Err(format!("board ({r},{c}) state mismatch"));
                }
            }
            // Row-consistency is structural (same `cols` vector per row).
            let mut sorted_rows = p.rows.clone();
            sorted_rows.dedup();
            if sorted_rows.len() != p.rows.len() {
                return Err(format!("job {} repeats a row", p.job));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_block_allocation() {
        let mut m = BoardMesh::new(4, 4);
        let p = m.allocate(1, 2, 3, Heuristics::none()).unwrap();
        assert_eq!(p.rows.len(), 2);
        assert_eq!(p.cols.len(), 3);
        assert_eq!(m.allocated_boards(), 6);
        m.check_invariants().unwrap();
    }

    #[test]
    fn non_contiguous_rows_form_virtual_submesh() {
        let mut m = BoardMesh::new(4, 4);
        // Fill row 1 fully so a following 2-row job must skip it.
        m.allocate(9, 1, 4, Heuristics::none()).unwrap();
        let p9 = m.placement(9).unwrap().clone();
        let blocked_row = p9.rows[0];
        let p = m.allocate(1, 2, 4, Heuristics::none()).unwrap();
        assert!(!p.rows.contains(&blocked_row));
        m.check_invariants().unwrap();
    }

    #[test]
    fn figure5_failure_scenario() {
        // 4x4 Hx2Mesh with 3 failures (Fig. 5): a 2x4 and a 3x3 job still
        // fit using non-contiguous columns.
        let mut m = BoardMesh::new(4, 4);
        // Paper coordinates are 1-based (row, col); failures at
        // (3,2)? — Fig. 5 shows failures leaving rows {0,1,3} with a
        // common set of 3 columns. Reproduce: fail (2,1), (2,3), (3,2).
        m.fail_board(2, 1);
        m.fail_board(2, 3);
        m.fail_board(3, 2);
        let p = m.allocate(1, 3, 3, Heuristics::none()).unwrap();
        assert_eq!(p.boards(), 9);
        m.check_invariants().unwrap();
        // The 2x4 job of the figure needs two full rows.
        let p2 = m.allocate(2, 2, 4, Heuristics::transpose_only());
        // Rows 0/1 are partially taken by the 3x3 job now; expect failure
        // or success depending on column overlap — invariants must hold
        // either way.
        let _ = p2;
        m.check_invariants().unwrap();
    }

    impl Heuristics {
        pub fn transpose_only() -> Self {
            Self {
                transpose: true,
                ..Self::default()
            }
        }
    }

    #[test]
    fn transpose_rescues_tall_jobs() {
        let mut m = BoardMesh::new(8, 2);
        // 4x2 does not fit (only 2 rows); transposed 2x4 does.
        assert_eq!(
            m.allocate(1, 4, 2, Heuristics::none()),
            Err(AllocError::TooLarge)
        );
        let p = m.allocate(1, 4, 2, Heuristics::transpose_only()).unwrap();
        assert_eq!((p.rows.len(), p.cols.len()), (2, 4));
    }

    #[test]
    fn aspect_reshapes_when_square_fails() {
        let mut m = BoardMesh::new(16, 1);
        let h = Heuristics {
            aspect: true,
            transpose: true,
            locality: false,
        };
        // 4x4 cannot fit in one row; 1x16 (aspect 16 > 8) is not allowed,
        // but 2x8 transposed... also impossible with y=1. Only 1x16 would
        // fit and it's beyond MAX_ASPECT, so this must fail.
        assert!(m.allocate(1, 4, 4, h).is_err());
        // 2x4 -> 1x8 via aspect works.
        let p = m.allocate(2, 2, 4, h).unwrap();
        assert_eq!((p.rows.len(), p.cols.len()), (1, 8));
    }

    #[test]
    fn free_returns_boards() {
        let mut m = BoardMesh::new(4, 4);
        m.allocate(1, 2, 2, Heuristics::none()).unwrap();
        assert_eq!(m.allocated_boards(), 4);
        m.free(1);
        assert_eq!(m.allocated_boards(), 0);
        let p = m.allocate(2, 4, 4, Heuristics::none()).unwrap();
        assert_eq!(p.boards(), 16);
    }

    #[test]
    fn utilization_accounts_failures() {
        let mut m = BoardMesh::new(2, 2);
        m.fail_board(0, 0);
        m.allocate(1, 1, 2, Heuristics::none()).unwrap();
        m.allocate(2, 1, 1, Heuristics::none()).unwrap();
        assert_eq!(m.working_boards(), 3);
        assert!((m.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn locality_prefers_compact_columns() {
        let mut m = BoardMesh::new(64, 2);
        // Occupy columns 0..8 of row 0 to push the naive choice around.
        m.allocate(7, 1, 8, Heuristics::none()).unwrap();
        let h = Heuristics {
            locality: true,
            aspect: false,
            transpose: false,
        };
        let p = m.allocate(1, 2, 8, h).unwrap();
        // All chosen columns should sit under one leaf (span 16):
        let t = m.upper_traffic_alltoall(&p.rows, &p.cols);
        assert!(t <= 0.5, "upper traffic {t}");
        m.check_invariants().unwrap();
    }

    #[test]
    fn largest_free_rect_and_fragmentation() {
        let mut m = BoardMesh::new(4, 4);
        assert_eq!(m.largest_free_rect(), (4, 4));
        assert_eq!(m.fragmentation(), 0.0);
        assert_eq!(m.free_boards(), 16);

        // A full middle row splits nothing column-wise: rows need not be
        // contiguous, so a 3x4 virtual sub-mesh survives.
        m.allocate(1, 1, 4, Heuristics::none()).unwrap();
        assert_eq!(m.largest_free_rect(), (3, 4));
        assert_eq!(m.fragmentation(), 0.0);

        // Staggered failures fragment the free space: the free columns
        // alternate between rows, so no rectangle covers all 12 free
        // boards and fragmentation becomes positive.
        let mut m = BoardMesh::new(4, 4);
        for r in 0..4 {
            m.fail_board(r, if r % 2 == 0 { 0 } else { 1 });
        }
        let (u, v) = m.largest_free_rect();
        assert!(u * v >= 8 && u * v < 12, "({u},{v})");
        assert_eq!(m.free_boards(), 12);
        let f = m.fragmentation();
        assert!(f > 0.0 && f < 0.5, "{f}");

        // A narrow early row must be *skipped*, as greedy_find skips it:
        // row 0 offers one free column, row 1 four — the feasible rect is
        // the 1x4 strip (greedy_find(1, 4) succeeds), not a 2x1 column.
        let mut m = BoardMesh::new(4, 2);
        m.fail_board(0, 1);
        m.fail_board(0, 2);
        m.fail_board(0, 3);
        assert_eq!(m.largest_free_rect(), (1, 4));
        assert!(m.allocate(1, 1, 4, Heuristics::none()).is_ok());
        assert!((m.fragmentation() - 0.0).abs() < 1e-9); // 1 board left

        // Full mesh: no free boards, fragmentation defined as 0.
        let mut m = BoardMesh::new(2, 2);
        m.allocate(1, 2, 2, Heuristics::none()).unwrap();
        assert_eq!(m.free_boards(), 0);
        assert_eq!(m.fragmentation(), 0.0);
    }

    #[test]
    fn upper_traffic_metrics_bounds() {
        let m = BoardMesh::new(64, 64);
        // Same leaf -> 0.
        assert_eq!(m.upper_traffic_alltoall(&[0, 1], &[2, 3]), 0.0);
        // Different leaves -> 1 for the column part.
        let t = m.upper_traffic_alltoall(&[0], &[0, 16]);
        assert!(t > 0.49 && t <= 0.51, "{t}");
        let t = m.upper_traffic_allreduce(&[0], &[0, 16]);
        assert!(t > 0.49 && t <= 0.51, "{t}");
    }
}
