//! Mid-run link failure tests: in-run fail/repair epochs, stall/resume,
//! retransmit recovery, structured disconnection errors, and the
//! escape-VC discipline (see `hxnet::route::FailoverTable`).

use crate::apps::{Alltoall, MessageBlast};
use crate::{
    simulate, Application, Ctx, EngineKind, FailureSchedule, MsgInfo, RateMode, SimConfig, SimError,
};
use hxnet::fattree::single_switch;
use hxnet::hammingmesh::HxMeshParams;
use hxnet::torus::TorusParams;
use hxnet::PortId;

/// Torus port slots (same order the builder wires them).
const EAST: PortId = PortId(0);
const WEST: PortId = PortId(1);

fn small_torus() -> hxnet::Network {
    TorusParams {
        cols: 4,
        rows: 4,
        board: 2,
    }
    .build()
}

/// Tentpole acceptance: failing a cable that carries active flows
/// mid-transfer still delivers every byte, on both engines. Rank 0 sends
/// to rank 2 (two hops east or west); the east first-hop link dies
/// shortly after injection, while traffic is in flight on it.
#[test]
fn midrun_failure_conserves_bytes_on_both_engines() {
    let net = small_torus();
    let bytes: u64 = 4 << 20;
    for kind in EngineKind::all() {
        let mut app = MessageBlast::pairs(vec![(0, 2, bytes)]);
        let cfg = SimConfig {
            failures: FailureSchedule::new().fail(1_000, net.endpoints[0], EAST),
            max_time_ps: 10_000_000_000,
            ..SimConfig::default()
        };
        let stats = simulate(&net, cfg, kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.messages_delivered, 1, "{kind}");
        assert_eq!(stats.bytes_delivered, bytes, "{kind}");
        assert_eq!(stats.link_fail_events, 1, "{kind}");
        match kind {
            EngineKind::Flow => {
                assert!(stats.flows_rerouted >= 1, "{kind}: {stats:?}")
            }
            EngineKind::Packet => {
                // The packet transmitted at t=0 is still on the wire at
                // t=1 ns: it is dropped and recovered by retransmission.
                assert!(stats.packet_retransmits >= 1, "{kind}: {stats:?}")
            }
        }
    }
}

/// A fail/repair pair that temporarily disconnects the destination: the
/// flow engine stalls the flow (accumulating stall time) and resumes it
/// on repair; the packet engine parks and retransmits. Both finish clean.
#[test]
fn stalled_flows_resume_after_repair() {
    // Two endpoints behind one switch: each endpoint has exactly one
    // link, so failing endpoint 1's link cuts off the destination.
    let net = single_switch(2, "pair");
    let dst_port = PortId(0);
    let bytes: u64 = 1 << 20;
    for kind in EngineKind::all() {
        let mut app = MessageBlast::pairs(vec![(0, 1, bytes)]);
        let cfg = SimConfig {
            failures: FailureSchedule::new()
                .fail(2_000, net.endpoints[1], dst_port)
                .repair(5_000_000, net.endpoints[1], dst_port),
            max_time_ps: 10_000_000_000,
            ..SimConfig::default()
        };
        let stats = simulate(&net, cfg, kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.bytes_delivered, bytes, "{kind}");
        assert_eq!(stats.link_fail_events, 1, "{kind}");
        assert_eq!(stats.link_repair_events, 1, "{kind}");
        if kind == EngineKind::Flow {
            assert!(stats.flow_stall_ps > 0, "{kind}: {stats:?}");
        }
        // Completion can't beat the repair instant plus the drain time.
        assert!(stats.finish_ps > 5_000_000, "{kind}: {stats:?}");
    }
}

/// A send injected while its destination is disconnected stalls at the
/// NIC (flow engine) instead of panicking, and resumes on repair.
struct DelayedSend {
    bytes: u64,
}

impl Application for DelayedSend {
    fn start(&mut self, ctx: &mut Ctx) {
        ctx.compute(0, 2_000_000, 1); // send fires at 2 µs, mid-outage
    }

    fn on_compute_done(&mut self, ctx: &mut Ctx, rank: u32, _tag: u64) {
        ctx.send(rank, 1, self.bytes, 0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx, _info: MsgInfo) {}
}

#[test]
fn send_while_disconnected_stalls_until_repair() {
    let net = single_switch(2, "pair");
    let dst_port = PortId(0);
    let bytes: u64 = 256 * 1024;
    for kind in EngineKind::all() {
        let mut app = DelayedSend { bytes };
        let cfg = SimConfig {
            failures: FailureSchedule::new()
                .fail(1_000_000, net.endpoints[1], dst_port)
                .repair(8_000_000, net.endpoints[1], dst_port),
            max_time_ps: 10_000_000_000,
            ..SimConfig::default()
        };
        let stats = simulate(&net, cfg, kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.bytes_delivered, bytes, "{kind}");
        assert!(stats.finish_ps > 8_000_000, "{kind}: {stats:?}");
        if kind == EngineKind::Flow {
            // Stalled from injection (2 µs) to repair (8 µs).
            assert!(stats.flow_stall_ps >= 5_000_000, "{kind}: {stats:?}");
        }
    }
}

/// A failure that permanently disconnects the destination ends the run
/// with a structured [`SimError::Disconnected`] — not a panic.
#[test]
fn permanent_disconnection_reports_error_not_panic() {
    let net = single_switch(2, "pair");
    let dst_port = PortId(0);
    for kind in EngineKind::all() {
        let mut app = MessageBlast::pairs(vec![(0, 1, 1 << 20)]);
        let cfg = SimConfig {
            failures: FailureSchedule::new().fail(2_000, net.endpoints[1], dst_port),
            max_time_ps: 1_000_000_000,
            ..SimConfig::default()
        };
        let stats = simulate(&net, cfg, kind, &mut app);
        assert!(!stats.clean(), "{kind}: {stats:?}");
        assert_eq!(stats.undelivered_messages, 1, "{kind}");
        match stats.error {
            Some(SimError::Disconnected {
                src_rank: 0,
                dst_rank: 1,
                failed_links: 1,
            }) => {}
            ref other => panic!("{kind}: expected Disconnected, got {other:?}"),
        }
    }
}

/// Differential pin (satellite 2): a schedule whose events all land
/// beyond the traffic horizon is bitwise-identical to no schedule at
/// all, on both engines and both rate modes. `Debug` formatting covers
/// every stat field, including float bit patterns printed exactly.
#[test]
fn after_horizon_schedule_is_bitwise_inert() {
    let net = HxMeshParams::square(2, 2).build();
    let cable = net.topo.cables()[0];
    for kind in EngineKind::all() {
        for rate_mode in [RateMode::Full, RateMode::Incremental] {
            let run = |failures: FailureSchedule| {
                let mut app = Alltoall::new(net.num_ranks(), 16 * 1024, 2);
                let cfg = SimConfig {
                    failures,
                    rate_mode,
                    trace_rates: kind == EngineKind::Flow,
                    ..SimConfig::default()
                };
                simulate(&net, cfg, kind, &mut app)
            };
            let base = run(FailureSchedule::default());
            assert!(base.clean());
            let horizon = base.finish_ps + 1_000_000;
            let sched = FailureSchedule::new()
                .fail(horizon, cable.0, cable.1)
                .repair(horizon + 500_000, cable.0, cable.1);
            let with = run(sched);
            assert_eq!(
                format!("{base:?}"),
                format!("{with:?}"),
                "{kind}/{rate_mode:?}: after-horizon schedule perturbed the run"
            );
            assert_eq!(with.packet_retransmits, 0);
            assert_eq!(with.link_fail_events, 0);
        }
    }
}

/// Escape-VC discipline: when the failure set empties a router's
/// structured candidate set, the failover detour hops escape to the
/// dedicated VC (== the router's structured VC count) instead of
/// inheriting the primary's.
#[test]
fn failover_detours_escape_to_the_dedicated_vc() {
    let net = small_torus();
    let mut topo = net.topo.clone();
    let n0 = net.endpoints[0];
    // Kill both X-direction links of node 0: any same-row destination
    // now requires a detour through N/S, which only the escape VC serves.
    topo.fail_link(n0, EAST);
    topo.fail_link(n0, WEST);
    let mut cand = Vec::new();
    net.router
        .candidates(&topo, n0, 0, net.endpoints[2], &mut cand);
    assert!(!cand.is_empty(), "failover produced no detour");
    for h in &cand {
        assert_eq!(
            h.vc,
            net.router.num_vcs(),
            "detour hop must use the escape VC"
        );
        assert!(!topo.link_failed(n0, h.port), "dead link offered");
    }
    // And the escape VC keeps making progress from any node.
    let mut cand2 = Vec::new();
    net.router.candidates(
        &topo,
        net.endpoints[4],
        net.router.num_vcs(),
        net.endpoints[2],
        &mut cand2,
    );
    assert!(!cand2.is_empty(), "escape VC stuck mid-path");
}

/// Deadlock regression for the torus/HxMesh wrap cases: heavy traffic
/// over a failure set that forces escape-VC detours across the wrap
/// links must still drain (packet engine, both topologies).
#[test]
fn escape_vc_survives_wrap_traffic_under_failures() {
    let fail_x = |net: &mut hxnet::Network| {
        let n0 = net.endpoints[0];
        net.topo.fail_link(n0, EAST);
        net.topo.fail_link(n0, WEST);
    };
    let mut torus = small_torus();
    fail_x(&mut torus);
    let mut hxmesh = HxMeshParams::square(2, 2).build();
    // HxMesh board-edge detours cross the sparse mesh links; fail the
    // first two cables (deterministic) to force them.
    for c in hxmesh.topo.cables().into_iter().take(2) {
        hxmesh.topo.fail_link(c.0, c.1);
    }
    for net in [&torus, &hxmesh] {
        let mut app = Alltoall::new(net.num_ranks(), 32 * 1024, 4);
        let cfg = SimConfig {
            max_time_ps: 50_000_000_000,
            ..SimConfig::default()
        };
        let stats = simulate(net, cfg, EngineKind::Packet, &mut app);
        assert!(stats.clean(), "{}: {stats:?}", net.name);
        assert_eq!(
            stats.messages_delivered as usize,
            net.num_ranks() * (net.num_ranks() - 1),
            "{}",
            net.name
        );
    }
}

/// The retransmit/backoff policy parses from config and the Reroute
/// policy also recovers dropped packets (faster turnaround, same
/// delivery guarantee).
#[test]
fn reroute_policy_recovers_dropped_packets() {
    let net = small_torus();
    let bytes: u64 = 4 << 20;
    let mut app = MessageBlast::pairs(vec![(0, 2, bytes)]);
    let cfg = SimConfig {
        failures: FailureSchedule::new().fail(1_000, net.endpoints[0], EAST),
        retransmit: crate::RetransmitPolicy::Reroute,
        max_time_ps: 10_000_000_000,
        ..SimConfig::default()
    };
    let stats = simulate(&net, cfg, EngineKind::Packet, &mut app);
    assert!(stats.clean(), "{stats:?}");
    assert_eq!(stats.bytes_delivered, bytes);
    assert!(stats.packet_retransmits >= 1, "{stats:?}");
}
