//! Ready-made traffic applications: point-to-point blasts, the
//! balanced-shift alltoall of §V-A1a, random permutations (§V-A1b), and
//! uniform-random background traffic for stress tests.

use crate::engine::{Application, Ctx, MsgInfo};
use crate::Time;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Sends a fixed list of (src, dst, bytes) messages at time 0 and records
/// their completion times.
pub struct MessageBlast {
    sends: Vec<(u32, u32, u64)>,
    pub completions: Vec<(u32, u32, Time)>,
}

impl MessageBlast {
    pub fn pairs(sends: Vec<(u32, u32, u64)>) -> Self {
        Self {
            sends,
            completions: Vec::new(),
        }
    }
}

impl Application for MessageBlast {
    fn start(&mut self, ctx: &mut Ctx) {
        for (i, &(s, d, b)) in self.sends.iter().enumerate() {
            ctx.send(s, d, b, i as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx, info: MsgInfo) {
        self.completions
            .push((info.src_rank, info.dst_rank, ctx.now()));
    }
}

/// Balanced-shift alltoall: each of `p` ranks performs `p-1` iterations; in
/// iteration `i`, rank `j` sends `bytes` to rank `(j + i) mod p` (§V-A1a).
/// `window` iterations may be in flight per rank; the next send is issued
/// when the previous one completes locally.
pub struct Alltoall {
    p: u32,
    bytes: u64,
    window: u32,
    /// Iterations (shifts) each rank performs; `p - 1` for the full
    /// alltoall, less for a shift-capped scale benchmark.
    shifts: u32,
    /// Next iteration index per rank.
    next_iter: Vec<u32>,
    pub done_ranks: u32,
    pub finish: Time,
}

impl Alltoall {
    pub fn new(p: usize, bytes: u64, window: u32) -> Self {
        Self::with_shifts(p, bytes, window, p as u32 - 1)
    }

    /// An alltoall truncated to the first `shifts` of its `p - 1`
    /// balanced-shift iterations: in iteration `i`, rank `j` still sends
    /// to `(j + i + 1) mod p`, so every iteration is a full permutation
    /// and the traffic keeps the alltoall's uniform all-pairs character —
    /// there is just less of it. This is what makes a 16k-endpoint
    /// "quick-scale" run feasible (`perf_smoke`'s `flow_scale` step: the
    /// untruncated pattern would be p·(p-1) ≈ 2.7·10⁸ messages).
    pub fn with_shifts(p: usize, bytes: u64, window: u32, shifts: u32) -> Self {
        Self {
            p: p as u32,
            bytes,
            window: window.max(1),
            shifts: shifts.clamp(1, p as u32 - 1),
            next_iter: vec![0; p],
            done_ranks: 0,
            finish: 0,
        }
    }

    /// Total bytes each rank sends.
    pub fn bytes_per_rank(&self) -> u64 {
        self.bytes * self.shifts as u64
    }

    fn issue(&mut self, ctx: &mut Ctx, rank: u32) {
        let i = self.next_iter[rank as usize];
        if i >= self.shifts {
            if i == self.shifts {
                self.done_ranks += 1;
                self.finish = ctx.now();
                self.next_iter[rank as usize] += 1;
            }
            return;
        }
        self.next_iter[rank as usize] = i + 1;
        let dst = (rank + i + 1) % self.p;
        ctx.send(rank, dst, self.bytes, rank as u64);
    }
}

impl Application for Alltoall {
    fn start(&mut self, ctx: &mut Ctx) {
        for r in 0..self.p {
            for _ in 0..self.window {
                self.issue(ctx, r);
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx, _info: MsgInfo) {}

    fn on_send_complete(&mut self, ctx: &mut Ctx, info: MsgInfo) {
        self.issue(ctx, info.src_rank);
    }
}

/// Random-permutation traffic (§V-A1b): every rank sends `bytes` to a
/// unique random peer, in `rounds` back-to-back messages.
pub struct Permutation {
    perm: Vec<u32>,
    bytes: u64,
    rounds: u32,
    sent: Vec<u32>,
}

impl Permutation {
    pub fn new(p: usize, bytes: u64, rounds: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Derangement-ish: shuffle until no fixed points (cheap for p >= 2).
        let mut perm: Vec<u32> = (0..p as u32).collect();
        loop {
            perm.shuffle(&mut rng);
            if perm.iter().enumerate().all(|(i, &d)| i as u32 != d) {
                break;
            }
        }
        Self {
            perm,
            bytes,
            rounds: rounds.max(1),
            sent: vec![0; p],
        }
    }

    pub fn destination(&self, rank: usize) -> u32 {
        self.perm[rank]
    }

    fn issue(&mut self, ctx: &mut Ctx, rank: u32) {
        if self.sent[rank as usize] >= self.rounds {
            return;
        }
        self.sent[rank as usize] += 1;
        ctx.send(rank, self.perm[rank as usize], self.bytes, rank as u64);
    }
}

impl Application for Permutation {
    fn start(&mut self, ctx: &mut Ctx) {
        for r in 0..self.perm.len() as u32 {
            self.issue(ctx, r);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx, _info: MsgInfo) {}

    fn on_send_complete(&mut self, ctx: &mut Ctx, info: MsgInfo) {
        self.issue(ctx, info.src_rank);
    }
}

/// Uniform-random traffic: each rank sends `count` messages of `bytes` to
/// independently chosen random destinations. Used for deadlock smoke tests.
pub struct UniformRandom {
    p: u32,
    bytes: u64,
    count: u32,
    seed: u64,
    remaining: Vec<u32>,
}

impl UniformRandom {
    pub fn new(p: usize, bytes: u64, count: u32, seed: u64) -> Self {
        Self {
            p: p as u32,
            bytes,
            count,
            seed,
            remaining: vec![count; p],
        }
    }

    fn issue(&mut self, ctx: &mut Ctx, rank: u32, rng: &mut StdRng) {
        if self.remaining[rank as usize] == 0 {
            return;
        }
        self.remaining[rank as usize] -= 1;
        let mut dst = rng.random_range(0..self.p);
        while dst == rank {
            dst = rng.random_range(0..self.p);
        }
        ctx.send(rank, dst, self.bytes, rank as u64);
    }
}

impl Application for UniformRandom {
    fn start(&mut self, ctx: &mut Ctx) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        for r in 0..self.p {
            self.issue(ctx, r, &mut rng);
        }
        let _ = self.count;
    }

    fn on_message(&mut self, _ctx: &mut Ctx, _info: MsgInfo) {}

    fn on_send_complete(&mut self, ctx: &mut Ctx, info: MsgInfo) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (info.tag << 17) ^ info.src_rank as u64);
        self.issue(ctx, info.src_rank, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, SimConfig};
    use hxnet::fattree::single_switch;
    use hxnet::hammingmesh::HxMeshParams;
    use hxnet::torus::TorusParams;

    #[test]
    fn single_message_latency_is_sane() {
        // Two endpoints on one switch: 64 KiB at 400 Gb/s.
        let net = single_switch(2, "pair");
        let mut app = MessageBlast::pairs(vec![(0, 1, 65536)]);
        let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.bytes_delivered, 65536);
        // Serialization alone is 65536 B * 20 ps = 1.31 us over 2 hops with
        // pipelining at packet granularity; total must be under 3 us and
        // above the pure serialization time.
        let ser = 65536 * 20;
        assert!(stats.finish_ps > ser, "{}", stats.finish_ps);
        assert!(stats.finish_ps < 3 * ser, "{}", stats.finish_ps);
    }

    #[test]
    fn bandwidth_approaches_line_rate_for_large_messages() {
        let net = single_switch(2, "pair");
        let bytes = 4 << 20;
        let mut app = MessageBlast::pairs(vec![(0, 1, bytes)]);
        let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean());
        let gbps = stats.delivered_gbps();
        assert!(gbps > 350.0 && gbps <= 400.0, "got {gbps} Gb/s");
    }

    #[test]
    fn alltoall_completes_on_hxmesh() {
        let net = HxMeshParams::square(2, 2).build();
        let mut app = Alltoall::new(net.num_ranks(), 16 * 1024, 2);
        let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.messages_delivered as usize, 16 * 15);
    }

    #[test]
    fn permutation_completes_on_torus() {
        let net = TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build();
        let mut app = Permutation::new(net.num_ranks(), 32 * 1024, 2, 7);
        let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.messages_delivered, 32);
    }

    #[test]
    fn uniform_random_is_deadlock_free_on_all_topologies() {
        let nets = vec![
            HxMeshParams::square(2, 4).build(),
            TorusParams {
                cols: 8,
                rows: 8,
                board: 2,
            }
            .build(),
            hxnet::dragonfly::DragonflyParams {
                a: 4,
                p: 2,
                h: 2,
                groups: 5,
            }
            .build(),
            hxnet::fattree::FatTreeParams::scaled_nonblocking(64, 16).build(),
            hxnet::hyperx::HyperXParams {
                x: 8,
                y: 8,
                radix: 64,
            }
            .build(),
        ];
        for net in &nets {
            let mut app = UniformRandom::new(net.num_ranks(), 24 * 1024, 8, 99);
            // 200 ms guard
            let cfg = SimConfig {
                max_time_ps: 200_000_000_000,
                ..Default::default()
            };
            let stats = Engine::new(net, cfg).run(&mut app);
            assert!(stats.clean(), "{}: {stats:?}", net.name);
        }
    }

    #[test]
    fn shift_capped_alltoall_sends_one_permutation_per_shift() {
        let net = HxMeshParams::square(2, 2).build();
        let p = net.num_ranks();
        let mut app = Alltoall::with_shifts(p, 8192, 2, 3);
        let stats = crate::FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.messages_delivered as usize, p * 3);
        assert_eq!(app.bytes_per_rank(), 8192 * 3);
        // The cap degenerates to the full alltoall at shifts = p - 1.
        let full = Alltoall::new(p, 8192, 2);
        assert_eq!(full.bytes_per_rank(), 8192 * (p as u64 - 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let net = HxMeshParams::square(2, 2).build();
        let run = || {
            let mut app = Alltoall::new(net.num_ranks(), 8192, 1);
            Engine::new(&net, SimConfig::default())
                .run(&mut app)
                .finish_ps
        };
        assert_eq!(run(), run());
    }
}
