//! Flow-level fluid simulation engine — the fast path.
//!
//! Instead of moving individual packets through buffered switches, this
//! backend models every in-flight message as a *fluid flow* spread over a
//! small set of routes (one per minimal first-hop candidate, plus one set
//! per router-provided waypoint class — e.g. the HxMesh column-first
//! path). Link bandwidth is shared between the routes crossing it by
//! **max-min fairness** (progressive filling); a message drains at the sum
//! of its routes' fair shares, mirroring how the packet engine sprays
//! packets over all minimal paths. Simulated time advances in
//! *rate-change epochs*: the engine jumps directly to the next instant at
//! which the allocation can change (a message drains, a delivery or a
//! compute completes) instead of executing per-packet events.
//!
//! ## Fidelity trade-offs versus the packet engine
//!
//! * Routes are fixed at injection; the packet engine re-balances every
//!   packet against live queue depths.
//! * No buffer occupancy, credit stalls, or head-of-line blocking: links
//!   are ideal rate servers, so congestion spreads instantaneously.
//! * Propagation and per-hop pipeline latency are charged once per message
//!   (after the last byte drains) instead of per packet, which
//!   under-reports pipelining for multi-packet messages on long paths.
//!
//! In exchange the run time is proportional to the number of rate-change
//! epochs (~2 per message), independent of message size — per-packet
//! events make the packet engine's cost grow linearly with bytes. At
//! paper scale (Figs. 11-13: MiB-sized transfers over 1,024+ endpoints)
//! this is the difference between minutes and seconds. Completion times
//! agree with the packet engine within the cross-validation tolerance
//! asserted in `tests/flow_vs_packet.rs` and documented in the README.
//!
//! ## O(affected) incremental rate solving
//!
//! Max-min allocations decompose over the connected components of the
//! *link-sharing graph* (flows as nodes, an edge wherever two flows cross
//! the same directed link): filling one component never reads a link of
//! another. The solver exploits that by refilling, on each dirty epoch,
//! only the components reachable from a *change seed* — a flow activated
//! since the last solve (new send, NIC un-gating) or a link where a drain
//! retired a shared subscription. Everything else keeps its rates. This
//! generalizes the PR 5 disjoint-drain skip from "no shared link anywhere"
//! to "recompute only where sharing changed"; on large symmetric patterns
//! almost every epoch touches a small component, which is what makes
//! 16k-endpoint sweeps tractable (see `perf_smoke --quick`'s `flow_scale`
//! step). [`RateMode::Full`] widens every solve to all components; since
//! `FlowEngine::fill_component` is a pure function of component
//! membership, the widened solve recomputes identical bit patterns for
//! unchanged components, and the two modes stay bitwise-equivalent —
//! `tests/flow_incremental_equiv.rs` pins that differentially.
//!
//! ## Fault injection: frozen failure sets and mid-run link events
//!
//! Routes avoid links marked failed via [`hxnet::Topology::fail_link`]
//! exactly like the packet engine does, because both ask the same
//! [`hxnet::Router`] for candidates: under fault injection every router
//! filters its first-hop, transit, and waypoint candidates through
//! `hxnet::route::FailoverTable`, so the multipath route sets built here
//! contain only healthy links and the two engines agree on which paths
//! exist. Waypoint classes the failure set cuts off are dropped by
//! `Router::waypoint_options` before any subflow is built over them.
//!
//! Beyond the frozen (pre-run) failure set, [`SimConfig::failures`] can
//! carry a [`crate::FailureSchedule`] of *in-run* fail/repair events. The
//! schedule advances a private copy of the topology at the scheduled
//! instants, merged into the rate-change epoch loop; a cable failure is
//! just another change seed for the O(affected) incremental solver.
//! Flows whose route set crosses the dead cable bank their
//! already-carried bytes into the traffic stats (exactly the drain-time
//! flush) and re-route over the failure-epoch topology; flows the event
//! leaves with no healthy path *stall* — they hold their remaining bytes
//! off the network, accumulate [`SimStats::flow_stall_ps`], and resume
//! when a scheduled repair reconnects them. Routes are still fixed at
//! (re-)injection: a repair does not pull already-routed flows back onto
//! the shorter healthy path, mirroring how real fabrics leave
//! established routes alone until the next path computation. A run that
//! ends with stalled flows reports [`SimError::Disconnected`] instead of
//! panicking; the same applies to a send injected while its destination
//! is unreachable.

use crate::app::{Application, Cmd, Ctx, MsgInfo};
use crate::failure::LinkEventKind;
use crate::stats::{SimError, SimStats};
use crate::{RateMode, SimConfig, Time};
use hxnet::route::Hop;
use hxnet::{Network, NodeId, PortId, Topology};
use hxtelemetry::{CounterId, HistId, Registry, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type FlowId = u32;
type MsgId = u32;

/// Bytes below which a flow counts as drained (float slop guard).
const DRAIN_EPS: f64 = 1e-3;

/// Water-filling level slack: every route whose own bottleneck share is
/// within this factor of the round's tightest share freezes in the same
/// round, at its own share. Collapses clusters of near-identical levels
/// (ubiquitous under symmetric traffic) into one round each; the rate
/// assignment error is bounded by the slack and only affects routes whose
/// fair share was within 5% of the level anyway.
const LEVEL_SLACK: f64 = 0.05;

/// Epoch coalescing: drains and timed events within this *relative* window
/// of the epoch instant are processed together, so waves of
/// near-simultaneous completions (staggered by float-level rate
/// differences, e.g. the per-step chunks of a pipelined ring) cost one
/// rate recomputation instead of hundreds. Bounds the per-event timing
/// error at 0.1% of elapsed simulated time — two orders of magnitude
/// below the flow-vs-packet cross-validation tolerance.
const COALESCE_REL: f64 = 1e-3;

/// Absolute floor of the coalescing window, in picoseconds (1 ns).
const COALESCE_ABS_PS: f64 = 1_000.0;

/// One route of a flow: dense directed-link indices, the current max-min
/// share, and the bytes it has carried so far (for traffic accounting).
struct Route {
    links: Vec<u32>,
    rate: f64,
    carried: f64,
}

/// One in-flight message, fluid over its set of routes.
struct FlowState {
    msg: MsgId,
    routes: Vec<Route>,
    /// Worst-case route latency: propagation + per-hop pipeline latency.
    latency_ps: u64,
    remaining: f64,
    /// Aggregate rate over all routes in bytes/ps.
    rate: f64,
    /// Waiting in the NIC injection queues (see `inj_queue`), not draining.
    gated: bool,
    /// Message exceeds the per-port NIC window: its packets would
    /// interleave with successors instead of passing as one FIFO burst.
    large: bool,
}

struct MsgState {
    info: MsgInfo,
    done: bool,
    /// Simulated send instant, for the delivery-latency histogram.
    start_ps: Time,
}

/// Timed events that are not flow drains (those are derived from rates).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Event {
    /// A drained message's last byte reaches the destination.
    Deliver(MsgId),
    /// Application compute finished on (rank, tag).
    Compute(u32, u64),
}

/// Heap key ordering f64 times; all simulation times are finite and >= 0.
#[derive(Clone, Copy, PartialEq, Debug)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The flow-level simulation engine, borrowed over a [`Network`].
///
/// Drop-in interchangeable with the packet-level [`crate::Engine`]: same
/// constructor shape, same [`Application`] surface, same [`SimStats`] out.
pub struct FlowEngine<'n> {
    net: &'n Network,
    cfg: SimConfig,
    now: f64,
    seq: u64,
    queue: BinaryHeap<Reverse<(TimeKey, u64, Event)>>,
    flows: Vec<FlowState>,
    free_flows: Vec<FlowId>,
    /// Flows currently draining.
    active: Vec<FlowId>,
    msgs: Vec<MsgState>,
    /// Dense directed-link index: `port_base[node] + port`.
    port_base: Vec<usize>,
    /// Reverse of the dense index, for stats attribution.
    link_owner: Vec<(NodeId, PortId)>,
    /// Per directed link: capacity in bytes/ps (from the link spec).
    link_cap: Vec<f64>,
    /// Per directed link: number of active routes crossing it.
    link_nflows: Vec<u32>,
    /// Water-filling scratch, persistent to stay allocation-free: links
    /// touched this round, per-link residual capacity / unsatisfied count,
    /// and the generation stamp that lazily invalidates them.
    touched: Vec<usize>,
    residual: Vec<f64>,
    unsat: Vec<u32>,
    /// Per touched link, the fair share at the current level (refreshed
    /// once per water-filling round so route scans are division-free).
    share: Vec<f64>,
    link_gen: Vec<u32>,
    rate_gen: u32,
    /// Water-filling worklist of the (flow, route) units of the component
    /// currently being filled (buffer recycled across fills).
    pending: Vec<(FlowId, u32)>,
    /// Per directed link: the *draining* (active, un-gated) flows that
    /// cross it — the incidence side of the link-sharing graph the
    /// incremental solver walks. Gated flows are absent: they hold no
    /// rate and do not constrain the fill. One entry per flow no matter
    /// how many of its routes cross the link.
    link_flows: Vec<Vec<FlowId>>,
    /// Change seeds accumulated since the last solve: flows activated
    /// (new sends and NIC un-gatings) ...
    seed_flows: Vec<FlowId>,
    /// ... and links where a drain retired a shared subscription.
    seed_links: Vec<u32>,
    /// Component-walk visited stamps, lazily invalidated by `comp_gen`.
    flow_seen: Vec<u32>,
    link_seen: Vec<u32>,
    comp_gen: u32,
    /// Dedup stamps for incidence registration within one [`Self::activate`].
    inc_seen: Vec<u32>,
    inc_gen: u32,
    /// Component-walk frontier scratch.
    frontier: Vec<FlowId>,
    /// NIC injection FIFO per directed link (indexed like `link_cap`; only
    /// endpoint injection ports are ever populated). Mirrors the packet
    /// engine's per-port NIC window: a message that fits the window
    /// traverses the port as one FIFO burst, so flows queued behind it
    /// wait for its drain — that serialization is what keeps
    /// dependency-chained pipelines (ring collectives) honest. Messages
    /// larger than the window interleave packet-by-packet in the packet
    /// engine, so flows behind them fair-share immediately.
    inj_queue: Vec<Vec<FlowId>>,
    /// Recycled route link-vectors, to keep steady state allocation-free.
    spare_links: Vec<Vec<u32>>,
    stats: SimStats,
    /// Scratch for routing candidates.
    cand: Vec<Hop>,
    /// Scratch for waypoint classes.
    waypoints: Vec<NodeId>,
    /// Telemetry (see `hxtelemetry::collect`). The enabled flags are
    /// sampled once at construction, so every instrumentation site below
    /// costs one predictable branch when collection is off.
    sink: TraceSink,
    tel_metrics: bool,
    tel_any: bool,
    reg: Registry,
    c_flows_started: CounterId,
    c_flows_drained: CounterId,
    c_rate_epochs: CounterId,
    c_rate_changed: CounterId,
    c_sim_events: CounterId,
    h_msg_latency: HistId,
    /// `(flow, pre-fill rate bits)` scratch for the mode-invariant
    /// touched-flow count (see `recompute_rates`).
    old_rate_scratch: Vec<(FlowId, u64)>,
    /// Flows whose rate bit pattern changed in the current epoch.
    epoch_changed: u64,
    /// Private failure-epoch topology, `Some` iff the run carries a
    /// non-empty [`crate::FailureSchedule`]. Cloned once at construction
    /// so mid-run fail/repair events never mutate the shared `Network`;
    /// an empty schedule routes over `net.topo` directly and pays only
    /// one `next_sched < len` branch per epoch.
    topo: Option<Topology>,
    /// Cursor into `cfg.failures` (sorted by time).
    next_sched: usize,
    /// Flows with no healthy path, as `(flow, stall start instant)`.
    /// Retried on every repair; still-stalled entries at the end of the
    /// run surface as [`SimError::Disconnected`].
    stalled: Vec<(FlowId, f64)>,
    c_link_fail: CounterId,
    c_link_repair: CounterId,
    c_flow_reroute: CounterId,
}

impl<'n> FlowEngine<'n> {
    pub fn new(net: &'n Network, cfg: SimConfig) -> Self {
        let mut port_base = Vec::with_capacity(net.topo.num_nodes() + 1);
        let mut total = 0usize;
        for (_, n) in net.topo.nodes() {
            port_base.push(total);
            total += n.ports.len();
        }
        port_base.push(total);
        let mut reg = Registry::new();
        let mut link_cap = vec![0.0; total];
        let mut link_owner = vec![(NodeId(0), PortId(0)); total];
        for (id, n) in net.topo.nodes() {
            for (p, link) in n.ports.iter().enumerate() {
                link_cap[port_base[id.idx()] + p] = 1.0 / link.spec.ps_per_byte;
                link_owner[port_base[id.idx()] + p] = (id, PortId(p as u16));
            }
        }
        Self {
            net,
            now: 0.0,
            seq: 0,
            queue: BinaryHeap::new(),
            flows: Vec::new(),
            free_flows: Vec::new(),
            active: Vec::new(),
            msgs: Vec::new(),
            port_base,
            link_owner,
            link_cap,
            link_nflows: vec![0; total],
            touched: Vec::new(),
            residual: vec![0.0; total],
            unsat: vec![0; total],
            share: vec![0.0; total],
            link_gen: vec![0; total],
            rate_gen: 0,
            pending: Vec::new(),
            link_flows: vec![Vec::new(); total],
            seed_flows: Vec::new(),
            seed_links: Vec::new(),
            flow_seen: Vec::new(),
            link_seen: vec![0; total],
            comp_gen: 0,
            inc_seen: vec![0; total],
            inc_gen: 0,
            frontier: Vec::new(),
            inj_queue: vec![Vec::new(); total],
            spare_links: Vec::new(),
            stats: SimStats {
                node_forwarded: vec![0; net.topo.num_nodes()],
                rank_recv_done_ps: vec![0; net.endpoints.len()],
                rank_recv_bytes: vec![0; net.endpoints.len()],
                ..SimStats::default()
            },
            cand: Vec::new(),
            waypoints: Vec::new(),
            sink: TraceSink::new(hxtelemetry::collect::trace_enabled()),
            tel_metrics: hxtelemetry::collect::metrics_enabled(),
            tel_any: hxtelemetry::collect::trace_enabled()
                || hxtelemetry::collect::metrics_enabled(),
            c_flows_started: reg.counter("flows_started"),
            c_flows_drained: reg.counter("flows_drained"),
            c_rate_epochs: reg.counter("rate_epochs"),
            c_rate_changed: reg.counter("rate_changed_flows"),
            c_sim_events: reg.counter("sim_events"),
            h_msg_latency: reg.histogram("msg_latency_ps"),
            c_link_fail: reg.counter("link_fail_events"),
            c_link_repair: reg.counter("link_repair_events"),
            c_flow_reroute: reg.counter("flow_reroutes"),
            topo: (!cfg.failures.is_empty()).then(|| net.topo.clone()),
            next_sched: 0,
            stalled: Vec::new(),
            reg,
            old_rate_scratch: Vec::new(),
            epoch_changed: 0,
            cfg,
        }
    }

    #[inline]
    fn link_idx(&self, node: NodeId, port: PortId) -> u32 {
        (self.port_base[node.idx()] + port.idx()) as u32
    }

    #[inline]
    fn push_event(&mut self, t: f64, e: Event) {
        self.seq += 1;
        self.queue.push(Reverse((TimeKey(t), self.seq, e)));
    }

    /// Run the application to completion. Returns the collected statistics.
    pub fn run(mut self, app: &mut dyn Application) -> SimStats {
        let mut cmds = Vec::new();
        {
            let mut ctx = Ctx::new(0, &mut cmds);
            app.start(&mut ctx);
        }
        self.apply_cmds(&mut cmds, app);
        self.recompute_rates();

        loop {
            // Next rate-change instant: earliest flow drain or timed event.
            let mut t_next = f64::INFINITY;
            for &f in &self.active {
                let fl = &self.flows[f as usize];
                if fl.rate > 0.0 {
                    t_next = t_next.min(self.now + fl.remaining / fl.rate);
                }
            }
            if let Some(Reverse((TimeKey(t), _, _))) = self.queue.peek() {
                t_next = t_next.min(*t);
            }
            // Merge the failure schedule into the epoch instants. When
            // traffic is exhausted (`t_next` infinite) a pending event
            // only keeps the run alive if a stalled flow is waiting for
            // a repair — otherwise the remaining schedule is beyond the
            // traffic horizon and must stay inert, so runs whose events
            // all land after completion are bitwise-identical to runs
            // with no schedule at all.
            {
                let sched = self.cfg.failures.events();
                if self.next_sched < sched.len() {
                    let st = (sched[self.next_sched].at_ps as f64).max(self.now);
                    if t_next.is_finite() {
                        t_next = t_next.min(st);
                    } else if !self.stalled.is_empty() {
                        t_next = st;
                    }
                }
            }
            if !t_next.is_finite() {
                break; // no active flows and no events: done (or stuck)
            }
            if t_next > self.cfg.max_time_ps as f64 {
                self.now = self.cfg.max_time_ps as f64;
                self.stats.timed_out = true;
                break;
            }
            self.stats.events += 1;

            // Advance every active flow to t_next at its current rates.
            let dt = t_next - self.now;
            self.now = t_next;
            for &f in &self.active {
                let fl = &mut self.flows[f as usize];
                fl.remaining -= fl.rate * dt;
                for r in &mut fl.routes {
                    r.carried += r.rate * dt;
                }
            }

            let quantum = (self.now * COALESCE_REL).max(COALESCE_ABS_PS);
            let mut dirty = false;
            dirty |= self.complete_drained_flows(quantum, app);
            dirty |= self.apply_link_events(quantum);
            dirty |= self.pop_due_events(quantum, app);
            if dirty {
                self.recompute_rates();
            }
        }

        // Flows still stalled when the run ends never found a healthy
        // path: charge their wait and report the disconnection instead of
        // panicking (their messages also count as undelivered below).
        if !self.stalled.is_empty() {
            for &(_f, since) in &self.stalled {
                self.stats.flow_stall_ps += (self.now - since).max(0.0).round() as u64;
            }
            let (f, _) = self.stalled[0];
            let info = self.msgs[self.flows[f as usize].msg as usize].info;
            let failed = self
                .topo
                .as_ref()
                .unwrap_or(&self.net.topo)
                .count_failed_links();
            self.stats.error = Some(SimError::Disconnected {
                src_rank: info.src_rank,
                dst_rank: info.dst_rank,
                failed_links: failed,
            });
        }
        self.stats.finish_ps = self.now.round() as Time;
        self.stats.undelivered_messages = self.msgs.iter().filter(|m| !m.done).count();
        if self.tel_any {
            if self.tel_metrics {
                self.reg.inc(self.c_sim_events, self.stats.events);
            }
            let reg = std::mem::take(&mut self.reg);
            let sink = std::mem::replace(&mut self.sink, TraceSink::disabled());
            hxtelemetry::collect::submit(reg, sink);
        }
        self.stats
    }

    /// Retire flows whose bytes have fully drained — or would drain within
    /// the coalescing `quantum` at their current rate (their residual
    /// bytes are credited to the routes, so byte accounting stays exact
    /// and only the completion *instant* moves by < quantum). Fires local
    /// send completion and schedules the latency-delayed delivery.
    ///
    /// Returns true only when the retirements can change some remaining
    /// flow's rate: a retired flow shared a link with a route that is
    /// still allocated (`link_nflows` stays positive after its decrement),
    /// a gated flow was released from a NIC FIFO, or a send-completion
    /// callback issued new commands. A flow whose links all drop to zero
    /// subscribers leaves every other flow's constraint set — and hence
    /// the max-min solution — untouched, so its drain skips the
    /// progressive-filling recompute entirely.
    fn complete_drained_flows(&mut self, quantum: f64, app: &mut dyn Application) -> bool {
        let mut needs_recompute = false;
        let mut cmds = Vec::new();
        let mut i = 0;
        while i < self.active.len() {
            let f = self.active[i];
            {
                let fl = &mut self.flows[f as usize];
                if fl.remaining > DRAIN_EPS + fl.rate * quantum {
                    i += 1;
                    continue;
                }
                // Credit the not-yet-drained residue to the routes,
                // proportionally to their rates.
                if fl.remaining > 0.0 && fl.rate > 0.0 {
                    let scale = fl.remaining / fl.rate;
                    for r in &mut fl.routes {
                        r.carried += r.rate * scale;
                    }
                }
                fl.remaining = 0.0;
            }
            self.active.swap_remove(i);
            // Release the NIC injection FIFOs and let successors through.
            let mut candidates: Vec<FlowId> = Vec::new();
            for li in Self::first_links(&self.flows[f as usize].routes) {
                let q = &mut self.inj_queue[li as usize];
                let pos = q
                    .iter()
                    .position(|&g| g == f)
                    // hxlint: allow(P001) a gated flow is always parked in its NIC injection queue
                    .expect("flow missing from NIC queue");
                q.remove(pos);
                for &g in q.iter() {
                    if self.flows[g as usize].gated && !candidates.contains(&g) {
                        candidates.push(g);
                    }
                }
            }
            for g in candidates {
                if self.flows[g as usize].gated && self.nic_eligible(g) {
                    self.activate(g);
                    needs_recompute = true;
                }
            }
            let fl = &self.flows[f as usize];
            let (msg, latency_ps) = (fl.msg, fl.latency_ps);
            needs_recompute |= self.flush_routes(f);
            self.free_flows.push(f);

            let info = self.msgs[msg as usize].info;
            let now_ps = self.now.round() as Time;
            if self.sink.enabled() {
                self.sink.instant_args(
                    "flow_drain",
                    "flow",
                    now_ps,
                    vec![("src", info.src_rank as u64), ("dst", info.dst_rank as u64)],
                );
            }
            if self.tel_metrics {
                self.reg.inc(self.c_flows_drained, 1);
            }
            {
                let mut ctx = Ctx::new(now_ps, &mut cmds);
                app.on_send_complete(&mut ctx, info);
            }
            // The last byte still has to propagate down the route.
            self.push_event(self.now + latency_ps as f64, Event::Deliver(msg));
        }
        if !cmds.is_empty() {
            self.apply_cmds(&mut cmds, app);
            needs_recompute = true;
        }
        needs_recompute
    }

    /// Bank a flow's carried bytes into the traffic stats and release its
    /// link subscriptions, draining its route set. Shared between drain
    /// retirement and mid-run reroutes (a reroute is an early drain of the
    /// old path followed by a fresh injection over the new one). Returns
    /// true when a released link still has draining subscribers — their
    /// fair share grows now that we left, so their component is seeded.
    fn flush_routes(&mut self, f: FlowId) -> bool {
        let mut needs_recompute = false;
        let pkt_bytes = self.cfg.packet_bytes as f64;
        let mut routes = std::mem::take(&mut self.flows[f as usize].routes);
        for mut r in routes.drain(..) {
            // Packet-equivalent traffic accounting at drain time; the
            // per-route byte split is what the fluid model carried.
            let pkts = (r.carried / pkt_bytes).ceil() as u64;
            self.stats.packets_forwarded += pkts * r.links.len() as u64;
            for &li in &r.links {
                let (n, _) = self.link_owner[li as usize];
                self.stats.node_forwarded[n.idx()] += pkts;
                self.stats.total_link_busy_ps +=
                    (r.carried / self.link_cap[li as usize]).round() as u64;
                debug_assert!(self.link_nflows[li as usize] > 0);
                self.link_nflows[li as usize] -= 1;
                // Drop `f` from the link's incidence list (once —
                // later routes revisiting the link find it gone) and
                // seed the link if other draining flows remain. Links
                // whose remaining subscribers are all gated seed
                // nothing — a gated flow holds no rate and constrains
                // no fill.
                let lf = &mut self.link_flows[li as usize];
                if let Some(pos) = lf.iter().position(|&g| g == f) {
                    lf.swap_remove(pos);
                }
                if !lf.is_empty() {
                    self.seed_links.push(li);
                    needs_recompute = true;
                }
            }
            r.links.clear();
            self.spare_links.push(r.links);
        }
        needs_recompute
    }

    /// Apply every scheduled link event due at the current epoch (within
    /// the coalescing `quantum`, like drains and timed events). A *fail*
    /// advances the private failure-epoch topology, then reroutes every
    /// flow whose route set crosses the dead cable — banking carried
    /// bytes, rebuilding routes over the new topology, stalling the flow
    /// if none exist. A *repair* restores the link and retries the
    /// stalled flows. Returns true when rates must be recomputed.
    fn apply_link_events(&mut self, quantum: f64) -> bool {
        let mut dirty = false;
        loop {
            let ev = {
                let sched = self.cfg.failures.events();
                match sched.get(self.next_sched) {
                    Some(ev) if ev.at_ps as f64 <= self.now + quantum => *ev,
                    _ => break,
                }
            };
            self.next_sched += 1;
            let Some(topo) = self.topo.as_mut() else {
                break; // unreachable: topo is Some whenever a schedule exists
            };
            let now_ps = self.now.round() as Time;
            match ev.kind {
                LinkEventKind::Fail => {
                    if !topo.fail_link(ev.node, ev.port) {
                        continue; // already failed: no-op
                    }
                    self.stats.link_fail_events += 1;
                    if self.tel_metrics {
                        self.reg.inc(self.c_link_fail, 1);
                    }
                    if self.sink.enabled() {
                        self.sink.instant_args(
                            "link_fail",
                            "fault",
                            now_ps,
                            vec![
                                ("node", ev.node.idx() as u64),
                                ("port", ev.port.idx() as u64),
                            ],
                        );
                    }
                    // Both directed halves of the cable die together.
                    let li1 = self.link_idx(ev.node, ev.port);
                    let peer = self.net.topo.peer(ev.node, ev.port);
                    let li2 = self.link_idx(peer.node, peer.port);
                    // Every flow with a route over either half must leave
                    // the link. Scanning all flow slots is fine: fail
                    // events are rare and drained/free slots hold empty
                    // route sets.
                    let mut affected: Vec<FlowId> = Vec::new();
                    for (i, fl) in self.flows.iter().enumerate() {
                        if fl
                            .routes
                            .iter()
                            .any(|r| r.links.iter().any(|&l| l == li1 || l == li2))
                        {
                            affected.push(i as FlowId);
                        }
                    }
                    for f in affected {
                        self.reroute_flow(f);
                        dirty = true;
                    }
                }
                LinkEventKind::Repair => {
                    if !topo.restore_link(ev.node, ev.port) {
                        continue; // not failed: no-op
                    }
                    self.stats.link_repair_events += 1;
                    if self.tel_metrics {
                        self.reg.inc(self.c_link_repair, 1);
                    }
                    if self.sink.enabled() {
                        self.sink.instant_args(
                            "link_repair",
                            "fault",
                            now_ps,
                            vec![
                                ("node", ev.node.idx() as u64),
                                ("port", ev.port.idx() as u64),
                            ],
                        );
                    }
                    // Retry every stalled flow; those still unreachable
                    // stay stalled (their wait keeps accumulating).
                    let stalled = std::mem::take(&mut self.stalled);
                    for (f, since) in stalled {
                        let info = self.msgs[self.flows[f as usize].msg as usize].info;
                        let src_node = self.net.endpoints[info.src_rank as usize];
                        let dst_node = self.net.endpoints[info.dst_rank as usize];
                        let (routes, latency_ps) = self.build_routes(src_node, dst_node);
                        if routes.is_empty() {
                            self.stalled.push((f, since));
                            continue;
                        }
                        self.stats.flow_stall_ps += (self.now - since).max(0.0).round() as u64;
                        self.attach_routes(f, routes, latency_ps);
                        dirty = true;
                    }
                }
            }
        }
        dirty
    }

    /// Pull a live flow off a just-failed cable: bank its carried bytes,
    /// release its old subscriptions and NIC queue slots, and re-inject
    /// it over the failure-epoch topology (or stall it if disconnected).
    fn reroute_flow(&mut self, f: FlowId) {
        if !self.flows[f as usize].gated {
            if let Some(pos) = self.active.iter().position(|&g| g == f) {
                self.active.swap_remove(pos);
            }
        }
        // Leave the old NIC injection FIFOs, letting successors through
        // exactly as a drain does.
        let mut candidates: Vec<FlowId> = Vec::new();
        for li in Self::first_links(&self.flows[f as usize].routes) {
            let q = &mut self.inj_queue[li as usize];
            if let Some(pos) = q.iter().position(|&g| g == f) {
                q.remove(pos);
                for &g in q.iter() {
                    if self.flows[g as usize].gated && !candidates.contains(&g) {
                        candidates.push(g);
                    }
                }
            }
        }
        self.flush_routes(f);
        {
            let fl = &mut self.flows[f as usize];
            fl.rate = 0.0;
            fl.gated = true;
        }
        let info = self.msgs[self.flows[f as usize].msg as usize].info;
        let src_node = self.net.endpoints[info.src_rank as usize];
        let dst_node = self.net.endpoints[info.dst_rank as usize];
        let (routes, latency_ps) = self.build_routes(src_node, dst_node);
        if routes.is_empty() {
            // Temporarily disconnected: wait for a scheduled repair.
            self.stalled.push((f, self.now));
        } else {
            self.attach_routes(f, routes, latency_ps);
            self.stats.flows_rerouted += 1;
            if self.tel_metrics {
                self.reg.inc(self.c_flow_reroute, 1);
            }
            if self.sink.enabled() {
                self.sink.instant_args(
                    "flow_reroute",
                    "fault",
                    self.now.round() as Time,
                    vec![("src", info.src_rank as u64), ("dst", info.dst_rank as u64)],
                );
            }
        }
        for g in candidates {
            if self.flows[g as usize].gated
                && !self.flows[g as usize].routes.is_empty()
                && self.nic_eligible(g)
            {
                self.activate(g);
            }
        }
    }

    /// Install a freshly built route set on a gated flow: subscribe its
    /// links, park it in the NIC injection FIFOs, and activate it if
    /// nothing window-sized sits ahead.
    fn attach_routes(&mut self, f: FlowId, routes: Vec<Route>, latency_ps: u64) {
        for r in &routes {
            for &li in &r.links {
                self.link_nflows[li as usize] += 1;
            }
        }
        {
            let fl = &mut self.flows[f as usize];
            fl.routes = routes;
            fl.latency_ps = latency_ps;
        }
        let firsts: Vec<u32> = Self::first_links(&self.flows[f as usize].routes).collect();
        for li in firsts {
            self.inj_queue[li as usize].push(f);
        }
        if self.nic_eligible(f) {
            self.activate(f);
        }
    }

    /// Execute all queue events due at the current time, plus any within
    /// the coalescing `quantum` (they fire early by < quantum). Returns
    /// true if any application command created or could create new flows.
    fn pop_due_events(&mut self, quantum: f64, app: &mut dyn Application) -> bool {
        let mut dirty = false;
        let now_ps = self.now.round() as Time;
        while let Some(&Reverse((TimeKey(t), _, _))) = self.queue.peek() {
            if t > self.now + quantum {
                break;
            }
            let Some(Reverse((_, _, ev))) = self.queue.pop() else {
                unreachable!()
            };
            let mut cmds = Vec::new();
            match ev {
                Event::Deliver(msg) => {
                    let m = &mut self.msgs[msg as usize];
                    debug_assert!(!m.done);
                    m.done = true;
                    let info = m.info;
                    let start_ps = m.start_ps;
                    if self.tel_metrics {
                        self.reg
                            .record(self.h_msg_latency, now_ps.saturating_sub(start_ps));
                    }
                    self.stats.messages_delivered += 1;
                    self.stats.bytes_delivered += info.bytes;
                    // Pre-sized in `new` to one slot per rank.
                    self.stats.rank_recv_done_ps[info.dst_rank as usize] = now_ps;
                    self.stats.rank_recv_bytes[info.dst_rank as usize] += info.bytes;
                    let mut ctx = Ctx::new(now_ps, &mut cmds);
                    app.on_message(&mut ctx, info);
                }
                Event::Compute(rank, tag) => {
                    let mut ctx = Ctx::new(now_ps, &mut cmds);
                    app.on_compute_done(&mut ctx, rank, tag);
                }
            }
            if !cmds.is_empty() {
                self.apply_cmds(&mut cmds, app);
                dirty = true;
            }
        }
        dirty
    }

    fn apply_cmds(&mut self, cmds: &mut Vec<Cmd>, app: &mut dyn Application) {
        let _ = app;
        while let Some(cmd) = cmds.pop() {
            match cmd {
                Cmd::Send {
                    src,
                    dst,
                    bytes,
                    tag,
                } => self.start_send(src, dst, bytes, tag),
                Cmd::Compute { rank, ps, tag } => {
                    self.push_event(self.now + ps as f64, Event::Compute(rank, tag));
                }
            }
        }
    }

    /// Start a message as one fluid flow spread over its route set (one
    /// route per waypoint class x distinct first-hop candidate).
    fn start_send(&mut self, src: u32, dst: u32, bytes: u64, tag: u64) {
        assert_ne!(src, dst, "self-sends are not modelled");
        let src_node = self.net.endpoints[src as usize];
        let dst_node = self.net.endpoints[dst as usize];
        let msg_id = self.msgs.len() as MsgId;
        self.stats.messages_sent += 1;
        let start_ps = self.now.round() as Time;
        if self.sink.enabled() {
            self.sink.instant_args(
                "flow_start",
                "flow",
                start_ps,
                vec![("src", src as u64), ("dst", dst as u64), ("bytes", bytes)],
            );
        }
        if self.tel_metrics {
            self.reg.inc(self.c_flows_started, 1);
        }
        self.msgs.push(MsgState {
            info: MsgInfo {
                src_rank: src,
                dst_rank: dst,
                bytes,
                tag,
            },
            done: false,
            start_ps,
        });

        let (routes, latency_ps) = self.build_routes(src_node, dst_node);
        let f = self.alloc_flow(FlowState {
            msg: msg_id,
            routes: Vec::new(),
            latency_ps: 0,
            remaining: bytes as f64,
            rate: 0.0,
            gated: true,
            large: bytes >= self.cfg.nic_port_window_bytes,
        });
        if routes.is_empty() {
            // Destination currently disconnected: the flow stalls at the
            // NIC and resumes if a scheduled repair reconnects it; a run
            // ending with stalled flows reports [`SimError::Disconnected`].
            self.stalled.push((f, self.now));
            return;
        }
        // Subscribe the links and enqueue on the NIC injection FIFOs of
        // the routes' first links; the flow drains once nothing
        // window-sized sits ahead of it.
        self.attach_routes(f, routes, latency_ps);
    }

    /// Build the multipath route set from `src_node` to `dst_node` over
    /// the current failure-epoch topology (the private scheduled copy
    /// when a [`crate::FailureSchedule`] is in effect, the shared network
    /// topology otherwise): one route per waypoint class x distinct
    /// first-hop candidate. Empty iff the destination is unreachable.
    fn build_routes(&mut self, src_node: NodeId, dst_node: NodeId) -> (Vec<Route>, u64) {
        let net = self.net;
        let topo_owned = self.topo.take();
        let topo = topo_owned.as_ref().unwrap_or(&net.topo);

        // Route classes: direct, plus each router-provided waypoint.
        let mut waypoints = std::mem::take(&mut self.waypoints);
        waypoints.clear();
        if self.cfg.use_waypoints {
            net.router
                .waypoint_options(topo, src_node, dst_node, &mut waypoints);
        }
        let mut routes: Vec<Route> = Vec::new();
        let mut latency_ps = 0u64;
        for class in std::iter::once(None).chain(waypoints.iter().copied().map(Some)) {
            let target = class.unwrap_or(dst_node);
            let mut cand = std::mem::take(&mut self.cand);
            cand.clear();
            net.router.candidates(topo, src_node, 0, target, &mut cand);
            let mut seen_ports: Vec<PortId> = Vec::with_capacity(cand.len());
            for h in &cand {
                if seen_ports.contains(&h.port) {
                    continue;
                }
                seen_ports.push(h.port);
                let (links, lat) = self.walk_route(topo, src_node, dst_node, class, *h);
                latency_ps = latency_ps.max(lat);
                routes.push(Route {
                    links,
                    rate: 0.0,
                    carried: 0.0,
                });
            }
            self.cand = cand;
        }
        self.waypoints = waypoints;
        self.topo = topo_owned;
        (routes, latency_ps)
    }

    /// Activate a flow: mark it draining, register it on the incidence
    /// lists of every distinct link its routes cross, and seed it for the
    /// next solver pass.
    fn activate(&mut self, f: FlowId) {
        self.flows[f as usize].gated = false;
        self.active.push(f);
        self.inc_gen = self.inc_gen.wrapping_add(1);
        let gen = self.inc_gen;
        let fl = &self.flows[f as usize];
        for r in &fl.routes {
            for &li in &r.links {
                let li = li as usize;
                if self.inc_seen[li] != gen {
                    self.inc_seen[li] = gen;
                    self.link_flows[li].push(f);
                }
            }
        }
        self.seed_flows.push(f);
    }

    /// Distinct first links over a route set (at most 4 routes, so a
    /// linear dedup suffices).
    fn first_links(routes: &[Route]) -> impl Iterator<Item = u32> + '_ {
        routes
            .iter()
            .enumerate()
            .filter(|(i, r)| !routes[..*i].iter().any(|q| q.links[0] == r.links[0]))
            .map(|(_, r)| r.links[0])
    }

    /// Whether `f` may inject: on every NIC FIFO it sits in, all flows
    /// ahead of it are larger than the per-port window (their packets
    /// interleave with ours under the packet engine's NIC pacing, instead
    /// of forming an exclusive FIFO burst we must wait out) *and* headed
    /// for a different destination. Same-destination flows follow the
    /// same route, where the packet engine's per-VC FIFO queues deliver
    /// strictly in issue order — fair-sharing them would stall the
    /// earlier message's delivery (and any pipeline depending on it)
    /// behind the later one's bytes.
    fn nic_eligible(&self, f: FlowId) -> bool {
        let dst = self.msgs[self.flows[f as usize].msg as usize].info.dst_rank;
        Self::first_links(&self.flows[f as usize].routes).all(|li| {
            self.inj_queue[li as usize]
                .iter()
                .take_while(|&&g| g != f)
                .all(|&g| {
                    self.flows[g as usize].large
                        && self.msgs[self.flows[g as usize].msg as usize].info.dst_rank != dst
                })
        })
    }

    /// Greedily walk the router's candidate graph from `src` to `dst`,
    /// pinned to `first` as the first hop, picking the least-subscribed
    /// candidate link at every subsequent hop (ties to the lowest port id,
    /// keeping the walk deterministic).
    fn walk_route(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        mut waypoint: Option<NodeId>,
        first: Hop,
    ) -> (Vec<u32>, u64) {
        let router = &self.net.router;
        let mut links = self.spare_links.pop().unwrap_or_default();
        let mut visited: Vec<NodeId> = vec![src];
        let mut latency_ps = 0u64;
        let mut node = src;
        let mut hop = first;
        let max_hops = 4 * topo.num_nodes();
        loop {
            let link = topo.link(node, hop.port);
            links.push(self.link_idx(node, hop.port));
            latency_ps += link.spec.latency_ps + self.cfg.hop_latency_ps;
            node = link.peer.node;
            if node == dst {
                break;
            }
            visited.push(node);
            if let Some(w) = waypoint {
                if router.waypoint_reached(topo, node, w) {
                    waypoint = None;
                }
            }
            let target = waypoint.unwrap_or(dst);
            let mut cand = std::mem::take(&mut self.cand);
            cand.clear();
            router.candidates(topo, node, hop.vc, target, &mut cand);
            assert!(
                !cand.is_empty(),
                "router produced no candidates at {node:?} (vc {}) toward {target:?} \
                 ({} failed links — target disconnected?)",
                hop.vc,
                topo.count_failed_links()
            );
            // Least-subscribed candidate; ties break to the lowest port.
            // Candidates leading to an already-visited node lose to fresh
            // ones: adaptive candidate sets may contain non-minimal detour
            // hops (e.g. Dragonfly's local hop toward a global port), and a
            // deterministic walk would ping-pong over them forever where
            // the packet engine escapes via randomized tie-breaks.
            let score = |h: &Hop| {
                let revisit = visited.contains(&topo.peer(node, h.port).node);
                (
                    revisit,
                    self.link_nflows[self.link_idx(node, h.port) as usize],
                    h.port,
                )
            };
            let mut best = cand[0];
            let mut best_score = score(&best);
            for h in cand.iter().skip(1) {
                let s = score(h);
                if s < best_score {
                    best = *h;
                    best_score = s;
                }
            }
            self.cand = cand;
            hop = best;
            assert!(
                links.len() < max_hops,
                "routing walk did not terminate on {} ({src:?}->{dst:?})",
                self.net.name
            );
        }
        (links, latency_ps)
    }

    fn alloc_flow(&mut self, st: FlowState) -> FlowId {
        if let Some(id) = self.free_flows.pop() {
            self.flows[id as usize] = st;
            id
        } else {
            self.flows.push(st);
            (self.flows.len() - 1) as FlowId
        }
    }

    /// Solve max-min rates for every component that could have changed.
    ///
    /// The link-sharing graph splits into connected components whose
    /// allocations are independent: filling one component never reads a
    /// link of another. Each dirty epoch this walks the components
    /// reachable from the change seeds — flows activated since the last
    /// solve (`seed_flows`) and links a retired flow left behind with
    /// surviving subscribers (`seed_links`) — and refills each exactly
    /// once via [`Self::fill_component`]; all other flows keep their
    /// rates. Multiple same-epoch seeds landing in one component coalesce
    /// into a single fill (the `comp_gen` visited stamps).
    ///
    /// [`RateMode::Full`] widens the walk to every active flow. Because
    /// the fill is a pure function of component membership, and a
    /// component without a seed has unchanged membership, the widened
    /// walk recomputes identical bit patterns for unchanged components —
    /// the idempotence that makes the two modes bitwise-equivalent and
    /// differentially testable. Only the solver-effort counters
    /// (`rate_recomputes*`, `rate_touched_flows`) may differ across
    /// modes; `tests/flow_incremental_equiv.rs` holds everything else,
    /// including the optional per-epoch rate trace, bitwise equal.
    fn recompute_rates(&mut self) {
        let mut filled = 0usize;
        let mut fills = 0u32;
        let has_seeds = !(self.seed_flows.is_empty() && self.seed_links.is_empty());
        if !self.active.is_empty() && has_seeds {
            self.comp_gen = self.comp_gen.wrapping_add(1);
            let gen = self.comp_gen;
            if self.flow_seen.len() < self.flows.len() {
                self.flow_seen.resize(self.flows.len(), gen.wrapping_sub(1));
            }
            if self.cfg.rate_mode == RateMode::Full {
                for i in 0..self.active.len() {
                    let f = self.active[i];
                    if self.flow_seen[f as usize] != gen {
                        filled += self.fill_component_from(f);
                        fills += 1;
                    }
                }
            } else {
                for i in 0..self.seed_flows.len() {
                    let f = self.seed_flows[i];
                    let fl = &self.flows[f as usize];
                    // A seed may have drained (or had its id recycled)
                    // within the same coalesced epoch; only flows that
                    // are still draining anchor a component walk.
                    if fl.gated || fl.routes.is_empty() || self.flow_seen[f as usize] == gen {
                        continue;
                    }
                    filled += self.fill_component_from(f);
                    fills += 1;
                }
                for i in 0..self.seed_links.len() {
                    let li = self.seed_links[i] as usize;
                    for j in 0..self.link_flows[li].len() {
                        let g = self.link_flows[li][j];
                        if self.flow_seen[g as usize] != gen {
                            filled += self.fill_component_from(g);
                            fills += 1;
                        }
                    }
                }
            }
        }
        self.seed_flows.clear();
        self.seed_links.clear();
        if fills > 0 {
            self.stats.rate_recomputes += 1;
            self.stats.rate_touched_flows += filled as u64;
            if filled == self.active.len() {
                self.stats.rate_recomputes_full += 1;
            } else {
                self.stats.rate_recomputes_component += 1;
            }
        }
        // Telemetry counts flows whose rate *bit pattern changed* this
        // epoch — not the solver-effort counters above, which depend on
        // [`RateMode`]. A component refilled to identical bits (the Full
        // mode's widened walk) contributes nothing, so this count — and
        // the `rate_epoch` trace — is bitwise mode-invariant.
        if self.tel_any && self.epoch_changed > 0 {
            if self.sink.enabled() {
                self.sink.instant_args(
                    "rate_epoch",
                    "flow",
                    self.now.round() as Time,
                    vec![("touched_flows", self.epoch_changed)],
                );
            }
            if self.tel_metrics {
                self.reg.inc(self.c_rate_epochs, 1);
                self.reg.inc(self.c_rate_changed, self.epoch_changed);
            }
        }
        self.epoch_changed = 0;
        if self.cfg.trace_rates {
            self.record_rate_trace();
        }
    }

    /// Append one epoch's `(time, msg, rate)` snapshot of every active
    /// flow to [`SimStats::rate_trace`], sorted by msg id within the
    /// epoch. Recorded on *every* dirty epoch (not just epochs that
    /// filled something) because dirty epochs are mode-independent while
    /// fill counts are not — that keeps the traces of the two solver
    /// modes index-aligned for the bitwise comparison.
    fn record_rate_trace(&mut self) {
        let t = self.now.to_bits();
        let start = self.stats.rate_trace.len();
        for &f in &self.active {
            let fl = &self.flows[f as usize];
            self.stats.rate_trace.push((t, fl.msg, fl.rate.to_bits()));
        }
        self.stats.rate_trace[start..].sort_unstable();
    }

    /// Walk the connected component containing flow `f` over the link ↔
    /// draining-flow incidence and refill it. Returns the component's
    /// flow count. Visited stamps are `comp_gen`-scoped, so a component
    /// fills at most once per epoch no matter how many seeds land in it.
    fn fill_component_from(&mut self, f: FlowId) -> usize {
        let gen = self.comp_gen;
        self.flow_seen[f as usize] = gen;
        let mut frontier = std::mem::take(&mut self.frontier);
        let mut comp = std::mem::take(&mut self.pending);
        frontier.clear();
        comp.clear();
        frontier.push(f);
        let mut nflows = 0usize;
        while let Some(g) = frontier.pop() {
            nflows += 1;
            let nroutes = self.flows[g as usize].routes.len();
            for ri in 0..nroutes {
                comp.push((g, ri as u32));
                let nlinks = self.flows[g as usize].routes[ri].links.len();
                for k in 0..nlinks {
                    let li = self.flows[g as usize].routes[ri].links[k] as usize;
                    if self.link_seen[li] != gen {
                        self.link_seen[li] = gen;
                        for j in 0..self.link_flows[li].len() {
                            let h = self.link_flows[li][j];
                            if self.flow_seen[h as usize] != gen {
                                self.flow_seen[h as usize] = gen;
                                frontier.push(h);
                            }
                        }
                    }
                }
            }
        }
        self.fill_component(&mut comp);
        self.frontier = frontier;
        self.pending = comp;
        nflows
    }

    /// Max-min fair allocation of one component by progressive filling,
    /// batched by level: each round finds the tightest fair share over
    /// the component's constrained links, freezes **every** route whose
    /// own bottleneck sits at (or within `LEVEL_SLACK` of) that level at
    /// its own share, and subtracts the shares from the links those
    /// routes cross. Rounds are therefore proportional to the number of
    /// distinct bottleneck levels, not the number of links.
    ///
    /// Determinism contract: this is a pure function of the component's
    /// `(flow, route)` membership and the link capacities. The unit list
    /// is sorted into canonical (flow id, route index) order first
    /// because the float accumulations below are order-dependent — with
    /// the sort, the same component yields the same bit pattern no
    /// matter which seed discovered it or which [`RateMode`] requested
    /// the fill. Allocation-free: scratch arrays are engine members
    /// invalidated by generation stamp.
    fn fill_component(&mut self, comp: &mut Vec<(FlowId, u32)>) {
        comp.sort_unstable();
        self.rate_gen = self.rate_gen.wrapping_add(1);
        let gen = self.rate_gen;
        self.touched.clear();
        for &(f, ri) in comp.iter() {
            let f = f as usize;
            if ri == 0 {
                if self.tel_any {
                    self.old_rate_scratch
                        .push((f as FlowId, self.flows[f].rate.to_bits()));
                }
                self.flows[f].rate = 0.0;
            }
            self.flows[f].routes[ri as usize].rate = -1.0; // sentinel: unassigned
            for k in 0..self.flows[f].routes[ri as usize].links.len() {
                let li = self.flows[f].routes[ri as usize].links[k] as usize;
                if self.link_gen[li] != gen {
                    self.link_gen[li] = gen;
                    self.residual[li] = self.link_cap[li];
                    self.unsat[li] = 0;
                    self.touched.push(li);
                }
                self.unsat[li] += 1;
            }
        }
        while !comp.is_empty() {
            // Refresh the per-link fair shares and find the level: the
            // tightest share over all still-constrained links.
            let mut level = f64::INFINITY;
            for &li in &self.touched {
                if self.unsat[li] > 0 {
                    let s = self.residual[li].max(0.0) / self.unsat[li] as f64;
                    self.share[li] = s;
                    if s < level {
                        level = s;
                    }
                }
            }
            if !level.is_finite() {
                break; // cannot happen: every pending route crosses a link
            }
            let lim = level * (1.0 + LEVEL_SLACK) + f64::MIN_POSITIVE;
            // Freeze every pending route bottlenecked at (or within the
            // slack of) this level, each at its own bottleneck share.
            let before = comp.len();
            comp.retain(|&(f, ri)| {
                let f = f as usize;
                let mut own = f64::INFINITY;
                for &li in &self.flows[f].routes[ri as usize].links {
                    let s = self.share[li as usize];
                    if s < own {
                        own = s;
                    }
                }
                if own > lim {
                    return true;
                }
                self.flows[f].routes[ri as usize].rate = own;
                self.flows[f].rate += own;
                for k in 0..self.flows[f].routes[ri as usize].links.len() {
                    let li = self.flows[f].routes[ri as usize].links[k] as usize;
                    self.residual[li] -= own;
                    self.unsat[li] -= 1;
                }
                false
            });
            debug_assert!(comp.len() < before, "water-filling stalled");
        }
        if self.tel_any {
            let mut scratch = std::mem::take(&mut self.old_rate_scratch);
            for (f, old_bits) in scratch.drain(..) {
                if self.flows[f as usize].rate.to_bits() != old_bits {
                    self.epoch_changed += 1;
                }
            }
            self.old_rate_scratch = scratch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{Alltoall, MessageBlast, Permutation, UniformRandom};
    use hxnet::fattree::single_switch;
    use hxnet::hammingmesh::HxMeshParams;
    use hxnet::torus::TorusParams;

    #[test]
    fn single_message_time_matches_fluid_model() {
        // Two endpoints on one switch: 1 MiB at 400 Gb/s over 2 hops.
        let net = single_switch(2, "pair");
        let bytes: u64 = 1 << 20;
        let mut app = MessageBlast::pairs(vec![(0, 1, bytes)]);
        let stats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.messages_delivered, 1);
        // Drain time = bytes * 20 ps (one bottleneck link), plus two hops
        // of propagation + pipeline latency.
        let drain = bytes * 20;
        assert!(stats.finish_ps > drain, "{}", stats.finish_ps);
        assert!(stats.finish_ps < drain + 1_000_000, "{}", stats.finish_ps);
        let gbps = stats.delivered_gbps();
        assert!(gbps > 350.0 && gbps <= 400.0, "got {gbps} Gb/s");
    }

    #[test]
    fn two_flows_share_a_link_max_min() {
        // Ranks 0 and 1 both send to rank 2 through one switch: the
        // ejection link is the bottleneck, each flow gets half.
        let net = single_switch(3, "tri");
        let bytes: u64 = 4 << 20;
        let mut app = MessageBlast::pairs(vec![(0, 2, bytes), (1, 2, bytes)]);
        let stats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        // Both flows drain in ~2x the solo time.
        let solo = bytes * 20;
        assert!(
            stats.finish_ps > 2 * solo - 1_000_000 && stats.finish_ps < 2 * solo + 2_000_000,
            "{} vs solo {}",
            stats.finish_ps,
            solo
        );
    }

    #[test]
    fn alltoall_completes_on_hxmesh() {
        let net = HxMeshParams::square(2, 2).build();
        let mut app = Alltoall::new(net.num_ranks(), 16 * 1024, 2);
        let stats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.messages_delivered as usize, 16 * 15);
    }

    #[test]
    fn permutation_completes_on_torus() {
        let net = TorusParams {
            cols: 4,
            rows: 4,
            board: 2,
        }
        .build();
        let mut app = Permutation::new(net.num_ranks(), 32 * 1024, 2, 7);
        let stats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.messages_delivered, 32);
    }

    #[test]
    fn uniform_random_completes_on_all_topologies() {
        let nets = vec![
            HxMeshParams::square(2, 4).build(),
            TorusParams {
                cols: 8,
                rows: 8,
                board: 2,
            }
            .build(),
            hxnet::dragonfly::DragonflyParams {
                a: 4,
                p: 2,
                h: 2,
                groups: 5,
            }
            .build(),
            hxnet::fattree::FatTreeParams::scaled_nonblocking(64, 16).build(),
            hxnet::hyperx::HyperXParams {
                x: 8,
                y: 8,
                radix: 64,
            }
            .build(),
        ];
        for net in &nets {
            let mut app = UniformRandom::new(net.num_ranks(), 24 * 1024, 8, 99);
            let cfg = SimConfig {
                max_time_ps: 200_000_000_000,
                ..Default::default()
            };
            let stats = FlowEngine::new(net, cfg).run(&mut app);
            assert!(stats.clean(), "{}: {stats:?}", net.name);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let net = HxMeshParams::square(2, 2).build();
        let run = || {
            let mut app = Alltoall::new(net.num_ranks(), 8192, 1);
            FlowEngine::new(&net, SimConfig::default())
                .run(&mut app)
                .finish_ps
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn uses_far_fewer_events_than_packet_engine() {
        let net = HxMeshParams::square(2, 2).build();
        let mut fapp = Alltoall::new(net.num_ranks(), 256 * 1024, 2);
        let fstats = FlowEngine::new(&net, SimConfig::default()).run(&mut fapp);
        let mut papp = Alltoall::new(net.num_ranks(), 256 * 1024, 2);
        let pstats = crate::Engine::new(&net, SimConfig::default()).run(&mut papp);
        assert!(fstats.clean() && pstats.clean());
        assert!(
            fstats.events * 10 < pstats.events,
            "flow {} events vs packet {}",
            fstats.events,
            pstats.events
        );
    }

    /// Drains of link-disjoint flows skip the max-min recompute: two
    /// transfers through one switch that share no directed link finish
    /// with only the initial progressive filling, while the same pair
    /// aimed at a shared ejection port must refill on the first drain.
    #[test]
    fn disjoint_drains_skip_rate_recompute() {
        let net = single_switch(4, "quad");
        // 0->1 and 2->3: four distinct directed links, no sharing. The
        // second transfer is larger so the drains are staggered.
        let mut app = MessageBlast::pairs(vec![(0, 1, 1 << 20), (2, 3, 3 << 20)]);
        let stats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(
            stats.rate_recomputes, 1,
            "disjoint retirements must not refill (events {})",
            stats.events
        );

        // Same sizes, but both flows eject at rank 3: the shared ejection
        // link makes the first drain free capacity for the survivor, which
        // must be refilled.
        let mut app = MessageBlast::pairs(vec![(0, 3, 1 << 20), (2, 3, 3 << 20)]);
        let stats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean(), "{stats:?}");
        assert!(
            stats.rate_recomputes >= 2,
            "shared-bottleneck drain must recompute rates ({} recomputes)",
            stats.rate_recomputes
        );
    }

    #[test]
    fn traffic_accounting_is_byte_exact_per_message() {
        let net = HxMeshParams::square(2, 2).build();
        let mut app = MessageBlast::pairs(vec![(0, 15, 3 << 20), (5, 10, 1 << 20)]);
        let stats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
        assert!(stats.clean());
        assert_eq!(stats.bytes_delivered, (3 << 20) + (1 << 20));
        assert_eq!(stats.messages_delivered, 2);
        // Some node on each route forwarded traffic.
        assert!(stats.node_forwarded.iter().sum::<u64>() > 0);
        assert!(stats.total_link_busy_ps > 0);
    }
}
