//! In-run link failure schedules and recovery policies.
//!
//! A [`FailureSchedule`] turns cable fail/repair into first-class
//! simulation events: both engines consume the schedule mid-run and
//! advance their private copy of the topology's failure epoch at the
//! scheduled instants (the borrowed [`hxnet::Network`] is never
//! mutated). The flow engine re-routes and re-rates the affected flows
//! at each epoch; the packet engine drops the packets in flight on the
//! failed cable and recovers them with the configured
//! [`RetransmitPolicy`]. An empty schedule costs one branch per event
//! loop iteration — the no-failure fast path is pinned by the
//! differential suite (`determinism.rs`) to be bitwise identical to a
//! build that never heard of schedules.

use crate::Time;
use hxnet::{NodeId, PortId};

/// What happens to the cable at the scheduled instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkEventKind {
    /// The cable goes down in both directions ([`hxnet::Topology::fail_link`]).
    Fail,
    /// The cable comes back ([`hxnet::Topology::restore_link`]).
    Repair,
}

/// One scheduled cable transition. The cable is named by either of its
/// ends — `(node, port)` — and fails/repairs full-duplex, exactly like
/// the pre-run `fail_link` API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    pub at_ps: Time,
    pub kind: LinkEventKind,
    pub node: NodeId,
    pub port: PortId,
}

/// A time-sorted list of in-run cable events, consumed by both engines.
///
/// Events at equal instants apply in insertion order. An event that
/// re-fails an already-failed cable (or repairs a healthy one) is a
/// no-op and is not counted in the fail/repair stats.
#[derive(Clone, Debug, Default)]
pub struct FailureSchedule {
    events: Vec<LinkEvent>,
}

impl FailureSchedule {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events, sorted by time (stable for equal instants).
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// Insert an event, keeping the list time-sorted; equal instants
    /// keep insertion order.
    pub fn push(&mut self, ev: LinkEvent) {
        let pos = self.events.partition_point(|e| e.at_ps <= ev.at_ps);
        self.events.insert(pos, ev);
    }

    /// Builder: schedule a cable failure.
    pub fn fail(mut self, at_ps: Time, node: NodeId, port: PortId) -> Self {
        self.push(LinkEvent {
            at_ps,
            kind: LinkEventKind::Fail,
            node,
            port,
        });
        self
    }

    /// Builder: schedule a cable repair.
    pub fn repair(mut self, at_ps: Time, node: NodeId, port: PortId) -> Self {
        self.push(LinkEvent {
            at_ps,
            kind: LinkEventKind::Repair,
            node,
            port,
        });
        self
    }
}

/// How the packet engine's sender recovers a packet dropped on a failed
/// cable. Selected by the shared `--retransmit` CLI flag (via the
/// `HX_RETRANSMIT` environment variable, mirroring `--rates`/`HX_RATES`);
/// ignored by the flow engine, whose fluid flows re-route losslessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RetransmitPolicy {
    /// Sender-side retransmission timer: the dropped packet re-injects
    /// after a base RTO shifted left by the message's retransmit count,
    /// capped — classic capped exponential backoff.
    #[default]
    Timeout,
    /// Fast reroute: the point of failure NACKs the sender, which
    /// re-injects after a fixed small delay and lets adaptive routing
    /// pick a healthy path.
    Reroute,
}

impl RetransmitPolicy {
    pub fn as_str(self) -> &'static str {
        match self {
            RetransmitPolicy::Timeout => "timeout",
            RetransmitPolicy::Reroute => "reroute",
        }
    }

    /// Resolve the ambient default from `HX_RETRANSMIT` (set by the
    /// shared `--retransmit` flag), falling back to [`Self::Timeout`].
    /// Environment reads are deterministic — same run, same value.
    pub fn from_env() -> Self {
        match std::env::var("HX_RETRANSMIT") {
            Ok(v) => v.parse().unwrap_or(RetransmitPolicy::Timeout),
            Err(_) => RetransmitPolicy::Timeout,
        }
    }
}

impl std::fmt::Display for RetransmitPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for RetransmitPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "timeout" => Ok(RetransmitPolicy::Timeout),
            "reroute" => Ok(RetransmitPolicy::Reroute),
            _ => Err(format!(
                "unknown retransmit policy {s:?} (expected timeout|reroute)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_time_order_with_stable_ties() {
        let s = FailureSchedule::new()
            .fail(500, NodeId(2), PortId(0))
            .fail(100, NodeId(1), PortId(3))
            .repair(500, NodeId(2), PortId(0))
            .fail(300, NodeId(0), PortId(1));
        let times: Vec<Time> = s.events().iter().map(|e| e.at_ps).collect();
        assert_eq!(times, vec![100, 300, 500, 500]);
        // Equal instants keep insertion order: fail before repair.
        assert_eq!(s.events()[2].kind, LinkEventKind::Fail);
        assert_eq!(s.events()[3].kind, LinkEventKind::Repair);
    }

    #[test]
    fn retransmit_policy_parses_and_round_trips() {
        for p in [RetransmitPolicy::Timeout, RetransmitPolicy::Reroute] {
            assert_eq!(p.as_str().parse::<RetransmitPolicy>(), Ok(p));
        }
        assert!("nack".parse::<RetransmitPolicy>().is_err());
    }
}
