//! The packet-level discrete-event simulation engine.

pub use crate::app::{Application, Cmd, Ctx, MsgInfo};
use crate::failure::{LinkEvent, LinkEventKind};
use crate::stats::{SimError, SimStats};
use crate::{RetransmitPolicy, Time};
use hxnet::route::LoadProbe;
use hxnet::{Network, NodeId, PortId, Topology};
use hxtelemetry::{CounterId, HistId, Registry, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Which max-min solver scope the flow engine uses on a dirty epoch.
///
/// Both modes run the same per-component progressive filling
/// ([`crate::flow`]); they differ only in *which* components refill.
/// `Full` refills every connected component of the link-sharing graph,
/// `Incremental` only the components containing a change seed (new flow,
/// NIC un-gating, or a drain that retired a shared link). Because the
/// fill is a pure function of a component's membership — and an
/// unchanged component's membership is unchanged by definition — the two
/// modes produce bitwise-identical rates, completion times, and stats
/// (solver-effort counters aside); `tests/flow_incremental_equiv.rs`
/// pins that equivalence differentially. Ignored by the packet engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateMode {
    /// Refill every component on each dirty epoch (reference solver).
    Full,
    /// Refill only components that contain a change seed (default).
    Incremental,
}

impl std::str::FromStr for RateMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(RateMode::Full),
            "incremental" => Ok(RateMode::Incremental),
            _ => Err(format!(
                "unknown rate mode {s:?} (expected full|incremental)"
            )),
        }
    }
}

impl RateMode {
    /// Resolve the ambient default: the `HX_RATES` environment variable
    /// (set by the shared `--rates` CLI flag, see `hxserve::cli`) when
    /// valid, otherwise [`RateMode::Incremental`]. Reading configuration
    /// from the environment is deterministic (same run, same value) —
    /// the D002 house rule only bans entropy and wall-clock.
    pub fn from_env() -> Self {
        match std::env::var("HX_RATES") {
            Ok(v) => v.parse().unwrap_or(RateMode::Incremental),
            Err(_) => RateMode::Incremental,
        }
    }
}

/// Engine configuration. Defaults follow App. F of the paper.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Maximum packet payload per network packet (8 KiB).
    pub packet_bytes: u64,
    /// Input-buffer capacity per (port, VC) in bytes.
    pub buffer_bytes: u64,
    /// Fixed per-hop pipeline latency added to every packet reception
    /// (input+output buffer latency, 40 ns).
    pub hop_latency_ps: u64,
    /// Virtual cut-through: a transit packet becomes routable downstream
    /// after one flit (App. F: 256 B) plus wire latency, instead of after
    /// full store-and-forward reception. Links still carry every byte, so
    /// bandwidth accounting is exact; only per-hop pipelining changes.
    pub cut_through: bool,
    /// Flit size for the cut-through forwarding latency (256 B, App. F).
    pub flit_bytes: u64,
    /// Injection throttle: a NIC keeps at most this many bytes queued in
    /// its node's output queues before pacing further packets.
    pub nic_window_bytes: u64,
    /// Per-output-port injection cap: packets whose preferred port already
    /// holds this many NIC bytes are deferred so concurrent flows (e.g.
    /// the four HxMesh ring directions) share the NIC fairly.
    pub nic_port_window_bytes: u64,
    /// Enable source-side waypoint selection (Valiant / column-first).
    pub use_waypoints: bool,
    /// RNG seed for adaptive tie-breaking.
    pub seed: u64,
    /// Hard stop; the run reports a failure if exceeded.
    pub max_time_ps: Time,
    /// Flow engine: max-min solver scope (see [`RateMode`]).
    pub rate_mode: RateMode,
    /// Flow engine: record a per-epoch `(time, msg, rate)` snapshot in
    /// [`crate::SimStats::rate_trace`] at every dirty epoch. Test-only
    /// instrumentation for the differential equivalence suite; costs
    /// O(active flows) per epoch, so it defaults off.
    pub trace_rates: bool,
    /// In-run cable fail/repair events, applied by both engines at the
    /// scheduled instants. Empty (the default) keeps the event loops on
    /// their historical fast path — one branch per iteration.
    pub failures: crate::FailureSchedule,
    /// Packet engine: recovery policy for packets dropped on a cable
    /// that failed mid-flight (see [`crate::RetransmitPolicy`]).
    pub retransmit: crate::RetransmitPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            packet_bytes: crate::DEFAULT_PACKET_BYTES,
            buffer_bytes: crate::DEFAULT_BUFFER_BYTES,
            hop_latency_ps: 40_000,
            cut_through: true,
            flit_bytes: 256,
            nic_window_bytes: 32 * crate::DEFAULT_PACKET_BYTES,
            nic_port_window_bytes: 4 * crate::DEFAULT_PACKET_BYTES,
            use_waypoints: true,
            seed: 0x5eed,
            max_time_ps: Time::MAX,
            rate_mode: RateMode::from_env(),
            trace_rates: false,
            failures: crate::FailureSchedule::default(),
            retransmit: crate::RetransmitPolicy::from_env(),
        }
    }
}

type PacketId = u32;
type MsgId = u32;

/// Base retransmission timeout for the [`RetransmitPolicy::Timeout`]
/// policy: 1 µs, a few round trips at App. F latencies. Doubles per
/// retransmit of the same message, capped at `<< RTO_BACKOFF_CAP`.
const RTO_BASE_PS: Time = 1_000_000;
const RTO_BACKOFF_CAP: u32 = 6;

struct PacketState {
    msg: MsgId,
    bytes: u32,
    vc: u8,
    /// Final destination node.
    dst_node: NodeId,
    /// Active waypoint (cleared once reached).
    waypoint: Option<NodeId>,
    /// The input buffer this packet currently occupies, if any.
    held: Option<(NodeId, PortId, u8)>,
    /// On the wire: set at transmit, cleared on arrival. Only in-flight
    /// packets can be lost to a mid-run cable failure.
    in_flight: bool,
    /// Incarnation stamp carried by `Arrive` events: bumped when the
    /// packet is dropped on a failed cable (and when its slot is
    /// recycled), so the stale arrival of a dropped incarnation is
    /// discarded even if the retransmitted copy is already moving again.
    gen: u32,
}

struct MsgState {
    info: MsgInfo,
    num_packets: u32,
    delivered_packets: u32,
    injected_packets: u32,
    delivered_bytes: u64,
    /// Simulated send instant, for the delivery-latency histogram.
    start_ps: Time,
    /// Packets of this message lost to cable failures so far; drives the
    /// exponential backoff of the Timeout retransmit policy.
    retransmits: u32,
}

struct OutPort {
    /// One FIFO per virtual channel: a blocked VC must never head-of-line
    /// block packets of other VCs, or the escape-VC deadlock guarantees
    /// collapse (VC isolation).
    queues: Vec<VecDeque<PacketId>>,
    queued_bytes: u64,
    busy_until: Time,
    /// Bitmask of VCs registered as waiters on their downstream buffer.
    stalled_mask: u8,
    /// Round-robin pointer over VCs for fair link arbitration.
    rr: u8,
    /// Total busy picoseconds (for utilization stats).
    busy_ps: u64,
}

struct NodeState {
    out: Vec<OutPort>,
    /// Input-buffer occupancy per (port * num_vcs + vc).
    in_occ: Vec<u64>,
    /// Upstream (node, port) pairs waiting for space per (port, vc).
    waiters: Vec<Vec<(NodeId, PortId)>>,
    /// NIC injection queue (accelerators only).
    nic_pending: VecDeque<PacketId>,
    out_bytes_total: u64,
}

#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
enum Event {
    /// A packet (incarnation `gen`) finished arriving at (node, port).
    /// Stale incarnations — the packet was dropped on a failed cable
    /// after this event was scheduled — are discarded on pop.
    Arrive(NodeId, PortId, PacketId, u32),
    /// Re-inject a packet dropped on a failed cable at its source NIC.
    Retransmit(PacketId),
    /// Serialization done on (node, port): release the packet's previous
    /// buffer and try to transmit the next queued packet. All data is
    /// carried in the event because, with cut-through, the packet may have
    /// been delivered (and its slot recycled) before serialization ends.
    PortFree {
        node: NodeId,
        port: PortId,
        msg: MsgId,
        bytes: u32,
        release: Option<(NodeId, PortId, u8)>,
    },
    /// Application compute finished.
    Compute(u32, u64),
}

/// The packet-level simulation engine, borrowed over a [`Network`].
pub struct Engine<'n> {
    net: &'n Network,
    cfg: SimConfig,
    num_vcs: usize,
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<(Time, u64, Event)>>,
    nodes: Vec<NodeState>,
    packets: Vec<PacketState>,
    free_packets: Vec<PacketId>,
    msgs: Vec<MsgState>,
    rng: StdRng,
    stats: SimStats,
    /// Scratch buffer for routing candidates.
    cand: Vec<hxnet::route::Hop>,
    /// Recycled application-command buffer: every delivery/compute event
    /// used to allocate a fresh `Vec<Cmd>`, which dominated the allocator
    /// traffic of the hot loop. `apply_cmds` drains it, so it is always
    /// empty between events.
    cmd_scratch: Vec<Cmd>,
    /// Recycled waiter list for `release_buffer`: buffers rotate between
    /// this scratch and the per-(port, vc) waiter slots instead of being
    /// freed and reallocated on every credit release.
    waiter_scratch: Vec<(NodeId, PortId)>,
    /// Telemetry (see `hxtelemetry::collect`). The enabled flags are
    /// sampled once at construction, so every instrumentation site below
    /// costs one predictable branch when collection is off.
    sink: TraceSink,
    tel_metrics: bool,
    tel_any: bool,
    reg: Registry,
    c_flows_started: CounterId,
    c_flows_drained: CounterId,
    c_packet_stalls: CounterId,
    c_sim_events: CounterId,
    c_retransmits: CounterId,
    h_msg_latency: HistId,
    /// Private failure-epoch topology, `Some` iff the run carries a
    /// non-empty [`crate::FailureSchedule`] (scheduled fail/repair events
    /// never mutate the shared `Network`).
    topo: Option<Topology>,
    /// Cursor into `cfg.failures` (sorted by time).
    next_sched: usize,
    /// Packets with no healthy path toward their target, as
    /// `(current node, packet)`. A parked transit packet keeps occupying
    /// its input buffer — a real switch cannot conjure the capacity to
    /// drop-and-forget either — and is re-routed on the next repair.
    /// Non-empty at the end of a run => [`SimError::Disconnected`].
    parked: Vec<(NodeId, PacketId)>,
}

impl<'n> Engine<'n> {
    pub fn new(net: &'n Network, cfg: SimConfig) -> Self {
        // One VC beyond the router's structured set: the escape VC that
        // failover detours use (see `hxnet::route::FailoverTable`). It
        // carries no traffic on healthy runs — the round-robin arbiter
        // skips its empty queue — so allocating it unconditionally keeps
        // healthy results bit-identical.
        let num_vcs = net.router.num_vcs().max(1) as usize + 1;
        debug_assert!(num_vcs <= 8, "stalled_mask is a u8 bitmap");
        let mut reg = Registry::new();
        let nodes = net
            .topo
            .nodes()
            .map(|(_, n)| {
                let p = n.ports.len();
                NodeState {
                    out: (0..p)
                        .map(|_| OutPort {
                            queues: (0..num_vcs).map(|_| VecDeque::new()).collect(),
                            queued_bytes: 0,
                            busy_until: 0,
                            stalled_mask: 0,
                            rr: 0,
                            busy_ps: 0,
                        })
                        .collect(),
                    in_occ: vec![0; p * num_vcs],
                    waiters: vec![Vec::new(); p * num_vcs],
                    nic_pending: VecDeque::new(),
                    out_bytes_total: 0,
                }
            })
            .collect();
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            net,
            num_vcs,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes,
            packets: Vec::new(),
            free_packets: Vec::new(),
            msgs: Vec::new(),
            stats: SimStats {
                node_forwarded: vec![0; net.topo.num_nodes()],
                // Pre-size the per-rank receive stats so the delivery path
                // indexes directly instead of resizing per message.
                rank_recv_done_ps: vec![0; net.endpoints.len()],
                rank_recv_bytes: vec![0; net.endpoints.len()],
                ..SimStats::default()
            },
            cand: Vec::new(),
            cmd_scratch: Vec::new(),
            waiter_scratch: Vec::new(),
            sink: TraceSink::new(hxtelemetry::collect::trace_enabled()),
            tel_metrics: hxtelemetry::collect::metrics_enabled(),
            tel_any: hxtelemetry::collect::trace_enabled()
                || hxtelemetry::collect::metrics_enabled(),
            c_flows_started: reg.counter("flows_started"),
            c_flows_drained: reg.counter("flows_drained"),
            c_packet_stalls: reg.counter("packet_stalls"),
            c_sim_events: reg.counter("sim_events"),
            c_retransmits: reg.counter("packet_retransmits"),
            h_msg_latency: reg.histogram("msg_latency_ps"),
            topo: (!cfg.failures.is_empty()).then(|| net.topo.clone()),
            next_sched: 0,
            parked: Vec::new(),
            reg,
            cfg,
        }
    }

    #[inline]
    fn push_event(&mut self, t: Time, e: Event) {
        self.seq += 1;
        self.queue.push(Reverse((t, self.seq, e)));
    }

    /// Run the application to completion. Returns the collected statistics.
    pub fn run(mut self, app: &mut dyn Application) -> SimStats {
        let mut cmds = Vec::new();
        {
            let mut ctx = Ctx::new(0, &mut cmds);
            app.start(&mut ctx);
        }
        self.apply_cmds(&mut cmds, app);

        let sched_len = self.cfg.failures.len();
        loop {
            // Merge the failure schedule with the event queue. When the
            // queue drains, a pending scheduled event only keeps the run
            // alive if a parked packet is waiting for a repair —
            // otherwise the rest of the schedule lies beyond the traffic
            // horizon and stays inert, keeping such runs bit-identical
            // to runs with no schedule at all.
            if self.next_sched < sched_len {
                let at = self.cfg.failures.events()[self.next_sched].at_ps;
                let due = match self.queue.peek() {
                    Some(&Reverse((t, _, _))) => at <= t,
                    None => {
                        if self.parked.is_empty() {
                            break;
                        }
                        true
                    }
                };
                if due {
                    let ev = self.cfg.failures.events()[self.next_sched];
                    self.next_sched += 1;
                    self.now = self.now.max(ev.at_ps);
                    if self.now > self.cfg.max_time_ps {
                        self.stats.timed_out = true;
                        break;
                    }
                    self.apply_link_event(ev);
                    continue;
                }
            }
            let Some(Reverse((t, _, ev))) = self.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if t > self.cfg.max_time_ps {
                self.stats.timed_out = true;
                break;
            }
            self.stats.events += 1;
            match ev {
                Event::Arrive(node, port, pkt, gen) => {
                    // A stale incarnation means the packet was dropped on
                    // a failed cable after this event was scheduled; the
                    // retransmitted copy carries a newer stamp.
                    if self.packets[pkt as usize].gen == gen {
                        self.on_arrive(node, port, pkt, app);
                    }
                }
                Event::Retransmit(pkt) => {
                    let src_rank = self.msgs[self.packets[pkt as usize].msg as usize]
                        .info
                        .src_rank;
                    let src_node = self.net.endpoints[src_rank as usize];
                    self.nodes[src_node.idx()].nic_pending.push_back(pkt);
                    self.pump_nic(src_node, None);
                }
                Event::PortFree {
                    node,
                    port,
                    msg,
                    bytes,
                    release,
                } => self.on_port_free(node, port, msg, bytes, release, app),
                Event::Compute(rank, tag) => {
                    let mut cmds = std::mem::take(&mut self.cmd_scratch);
                    {
                        let mut ctx = Ctx::new(self.now, &mut cmds);
                        app.on_compute_done(&mut ctx, rank, tag);
                    }
                    self.apply_cmds(&mut cmds, app);
                    self.cmd_scratch = cmds;
                }
            }
        }

        // Packets still parked at the end never found a healthy path:
        // report the disconnection instead of panicking mid-run (their
        // messages also count as undelivered below).
        if let Some(&(_, pkt)) = self.parked.first() {
            let info = self.msgs[self.packets[pkt as usize].msg as usize].info;
            let failed = self
                .topo
                .as_ref()
                .unwrap_or(&self.net.topo)
                .count_failed_links();
            self.stats.error = Some(SimError::Disconnected {
                src_rank: info.src_rank,
                dst_rank: info.dst_rank,
                failed_links: failed,
            });
        }
        self.stats.finish_ps = self.now;
        let undelivered = self
            .msgs
            .iter()
            .filter(|m| m.delivered_packets < m.num_packets)
            .count();
        self.stats.undelivered_messages = undelivered;
        if undelivered > 0 && std::env::var("HXSIM_DEBUG").is_ok() {
            for line in self.dump_stuck() {
                eprintln!("[hxsim stuck] {line}");
            }
        }
        for n in &self.nodes {
            for p in &n.out {
                self.stats.total_link_busy_ps += p.busy_ps;
            }
        }
        if self.tel_any {
            if self.tel_metrics {
                self.reg.inc(self.c_sim_events, self.stats.events);
            }
            let reg = std::mem::take(&mut self.reg);
            let sink = std::mem::replace(&mut self.sink, TraceSink::disabled());
            hxtelemetry::collect::submit(reg, sink);
        }
        self.stats
    }

    /// Apply one scheduled fail/repair event to the failure-epoch
    /// topology.
    ///
    /// *Fail*: both directed halves of the cable die. Packets queued on
    /// the dead output ports are re-routed immediately (they never left
    /// the switch); packets in flight *on* the cable are lost and
    /// recovered by a sender-side retransmit whose delay follows
    /// [`SimConfig::retransmit`] — a full RTO with capped exponential
    /// backoff for `Timeout`, a short NACK-like turnaround for
    /// `Reroute`. *Repair*: the link returns and parked packets retry.
    fn apply_link_event(&mut self, ev: LinkEvent) {
        let Some(topo) = self.topo.as_mut() else {
            return; // unreachable: topo is Some whenever a schedule exists
        };
        match ev.kind {
            LinkEventKind::Fail => {
                if !topo.fail_link(ev.node, ev.port) {
                    return; // already failed: no-op
                }
                self.stats.link_fail_events += 1;
                if self.sink.enabled() {
                    self.sink.instant_args(
                        "link_fail",
                        "fault",
                        self.now,
                        vec![
                            ("node", ev.node.idx() as u64),
                            ("port", ev.port.idx() as u64),
                        ],
                    );
                }
                let peer = self.net.topo.peer(ev.node, ev.port);
                let halves = [(ev.node, ev.port), (peer.node, peer.port)];
                for &(n, p) in &halves {
                    self.evacuate_dead_port(n, p);
                }
                for &(n, p) in &halves {
                    self.drop_in_flight(n, p);
                }
            }
            LinkEventKind::Repair => {
                if !topo.restore_link(ev.node, ev.port) {
                    return; // not failed: no-op
                }
                self.stats.link_repair_events += 1;
                if self.sink.enabled() {
                    self.sink.instant_args(
                        "link_repair",
                        "fault",
                        self.now,
                        vec![
                            ("node", ev.node.idx() as u64),
                            ("port", ev.port.idx() as u64),
                        ],
                    );
                }
                // Parked packets retry; the still-disconnected ones
                // re-park themselves inside route_and_enqueue.
                let parked = std::mem::take(&mut self.parked);
                for (n, pkt) in parked {
                    self.route_and_enqueue(n, pkt);
                }
            }
        }
    }

    /// A cable half (sender side `node`/`port`) just died: packets still
    /// queued on the output port never left the switch, so they re-route
    /// through the surviving ports; the port's credit-waiter
    /// registrations on the downstream input buffers are withdrawn (no
    /// credit will ever come back over a dead wire).
    fn evacuate_dead_port(&mut self, node: NodeId, port: PortId) {
        // Withdraw waiter registrations: this port can only ever wait on
        // the input slots of its own downstream peer.
        let peer = self.net.topo.peer(node, port);
        for vc in 0..self.num_vcs {
            let slot = peer.port.idx() * self.num_vcs + vc;
            self.nodes[peer.node.idx()].waiters[slot].retain(|&w| w != (node, port));
        }
        self.nodes[node.idx()].out[port.idx()].stalled_mask = 0;
        let mut evacuated: Vec<PacketId> = Vec::new();
        {
            let op = &mut self.nodes[node.idx()].out[port.idx()];
            for q in &mut op.queues {
                evacuated.extend(q.drain(..));
            }
        }
        let mut bytes_total = 0u64;
        for &pkt in &evacuated {
            bytes_total += self.packets[pkt as usize].bytes as u64;
        }
        {
            let op = &mut self.nodes[node.idx()].out[port.idx()];
            debug_assert_eq!(op.queued_bytes, bytes_total);
            op.queued_bytes = 0;
        }
        self.nodes[node.idx()].out_bytes_total -= bytes_total;
        for pkt in evacuated {
            self.route_and_enqueue(node, pkt);
        }
    }

    /// Drop the packets currently on the wire toward (`node`, `port`) —
    /// they reserved that input buffer at transmit time — and schedule
    /// their sender-side retransmission.
    fn drop_in_flight(&mut self, node: NodeId, port: PortId) {
        for pkt in 0..self.packets.len() as PacketId {
            let held = self.packets[pkt as usize].held;
            let in_flight = self.packets[pkt as usize].in_flight;
            let (hn, hp, hvc) = match held {
                Some(h) if in_flight && (h.0, h.1) == (node, port) => h,
                _ => continue,
            };
            let bytes = self.packets[pkt as usize].bytes as u64;
            // The reserved downstream buffer never fills: hand the credit
            // back (its waiters were withdrawn by `evacuate_dead_port`).
            self.release_buffer(hn, hp, hvc, bytes);
            let msg = self.packets[pkt as usize].msg;
            let delay = {
                let m = &mut self.msgs[msg as usize];
                m.retransmits += 1;
                match self.cfg.retransmit {
                    RetransmitPolicy::Timeout => {
                        RTO_BASE_PS << m.retransmits.saturating_sub(1).min(RTO_BACKOFF_CAP)
                    }
                    // NACK-like: the drop is signalled back to the sender
                    // after a couple of hop turnarounds.
                    RetransmitPolicy::Reroute => 4 * self.cfg.hop_latency_ps,
                }
            };
            {
                let p = &mut self.packets[pkt as usize];
                p.held = None;
                p.in_flight = false;
                p.gen = p.gen.wrapping_add(1); // invalidate the stale Arrive
                p.vc = 0;
                p.waypoint = None;
            }
            self.stats.packet_retransmits += 1;
            if self.tel_metrics {
                self.reg.inc(self.c_retransmits, 1);
            }
            if self.sink.enabled() {
                let info = self.msgs[msg as usize].info;
                self.sink.instant_args(
                    "packet_retransmit",
                    "fault",
                    self.now,
                    vec![
                        ("src", info.src_rank as u64),
                        ("dst", info.dst_rank as u64),
                        ("delay_ps", delay),
                    ],
                );
            }
            self.push_event(self.now + delay, Event::Retransmit(pkt));
        }
    }

    fn apply_cmds(&mut self, cmds: &mut Vec<Cmd>, app: &mut dyn Application) {
        // Commands may recursively produce more commands (e.g. a send whose
        // completion callback fires instantly is impossible — sends take
        // time — but computes with 0 ps are executed inline).
        while let Some(cmd) = cmds.pop() {
            match cmd {
                Cmd::Send {
                    src,
                    dst,
                    bytes,
                    tag,
                } => self.start_send(src, dst, bytes, tag),
                Cmd::Compute { rank, ps, tag } => {
                    self.push_event(self.now + ps, Event::Compute(rank, tag));
                }
            }
        }
        let _ = app;
    }

    fn start_send(&mut self, src: u32, dst: u32, bytes: u64, tag: u64) {
        assert_ne!(src, dst, "self-sends are not modelled");
        let src_node = self.net.endpoints[src as usize];
        let dst_node = self.net.endpoints[dst as usize];
        let msg_id = self.msgs.len() as MsgId;
        let num_packets = bytes.div_ceil(self.cfg.packet_bytes) as u32;
        if self.sink.enabled() {
            self.sink.instant_args(
                "flow_start",
                "packet",
                self.now,
                vec![("src", src as u64), ("dst", dst as u64), ("bytes", bytes)],
            );
        }
        if self.tel_metrics {
            self.reg.inc(self.c_flows_started, 1);
        }
        self.msgs.push(MsgState {
            info: MsgInfo {
                src_rank: src,
                dst_rank: dst,
                bytes,
                tag,
            },
            num_packets,
            delivered_packets: 0,
            injected_packets: 0,
            delivered_bytes: 0,
            start_ps: self.now,
            retransmits: 0,
        });
        self.stats.messages_sent += 1;
        let mut remaining = bytes;
        for _ in 0..num_packets {
            let sz = remaining.min(self.cfg.packet_bytes) as u32;
            remaining -= sz as u64;
            let waypoint = if self.cfg.use_waypoints {
                let probe = EngineProbe { nodes: &self.nodes };
                self.net.router.select_waypoint(
                    self.topo.as_ref().unwrap_or(&self.net.topo),
                    src_node,
                    dst_node,
                    &probe,
                    &mut self.rng,
                )
            } else {
                None
            };
            let pkt = self.alloc_packet(PacketState {
                msg: msg_id,
                bytes: sz,
                vc: 0,
                dst_node,
                waypoint,
                held: None,
                in_flight: false,
                gen: 0,
            });
            self.nodes[src_node.idx()].nic_pending.push_back(pkt);
        }
        self.pump_nic(src_node, None);
    }

    fn alloc_packet(&mut self, st: PacketState) -> PacketId {
        if let Some(id) = self.free_packets.pop() {
            // Preserve-and-bump the slot's incarnation stamp so an
            // `Arrive` scheduled for the retired occupant can never be
            // mistaken for the new one.
            let gen = self.packets[id as usize].gen.wrapping_add(1);
            self.packets[id as usize] = st;
            self.packets[id as usize].gen = gen;
            id
        } else {
            self.packets.push(st);
            (self.packets.len() - 1) as PacketId
        }
    }

    /// Move packets from the NIC injection queue into output queues while
    /// the injection window has room. A packet whose preferred output port
    /// is already full (per-port window) is deferred — rotated to the back
    /// of the queue — so that concurrent flows on different ports are not
    /// head-of-line blocked behind each other at the NIC.
    fn pump_nic(&mut self, node: NodeId, app: Option<&mut dyn Application>) {
        let _ = app;
        let mut attempts = self.nodes[node.idx()].nic_pending.len();
        while attempts > 0 {
            attempts -= 1;
            let ns = &self.nodes[node.idx()];
            if ns.nic_pending.is_empty() || ns.out_bytes_total >= self.cfg.nic_window_bytes {
                return;
            }
            // hxlint: allow(P001) guarded by the nic_pending.is_empty() early-return above
            let pkt = self.nodes[node.idx()].nic_pending.pop_front().unwrap();
            if !self.route_and_enqueue_nic(node, pkt) {
                self.nodes[node.idx()].nic_pending.push_back(pkt);
            }
        }
    }

    /// NIC-side routing: like [`Engine::route_and_enqueue`] but refuses
    /// (returns false) when every candidate port is over the per-port
    /// injection window.
    fn route_and_enqueue_nic(&mut self, node: NodeId, pkt: PacketId) -> bool {
        let min_q = {
            let topo = self.topo.as_ref().unwrap_or(&self.net.topo);
            let (target, vc) = {
                let p = &mut self.packets[pkt as usize];
                if let Some(w) = p.waypoint {
                    if self.net.router.waypoint_reached(topo, node, w) {
                        p.waypoint = None;
                    }
                }
                (p.waypoint.unwrap_or(p.dst_node), p.vc)
            };
            let mut cand = std::mem::take(&mut self.cand);
            cand.clear();
            self.net
                .router
                .candidates(topo, node, vc, target, &mut cand);
            let min_q = cand
                .iter()
                .map(|h| self.nodes[node.idx()].out[h.port.idx()].queued_bytes)
                .min()
                .unwrap_or(0);
            self.cand = cand;
            min_q
        };
        if min_q >= self.cfg.nic_port_window_bytes {
            return false;
        }
        self.route_and_enqueue(node, pkt);
        true
    }

    /// Route `pkt` at `node` and append it to the chosen output queue.
    /// A packet with no healthy path — its target is disconnected by the
    /// current failure set — is *parked* (keeping whatever input buffer
    /// it occupies) until a scheduled repair re-routes it; a waypoint
    /// the failures cut off is abandoned in favor of the direct path
    /// first.
    fn route_and_enqueue(&mut self, node: NodeId, pkt: PacketId) {
        let topo = self.topo.as_ref().unwrap_or(&self.net.topo);
        let (target, vc) = {
            let p = &mut self.packets[pkt as usize];
            if let Some(w) = p.waypoint {
                if self.net.router.waypoint_reached(topo, node, w) {
                    p.waypoint = None;
                }
            }
            (p.waypoint.unwrap_or(p.dst_node), p.vc)
        };
        debug_assert_ne!(node, target, "routing a packet already at its target");
        let mut cand = std::mem::take(&mut self.cand);
        cand.clear();
        self.net
            .router
            .candidates(topo, node, vc, target, &mut cand);
        if cand.is_empty() {
            self.cand = cand;
            if self.packets[pkt as usize].waypoint.take().is_some()
                && node != self.packets[pkt as usize].dst_node
            {
                return self.route_and_enqueue(node, pkt);
            }
            self.parked.push((node, pkt));
            return;
        }
        // Score: free downstream credits minus our queued bytes.
        let mut best = 0usize;
        let mut best_score = i64::MIN;
        let mut ties = 0u32;
        for (i, h) in cand.iter().enumerate() {
            let peer = self.net.topo.peer(node, h.port);
            let occ =
                self.nodes[peer.node.idx()].in_occ[peer.port.idx() * self.num_vcs + h.vc as usize];
            let free = self.cfg.buffer_bytes.saturating_sub(occ) as i64;
            let score = free - self.nodes[node.idx()].out[h.port.idx()].queued_bytes as i64;
            if score > best_score {
                best = i;
                best_score = score;
                ties = 1;
            } else if score == best_score {
                // Reservoir-sample among ties for unbiased adaptivity.
                ties += 1;
                if self.rng.random_range(0..ties) == 0 {
                    best = i;
                }
            }
        }
        let hop = cand[best];
        self.cand = cand;
        let bytes = self.packets[pkt as usize].bytes as u64;
        self.packets[pkt as usize].vc = hop.vc;
        let ns = &mut self.nodes[node.idx()];
        ns.out[hop.port.idx()].queues[hop.vc as usize].push_back(pkt);
        ns.out[hop.port.idx()].queued_bytes += bytes;
        ns.out_bytes_total += bytes;
        self.try_transmit(node, hop.port);
    }

    /// Attempt to transmit a head packet of (node, port): round-robin over
    /// the per-VC queues, skipping VCs without downstream credit (those
    /// register as waiters) so one blocked VC never blocks the others.
    fn try_transmit(&mut self, node: NodeId, port: PortId) {
        {
            let op = &self.nodes[node.idx()].out[port.idx()];
            if op.busy_until > self.now {
                return;
            }
        }
        let link = *self.net.topo.link(node, port);
        let peer = link.peer;
        let nvc = self.num_vcs as u8;
        let start = self.nodes[node.idx()].out[port.idx()].rr;
        let mut chosen: Option<(PacketId, u64, u8)> = None;
        for k in 0..nvc {
            let vc = (start + k) % nvc;
            let Some(&pkt) = self.nodes[node.idx()].out[port.idx()].queues[vc as usize].front()
            else {
                continue;
            };
            debug_assert_eq!(self.packets[pkt as usize].vc, vc);
            let bytes = self.packets[pkt as usize].bytes as u64;
            let slot = peer.port.idx() * self.num_vcs + vc as usize;
            if self.nodes[peer.node.idx()].in_occ[slot] + bytes > self.cfg.buffer_bytes {
                // No credit on this VC: register once, try the next VC.
                let op = &mut self.nodes[node.idx()].out[port.idx()];
                if op.stalled_mask & (1 << vc) == 0 {
                    op.stalled_mask |= 1 << vc;
                    self.nodes[peer.node.idx()].waiters[slot].push((node, port));
                    if self.sink.enabled() {
                        self.sink.instant_args(
                            "packet_stall",
                            "packet",
                            self.now,
                            vec![
                                ("node", node.idx() as u64),
                                ("port", port.idx() as u64),
                                ("vc", vc as u64),
                            ],
                        );
                    }
                    if self.tel_metrics {
                        self.reg.inc(self.c_packet_stalls, 1);
                    }
                }
                continue;
            }
            chosen = Some((pkt, bytes, vc));
            break;
        }
        let Some((pkt, bytes, vc)) = chosen else {
            return;
        };
        // Reserve downstream space and ship it.
        let slot = peer.port.idx() * self.num_vcs + vc as usize;
        self.nodes[peer.node.idx()].in_occ[slot] += bytes;
        let ser = (bytes as f64 * link.spec.ps_per_byte).round() as u64;
        {
            let op = &mut self.nodes[node.idx()].out[port.idx()];
            op.queues[vc as usize].pop_front();
            op.queued_bytes -= bytes;
            op.busy_until = self.now + ser;
            op.busy_ps += ser;
            op.rr = (vc + 1) % nvc;
        }
        self.nodes[node.idx()].out_bytes_total -= bytes;
        self.stats.packets_forwarded += 1;
        self.stats.node_forwarded[node.idx()] += 1;
        // The packet now holds the downstream buffer; remember the buffer
        // it held before so PortFree can release it after serialization.
        let prev_held = self.packets[pkt as usize]
            .held
            .replace((peer.node, peer.port, vc));
        self.packets[pkt as usize].in_flight = true;
        let msg = self.packets[pkt as usize].msg;
        self.push_event(
            self.now + ser,
            Event::PortFree {
                node,
                port,
                msg,
                bytes: bytes as u32,
                release: prev_held,
            },
        );
        let fwd_ser = if self.cfg.cut_through {
            (bytes.min(self.cfg.flit_bytes) as f64 * link.spec.ps_per_byte).round() as u64
        } else {
            ser
        };
        let gen = self.packets[pkt as usize].gen;
        self.push_event(
            self.now + fwd_ser + link.spec.latency_ps + self.cfg.hop_latency_ps,
            Event::Arrive(peer.node, peer.port, pkt, gen),
        );
    }

    fn on_port_free(
        &mut self,
        node: NodeId,
        port: PortId,
        msg: MsgId,
        bytes: u32,
        release: Option<(NodeId, PortId, u8)>,
        app: &mut dyn Application,
    ) {
        // Release the buffer the packet occupied before this hop.
        if let Some((hn, hp, hvc)) = release {
            self.release_buffer(hn, hp, hvc, bytes as u64);
        } else {
            // First hop: the packet left the source NIC. Account injection.
            let m = &mut self.msgs[msg as usize];
            m.injected_packets += 1;
            if m.injected_packets == m.num_packets {
                let info = m.info;
                let mut cmds = std::mem::take(&mut self.cmd_scratch);
                {
                    let mut ctx = Ctx::new(self.now, &mut cmds);
                    app.on_send_complete(&mut ctx, info);
                }
                self.apply_cmds(&mut cmds, app);
                self.cmd_scratch = cmds;
            }
        }
        // Output queue space was freed: the local NIC (if any) may inject.
        // Accelerators also forward transit traffic (HxMesh/torus), so this
        // must run for every departure, not just first hops.
        self.pump_nic(node, None);
        self.try_transmit(node, port);
    }

    fn release_buffer(&mut self, node: NodeId, port: PortId, vc: u8, bytes: u64) {
        let slot = port.idx() * self.num_vcs + vc as usize;
        let ns = &mut self.nodes[node.idx()];
        debug_assert!(ns.in_occ[slot] >= bytes, "buffer accounting underflow");
        ns.in_occ[slot] -= bytes;
        // Rotate the waiter list through the scratch buffer: the slot gets
        // the (empty) scratch, we drain the old list, and its capacity
        // becomes the next scratch — no allocation in steady state. The
        // swap (rather than iterating in place) is required because
        // `try_transmit` may push new waiters onto this very slot.
        let mut waiters = std::mem::take(&mut self.waiter_scratch);
        debug_assert!(waiters.is_empty());
        std::mem::swap(&mut waiters, &mut self.nodes[node.idx()].waiters[slot]);
        let vc_bit = 1u8 << (slot % self.num_vcs) as u8;
        for (wn, wp) in waiters.drain(..) {
            self.nodes[wn.idx()].out[wp.idx()].stalled_mask &= !vc_bit;
            self.try_transmit(wn, wp);
        }
        self.waiter_scratch = waiters;
    }

    fn on_arrive(&mut self, node: NodeId, port: PortId, pkt: PacketId, app: &mut dyn Application) {
        let _ = port;
        self.packets[pkt as usize].in_flight = false;
        let dst = self.packets[pkt as usize].dst_node;
        if node == dst {
            // Ejection: free the buffer immediately and deliver.
            let (bytes, vc, msg) = {
                let p = &self.packets[pkt as usize];
                (p.bytes as u64, p.vc, p.msg)
            };
            if let Some((hn, hp, hvc)) = self.packets[pkt as usize].held.take() {
                debug_assert_eq!((hn, hvc), (node, vc));
                debug_assert_eq!(hp, port);
                self.release_buffer(hn, hp, hvc, bytes);
            }
            self.free_packets.push(pkt);
            self.stats.bytes_delivered += bytes;
            let m = &mut self.msgs[msg as usize];
            m.delivered_packets += 1;
            m.delivered_bytes += bytes;
            if m.delivered_packets == m.num_packets {
                debug_assert_eq!(m.delivered_bytes, m.info.bytes);
                let info = m.info;
                let start_ps = m.start_ps;
                if self.tel_metrics {
                    self.reg
                        .record(self.h_msg_latency, self.now.saturating_sub(start_ps));
                    self.reg.inc(self.c_flows_drained, 1);
                }
                if self.sink.enabled() {
                    self.sink.instant_args(
                        "flow_drain",
                        "packet",
                        self.now,
                        vec![("src", info.src_rank as u64), ("dst", info.dst_rank as u64)],
                    );
                }
                self.stats.messages_delivered += 1;
                // Pre-sized in `new` to one slot per rank.
                self.stats.rank_recv_done_ps[info.dst_rank as usize] = self.now;
                self.stats.rank_recv_bytes[info.dst_rank as usize] += info.bytes;
                let mut cmds = std::mem::take(&mut self.cmd_scratch);
                {
                    let mut ctx = Ctx::new(self.now, &mut cmds);
                    app.on_message(&mut ctx, info);
                }
                self.apply_cmds(&mut cmds, app);
                self.cmd_scratch = cmds;
            }
            return;
        }
        // Transit: pick the next hop. The packet keeps occupying this input
        // buffer (reserved at upstream transmit time) until it moves on.
        self.route_and_enqueue(node, pkt);
    }
}

/// Extra field kept out of the struct literal above for clarity.
#[allow(dead_code)]
trait EngineGuard {}

impl Engine<'_> {
    /// Diagnostic: describe packets still in flight (for deadlock hunts).
    pub fn dump_stuck(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, p) in self.packets.iter().enumerate() {
            if self.free_packets.contains(&(i as u32)) {
                continue;
            }
            let m = &self.msgs[p.msg as usize];
            if m.delivered_packets >= m.num_packets {
                continue;
            }
            out.push(format!(
                "pkt{} msg{} {}->{} vc{} held={:?} waypoint={:?}",
                i, p.msg, m.info.src_rank, m.info.dst_rank, p.vc, p.held, p.waypoint
            ));
        }
        for (ni, n) in self.nodes.iter().enumerate() {
            for (pi, op) in n.out.iter().enumerate() {
                if op.queues.iter().any(|q| !q.is_empty()) {
                    out.push(format!(
                        "node{} port{} queues={:?} stalled_mask={:#b} busy_until={}",
                        ni, pi, op.queues, op.stalled_mask, op.busy_until
                    ));
                }
            }
            if !n.nic_pending.is_empty() {
                out.push(format!("node{} nic_pending={:?}", ni, n.nic_pending));
            }
            for (si, w) in n.waiters.iter().enumerate() {
                if !w.is_empty() {
                    out.push(format!(
                        "node{} slot{} (port {}, vc {}) occ={} waiters={:?}",
                        ni,
                        si,
                        si / self.num_vcs,
                        si % self.num_vcs,
                        n.in_occ[si],
                        w
                    ));
                }
            }
        }
        out
    }
}

struct EngineProbe<'a> {
    nodes: &'a [NodeState],
}

impl LoadProbe for EngineProbe<'_> {
    fn queued_bytes(&self, node: NodeId, port: PortId) -> u64 {
        self.nodes[node.idx()].out[port.idx()].queued_bytes
    }
}
