//! The application callback surface shared by every simulation backend.
//!
//! Traffic generators implement [`Application`]; the engines (packet-level
//! [`crate::Engine`], flow-level [`crate::FlowEngine`]) drive the callbacks
//! and execute the [`Cmd`]s they enqueue through [`Ctx`]. Keeping this
//! surface engine-agnostic is what makes the two backends drop-in
//! interchangeable (see [`crate::simulate`]).

use crate::Time;

/// Description of a delivered message, passed to application callbacks.
#[derive(Clone, Copy, Debug)]
pub struct MsgInfo {
    pub src_rank: u32,
    pub dst_rank: u32,
    pub bytes: u64,
    pub tag: u64,
}

/// Commands an application can issue from its callbacks.
#[derive(Clone, Copy, Debug)]
pub enum Cmd {
    /// Send `bytes` from rank `src` to rank `dst`, labelled `tag`.
    Send {
        src: u32,
        dst: u32,
        bytes: u64,
        tag: u64,
    },
    /// Simulate `ps` of local computation on `rank`, then call
    /// [`Application::on_compute_done`] with `tag`.
    Compute { rank: u32, ps: Time, tag: u64 },
}

/// Context handed to application callbacks. Commands are buffered and
/// executed by the engine after the callback returns.
pub struct Ctx<'a> {
    now: Time,
    cmds: &'a mut Vec<Cmd>,
}

impl<'a> Ctx<'a> {
    /// Engine-side constructor: callbacks at simulated time `now` push
    /// their commands into `cmds`.
    pub(crate) fn new(now: Time, cmds: &'a mut Vec<Cmd>) -> Self {
        Self { now, cmds }
    }

    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    #[inline]
    pub fn send(&mut self, src: u32, dst: u32, bytes: u64, tag: u64) {
        assert!(bytes > 0, "zero-byte sends are not modelled");
        self.cmds.push(Cmd::Send {
            src,
            dst,
            bytes,
            tag,
        });
    }

    #[inline]
    pub fn compute(&mut self, rank: u32, ps: Time, tag: u64) {
        self.cmds.push(Cmd::Compute { rank, ps, tag });
    }
}

/// Traffic generator interface. All callbacks run at simulated time
/// `ctx.now()`.
pub trait Application {
    /// Called once at time 0 to kick off traffic.
    fn start(&mut self, ctx: &mut Ctx);

    /// A message has been fully delivered to `info.dst_rank`.
    fn on_message(&mut self, ctx: &mut Ctx, info: MsgInfo);

    /// All packets of the message have left the source NIC (the local send
    /// buffer may be reused — MPI-style local completion).
    fn on_send_complete(&mut self, _ctx: &mut Ctx, _info: MsgInfo) {}

    /// A [`Cmd::Compute`] issued by this application finished.
    fn on_compute_done(&mut self, _ctx: &mut Ctx, _rank: u32, _tag: u64) {}
}
