//! Run statistics collected by the engine.

use crate::Time;

/// A structured, non-fatal simulation failure. Replaces the engines'
/// historical `panic!` on a disconnected destination: a run whose
/// failure set (static or mid-run) leaves some traffic with no path
/// *reports* through [`SimStats::error`] instead of aborting the
/// process, so sweep drivers can record the cell and move on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Traffic between the named ranks was still cut off from its
    /// destination when the run ended (stalled flows / parked packets
    /// with no repair left on the schedule).
    Disconnected {
        src_rank: u32,
        dst_rank: u32,
        /// Failed-link count at the end of the run, for the message.
        failed_links: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Disconnected {
                src_rank,
                dst_rank,
                failed_links,
            } => write!(
                f,
                "rank {src_rank} -> rank {dst_rank} disconnected at end of run \
                 ({failed_links} failed links)"
            ),
        }
    }
}

/// Counters and timing collected over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Simulated time at which the last event executed.
    pub finish_ps: Time,
    pub events: u64,
    pub messages_sent: u64,
    pub messages_delivered: u64,
    pub bytes_delivered: u64,
    pub packets_forwarded: u64,
    /// Messages still in flight when the event queue drained — nonzero
    /// means a routing/flow-control deadlock or a missing dependency.
    pub undelivered_messages: usize,
    /// The run hit `max_time_ps`.
    pub timed_out: bool,
    /// Flow engine only: number of epochs on which the max-min solver ran
    /// at least one progressive filling. Drains of flows that shared no
    /// link with any still-active flow skip the recompute, so this stays
    /// well below `events` on low-contention traffic. Always 0 for the
    /// packet engine.
    pub rate_recomputes: u64,
    /// Flow engine only: recompute epochs whose fills covered *every*
    /// active flow — the solver found no component it could leave alone.
    /// Under `RateMode::Full` every recompute epoch lands here.
    pub rate_recomputes_full: u64,
    /// Flow engine only: recompute epochs whose fills covered a proper
    /// subset of the active flows — the O(affected) win. The perf_smoke
    /// `flow_scale` gate asserts these dominate (≥90%) at 16k endpoints.
    pub rate_recomputes_component: u64,
    /// Flow engine only: cumulative flows touched by fills, summed over
    /// recompute epochs. Under `RateMode::Full` this is Σ active-flow
    /// counts; `Incremental` is provably ≤ that (pinned differentially).
    pub rate_touched_flows: u64,
    /// Flow engine only, populated when `SimConfig::trace_rates` is set:
    /// one `(now.to_bits(), msg_id, rate.to_bits())` entry per active
    /// flow per dirty epoch, sorted by msg id within an epoch. The
    /// differential suite compares this bitwise across solver modes.
    pub rate_trace: Vec<(u64, u32, u64)>,
    /// Sum of busy picoseconds over all directed links.
    pub total_link_busy_ps: u64,
    /// Per destination rank: time its last message completed.
    pub rank_recv_done_ps: Vec<Time>,
    /// Per destination rank: total bytes received.
    pub rank_recv_bytes: Vec<u64>,
    /// Per node (accelerator or switch): packets it transmitted on any of
    /// its output ports. Used to verify the §IV-A no-interference claim —
    /// traffic of a job never crosses boards of another job.
    pub node_forwarded: Vec<u64>,
    /// Mid-run cable failures applied from the [`crate::FailureSchedule`]
    /// (no-op re-fails of an already-dead cable are not counted).
    pub link_fail_events: u64,
    /// Mid-run cable repairs applied from the schedule (no-op repairs of
    /// a healthy cable are not counted).
    pub link_repair_events: u64,
    /// Flow engine: flows whose route set was rebuilt because a mid-run
    /// failure cut a link they were crossing.
    pub flows_rerouted: u64,
    /// Flow engine: cumulative picoseconds flows spent stalled with no
    /// healthy route, waiting for a repair (or the end of the run).
    pub flow_stall_ps: u64,
    /// Packet engine: packets dropped on a failed cable and re-injected
    /// by the sender under the configured [`crate::RetransmitPolicy`].
    pub packet_retransmits: u64,
    /// Structured failure report (see [`SimError`]); `Some` makes the
    /// run not [`SimStats::clean`].
    pub error: Option<SimError>,
}

impl SimStats {
    /// Aggregate delivered bandwidth in bytes per picosecond.
    pub fn delivered_bytes_per_ps(&self) -> f64 {
        if self.finish_ps == 0 {
            return 0.0;
        }
        self.bytes_delivered as f64 / self.finish_ps as f64
    }

    /// Aggregate delivered bandwidth in Gb/s.
    pub fn delivered_gbps(&self) -> f64 {
        self.delivered_bytes_per_ps() * 8.0 * 1000.0
    }

    /// Per-rank receive bandwidth in bytes/ps, for ranks that received.
    pub fn rank_recv_bytes_per_ps(&self) -> Vec<f64> {
        self.rank_recv_bytes
            .iter()
            .zip(self.rank_recv_done_ps.iter())
            .map(|(&b, &t)| if t > 0 { b as f64 / t as f64 } else { 0.0 })
            .collect()
    }

    /// True if the run completed every message without timing out or
    /// reporting a structured error.
    pub fn clean(&self) -> bool {
        !self.timed_out && self.undelivered_messages == 0 && self.error.is_none()
    }

    /// Mean utilization of the network's directed links over the run:
    /// busy link-picoseconds divided by `2 * num_links` (each full-duplex
    /// link is two directed channels) times the run length. Both engines
    /// account `total_link_busy_ps` exactly (every byte a link carries
    /// contributes its serialization time), so this is comparable across
    /// backends. `hxcluster` weights it by job runtime for its
    /// cluster-wide link-utilization metric.
    pub fn mean_link_utilization(&self, num_links: usize) -> f64 {
        if self.finish_ps == 0 || num_links == 0 {
            return 0.0;
        }
        self.total_link_busy_ps as f64 / (2.0 * num_links as f64 * self.finish_ps as f64)
    }
}
