//! # hxsim — network simulator with packet-level and flow-level backends
//!
//! A from-scratch network simulator standing in for the Structural
//! Simulation Toolkit (SST) the paper uses (App. F). Two interchangeable
//! backends share one [`Application`] callback surface, one [`SimConfig`],
//! and one [`SimStats`] output (select one with [`EngineKind`] /
//! [`simulate`]):
//!
//! * **[`Engine`]** — the packet-level discrete-event engine: 8 KiB
//!   packets, per-hop serialization at the link rate, credit-based flow
//!   control with per-(port, VC) buffers, packet-level adaptive routing
//!   over the topology's [`hxnet::Router`] candidates, virtual channels
//!   for deadlock freedom (§IV-C3), and source-side waypoint selection
//!   (Valiant / column-first).
//! * **[`FlowEngine`]** — the flow-level fluid fast path: every message
//!   becomes a handful of subflows with fixed routes, links are shared by
//!   max-min fairness, and time advances in rate-change epochs. Orders of
//!   magnitude faster at large scale, at the fidelity cost documented in
//!   [`flow`].
//!
//! Time is measured in integer **picoseconds**; at 400 Gb/s one byte is
//! exactly 20 ps, so all serialization times are exact.
//!
//! ```
//! use hxnet::hammingmesh::HxMeshParams;
//! use hxsim::{simulate, EngineKind, SimConfig, apps::MessageBlast};
//!
//! let net = HxMeshParams::square(2, 2).build();
//! for kind in EngineKind::all() {
//!     let mut app = MessageBlast::pairs(vec![(0, 15, 1 << 20)]); // 1 MiB
//!     let stats = simulate(&net, SimConfig::default(), kind, &mut app);
//!     assert_eq!(stats.messages_delivered, 1);
//!     assert!(stats.finish_ps > 0);
//! }
//! ```

pub mod app;
pub mod apps;
pub mod engine;
pub mod failure;
pub mod flow;
pub mod stats;

#[cfg(test)]
mod tests_edge;
#[cfg(test)]
mod tests_midrun;

pub use app::{Application, Cmd, Ctx, MsgInfo};
pub use engine::{Engine, RateMode, SimConfig};
pub use failure::{FailureSchedule, LinkEvent, LinkEventKind, RetransmitPolicy};
pub use flow::FlowEngine;
pub use stats::{SimError, SimStats};

/// Simulated time in picoseconds.
pub type Time = u64;

/// Default packet size from the paper's SST configuration (App. F).
pub const DEFAULT_PACKET_BYTES: u64 = 8192;

/// Default per-(port,VC) input buffer. The paper uses 32 MB per port; we
/// split it evenly across at most 4 VCs.
pub const DEFAULT_BUFFER_BYTES: u64 = 8 * 1024 * 1024;

/// Which simulation backend to run. Both accept the same [`SimConfig`] and
/// [`Application`] and produce the same [`SimStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Packet-level discrete-event simulation ([`Engine`]): highest
    /// fidelity, runtime proportional to packets x hops.
    Packet,
    /// Flow-level fluid simulation ([`FlowEngine`]): max-min fair rate
    /// sharing in rate-change epochs; the fast path for large scales.
    Flow,
}

impl EngineKind {
    pub fn all() -> [EngineKind; 2] {
        [EngineKind::Packet, EngineKind::Flow]
    }

    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Packet => "packet",
            EngineKind::Flow => "flow",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "packet" => Ok(EngineKind::Packet),
            "flow" => Ok(EngineKind::Flow),
            other => Err(format!(
                "unknown engine {other:?} (expected \"packet\" or \"flow\")"
            )),
        }
    }
}

/// Run `app` on `net` with the selected backend. The single entry point
/// call sites use to stay engine-agnostic.
pub fn simulate(
    net: &hxnet::Network,
    cfg: SimConfig,
    kind: EngineKind,
    app: &mut dyn Application,
) -> SimStats {
    match kind {
        EngineKind::Packet => Engine::new(net, cfg).run(app),
        EngineKind::Flow => FlowEngine::new(net, cfg).run(app),
    }
}
