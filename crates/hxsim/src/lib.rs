//! # hxsim — packet-level network simulator
//!
//! A from-scratch discrete-event, packet-level network simulator standing
//! in for the Structural Simulation Toolkit (SST) the paper uses (App. F).
//! It models:
//!
//! * store-and-forward packet switching with per-hop serialization at the
//!   link rate (8 KiB packets, 400 Gb/s links by default — App. F),
//! * credit-based flow control: each `(input port, VC)` buffer has a byte
//!   capacity; a sender reserves downstream space before transmitting and
//!   stalls otherwise (head-of-line, like input-buffered switches),
//! * packet-level adaptive routing: at every hop the topology's
//!   [`hxnet::Router`] provides minimal candidates and the engine picks
//!   the one with the most free downstream credits,
//! * virtual channels for deadlock freedom, driven entirely by the router
//!   (§IV-C3),
//! * source-side path selection (Valiant / intermediate boards) through
//!   router waypoints,
//! * an [`Application`] callback interface for traffic generation with
//!   simulated compute time.
//!
//! Time is measured in integer **picoseconds**; at 400 Gb/s one byte is
//! exactly 20 ps, so all serialization times are exact.
//!
//! ```
//! use hxnet::hammingmesh::HxMeshParams;
//! use hxsim::{Engine, SimConfig, apps::MessageBlast};
//!
//! let net = HxMeshParams::square(2, 2).build();
//! let mut app = MessageBlast::pairs(vec![(0, 15, 1 << 20)]); // 1 MiB
//! let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
//! assert_eq!(stats.messages_delivered, 1);
//! assert!(stats.finish_ps > 0);
//! ```

pub mod apps;
pub mod engine;
pub mod stats;

#[cfg(test)]
mod tests_edge;

pub use engine::{Application, Cmd, Ctx, Engine, MsgInfo, SimConfig};
pub use stats::SimStats;

/// Simulated time in picoseconds.
pub type Time = u64;

/// Default packet size from the paper's SST configuration (App. F).
pub const DEFAULT_PACKET_BYTES: u64 = 8192;

/// Default per-(port,VC) input buffer. The paper uses 32 MB per port; we
/// split it evenly across at most 4 VCs.
pub const DEFAULT_BUFFER_BYTES: u64 = 8 * 1024 * 1024;
