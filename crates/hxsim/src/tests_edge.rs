//! Engine edge-case tests: tiny buffers, congestion backpressure, window
//! effects, cut-through vs store-and-forward, and timeouts.

use crate::apps::{Alltoall, MessageBlast, UniformRandom};
use crate::{Engine, SimConfig};
use hxnet::fattree::single_switch;
use hxnet::hammingmesh::HxMeshParams;

#[test]
fn tiny_buffers_still_drain() {
    // One packet of buffer per (port, VC): maximum backpressure.
    let net = HxMeshParams::square(2, 2).build();
    let cfg = SimConfig {
        buffer_bytes: crate::DEFAULT_PACKET_BYTES,
        max_time_ps: 500_000_000_000,
        ..SimConfig::default()
    };
    let mut app = Alltoall::new(net.num_ranks(), 64 << 10, 2);
    let stats = Engine::new(&net, cfg).run(&mut app);
    assert!(stats.clean(), "{stats:?}");
}

#[test]
fn store_and_forward_is_slower_than_cut_through() {
    let net = HxMeshParams::square(2, 2).build();
    let run = |cut_through: bool| {
        let cfg = SimConfig {
            cut_through,
            ..SimConfig::default()
        };
        let mut app = MessageBlast::pairs(vec![(0, 15, 256 << 10)]);
        Engine::new(&net, cfg).run(&mut app).finish_ps
    };
    let ct = run(true);
    let sf = run(false);
    assert!(ct < sf, "cut-through {ct} !< store-and-forward {sf}");
}

#[test]
fn congestion_backpressure_reduces_bandwidth_not_correctness() {
    // Everyone sends to rank 0: an incast. All messages must still arrive,
    // at roughly the ejection-port line rate.
    let net = single_switch(9, "incast");
    let sends: Vec<(u32, u32, u64)> = (1..9).map(|s| (s, 0, 1 << 20)).collect();
    let total: u64 = sends.iter().map(|s| s.2).sum();
    let mut app = MessageBlast::pairs(sends);
    let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
    assert!(stats.clean());
    // One 400 Gb/s ejection link: at least total * 20 ps.
    assert!(
        stats.finish_ps >= total * 20,
        "{} < {}",
        stats.finish_ps,
        total * 20
    );
    assert!(
        stats.finish_ps < total * 20 * 2,
        "incast should stream near line rate"
    );
}

#[test]
fn max_time_guard_reports_timeout() {
    let net = single_switch(2, "pair");
    let cfg = SimConfig {
        max_time_ps: 10,
        ..SimConfig::default()
    };
    let mut app = MessageBlast::pairs(vec![(0, 1, 1 << 20)]);
    let stats = Engine::new(&net, cfg).run(&mut app);
    assert!(stats.timed_out);
    assert!(!stats.clean());
}

#[test]
fn single_byte_messages_work() {
    let net = HxMeshParams::square(2, 2).build();
    let mut app = MessageBlast::pairs(vec![(0, 5, 1), (5, 0, 1)]);
    let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
    assert!(stats.clean());
    assert_eq!(stats.messages_delivered, 2);
    assert_eq!(stats.bytes_delivered, 2);
}

#[test]
fn node_forwarded_counters_conserve_packets() {
    let net = HxMeshParams::square(2, 2).build();
    let mut app = UniformRandom::new(net.num_ranks(), 32 << 10, 4, 5);
    let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
    assert!(stats.clean());
    let sum: u64 = stats.node_forwarded.iter().sum();
    assert_eq!(sum, stats.packets_forwarded);
    // Sources forwarded at least their own injected packets.
    assert!(sum >= stats.messages_sent);
}

#[test]
fn narrow_nic_window_serializes_but_completes() {
    let net = HxMeshParams::square(2, 2).build();
    let run = |window: u64| {
        let cfg = SimConfig {
            nic_window_bytes: window,
            nic_port_window_bytes: window,
            ..SimConfig::default()
        };
        let mut app = Alltoall::new(net.num_ranks(), 32 << 10, 2);
        let stats = Engine::new(&net, cfg).run(&mut app);
        assert!(stats.clean(), "window {window}: {stats:?}");
        stats.finish_ps
    };
    let narrow = run(crate::DEFAULT_PACKET_BYTES);
    let wide = run(64 * crate::DEFAULT_PACKET_BYTES);
    assert!(
        wide <= narrow,
        "wider window must not be slower: {wide} vs {narrow}"
    );
}

#[test]
fn waypoints_off_still_completes_alltoall() {
    let net = HxMeshParams::square(2, 4).build();
    let cfg = SimConfig {
        use_waypoints: false,
        ..SimConfig::default()
    };
    let mut app = Alltoall::new(net.num_ranks(), 16 << 10, 2);
    let stats = Engine::new(&net, cfg).run(&mut app);
    assert!(stats.clean(), "{stats:?}");
}

#[test]
fn stats_bandwidth_helpers() {
    let net = single_switch(2, "pair");
    let mut app = MessageBlast::pairs(vec![(0, 1, 1 << 20)]);
    let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
    assert!(stats.delivered_gbps() > 100.0);
    assert!(stats.delivered_bytes_per_ps() > 0.0);
    let per_rank = stats.rank_recv_bytes_per_ps();
    assert!(per_rank[1] > 0.0);
}

#[test]
fn mean_link_utilization_is_sane_on_both_engines() {
    // One saturating pair through a single switch: its two cables should
    // be busy a large share of the run, the idle ones not at all — the
    // mean over all directed links lands strictly inside (0, 1].
    let net = single_switch(4, "quad");
    let links = net.topo.num_links();
    for kind in crate::EngineKind::all() {
        let mut app = MessageBlast::pairs(vec![(0, 1, 4 << 20)]);
        let stats = crate::simulate(&net, SimConfig::default(), kind, &mut app);
        assert!(stats.clean(), "{kind}: {stats:?}");
        let u = stats.mean_link_utilization(links);
        assert!(u > 0.05 && u <= 1.0, "{kind}: utilization {u}");
        assert_eq!(stats.mean_link_utilization(0), 0.0);
    }
}
