//! The sixteen network configurations of Table II with their App. C bills
//! of materials.
//!
//! Counts are the paper's closed forms (App. C1/C2); tests assert that the
//! resulting costs reproduce the Table II cost column to within its
//! printed precision. Two deliberate deviations are documented in
//! DESIGN.md: the torus is priced with AoC inter-board cables (the paper's
//! text says DAC but its dollar figure matches AoC), and the large-HyperX
//! switch count follows the per-plane arithmetic that matches the paper's
//! dollar figure (its prose doubles it inconsistently).

use crate::diameter;
use crate::inventory::{Inventory, Prices};

/// Which of the two design points of §III-D.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterSize {
    /// ≈1,000 accelerators.
    Small,
    /// ≈16,000 accelerators.
    Large,
}

/// One row of Table II.
#[derive(Clone, Debug)]
pub struct Table2Entry {
    pub name: &'static str,
    pub cluster: ClusterSize,
    pub endpoints: usize,
    pub inventory: Inventory,
    pub diameter: u32,
    /// The cost printed in Table II (M$), for regression checks.
    pub paper_cost_musd: f64,
    /// The diameter printed in Table II.
    pub paper_diameter: u32,
}

impl Table2Entry {
    pub fn cost_musd(&self) -> f64 {
        self.inventory.cost_musd(&Prices::default())
    }
}

/// All eight topologies for the given cluster size, in Table II row order.
pub fn table2_entries(cluster: ClusterSize) -> Vec<Table2Entry> {
    match cluster {
        ClusterSize::Small => vec![
            Table2Entry {
                name: "nonblocking fat tree",
                cluster,
                endpoints: 1024,
                // 16 planes of (32+16 switches, 1,024 DAC, 1,024 AoC).
                inventory: Inventory::new(48, 1024, 1024).planes(16),
                diameter: diameter::fat_tree_diameter(1024, 64),
                paper_cost_musd: 25.3,
                paper_diameter: 4,
            },
            Table2Entry {
                name: "50% tapered fat tree",
                cluster,
                endpoints: 1050,
                inventory: Inventory::new(34, 1050, 550).planes(16),
                diameter: diameter::fat_tree_diameter(1050, 64),
                paper_cost_musd: 17.6,
                paper_diameter: 4,
            },
            Table2Entry {
                name: "75% tapered fat tree",
                cluster,
                endpoints: 1071,
                inventory: Inventory::new(26, 1071, 273).planes(16),
                diameter: diameter::fat_tree_diameter(1071, 64),
                paper_cost_musd: 13.2,
                paper_diameter: 4,
            },
            Table2Entry {
                name: "Dragonfly",
                cluster,
                endpoints: 1024,
                // 16 planes of (64 physical switches, 1,920 DAC, 512 AoC).
                inventory: Inventory::new(64, 1920, 512).planes(16),
                diameter: diameter::dragonfly_diameter(8, 8),
                paper_cost_musd: 27.9,
                paper_diameter: 3,
            },
            Table2Entry {
                name: "2D HyperX",
                cluster,
                endpoints: 1024,
                // 4 planes of (64 switches, 2,048 DAC, 2,048 AoC).
                inventory: Inventory::new(64, 2048, 2048).planes(4),
                diameter: diameter::hyperx_diameter(32, 32, 64),
                paper_cost_musd: 10.8,
                paper_diameter: 4,
            },
            Table2Entry {
                name: "Hx2Mesh",
                cluster,
                endpoints: 1024,
                inventory: Inventory::new(32, 1024, 1024).planes(4),
                diameter: diameter::hxmesh_diameter(2, 2, 16, 16, 64),
                paper_cost_musd: 5.4,
                paper_diameter: 4,
            },
            Table2Entry {
                name: "Hx4Mesh",
                cluster,
                endpoints: 1024,
                inventory: Inventory::new(16, 512, 512).planes(4),
                diameter: diameter::hxmesh_diameter(4, 4, 8, 8, 64),
                paper_cost_musd: 2.7,
                paper_diameter: 8,
            },
            Table2Entry {
                name: "2D torus",
                cluster,
                endpoints: 1024,
                // 4 planes of 1,024 inter-board cables, no switches.
                // DESIGN.md substitution #6: AoC pricing matches the paper's
                // $2.5M figure; its text says DAC.
                inventory: Inventory::new(0, 0, 1024).planes(4),
                diameter: diameter::torus_diameter(32, 32),
                paper_cost_musd: 2.5,
                paper_diameter: 32,
            },
        ],
        ClusterSize::Large => vec![
            Table2Entry {
                name: "nonblocking fat tree",
                cluster,
                endpoints: 16384,
                // 16 planes of (512+512+256 switches, 16,384 DAC, 32,768 AoC).
                inventory: Inventory::new(1280, 16384, 32768).planes(16),
                diameter: diameter::fat_tree_diameter(16384, 64),
                paper_cost_musd: 680.0,
                paper_diameter: 6,
            },
            Table2Entry {
                name: "50% tapered fat tree",
                cluster,
                endpoints: 16380,
                // App. C2a: 794 switches, 17,160 AoC, 16,380 DAC per plane.
                inventory: Inventory::new(794, 16380, 17160).planes(16),
                diameter: diameter::fat_tree_diameter(16380, 64),
                paper_cost_musd: 419.0,
                paper_diameter: 6,
            },
            Table2Entry {
                name: "75% tapered fat tree",
                cluster,
                endpoints: 16422,
                // App. C2a: 8,304 switches total; 16,422 DAC and 8,372 AoC
                // per plane.
                inventory: Inventory::new(8304, 0, 0)
                    .add(Inventory::new(0, 16422, 8372).planes(16)),
                diameter: diameter::fat_tree_diameter(16422, 64),
                paper_cost_musd: 271.0,
                paper_diameter: 6,
            },
            Table2Entry {
                name: "Dragonfly",
                cluster,
                endpoints: 16320,
                // App. C2b: 960 switches, 31,200 DAC, 7,680 AoC per plane.
                inventory: Inventory::new(960, 31200, 7680).planes(16),
                diameter: diameter::dragonfly_diameter(16, 30),
                paper_cost_musd: 429.0,
                paper_diameter: 5,
            },
            Table2Entry {
                name: "2D HyperX",
                cluster,
                endpoints: 16384,
                // Per plane: 128 row trees + 128 column trees of 12
                // switches each = 3,072; 32,768 DAC; 98,304 AoC.
                inventory: Inventory::new(3072, 32768, 98304).planes(4),
                diameter: diameter::hyperx_diameter(128, 128, 64),
                paper_cost_musd: 448.0,
                paper_diameter: 8,
            },
            Table2Entry {
                name: "Hx2Mesh",
                cluster,
                endpoints: 16384,
                // Per plane: 2*64 row lines + 2*64 column lines, each a
                // 128-port tree of 6 switches = 1,536; 16,384 DAC;
                // 16,384 + 2*16,384 = 49,152 AoC.
                inventory: Inventory::new(1536, 16384, 49152).planes(4),
                diameter: diameter::hxmesh_diameter(2, 2, 64, 64, 64),
                paper_cost_musd: 224.0,
                paper_diameter: 8,
            },
            Table2Entry {
                name: "Hx4Mesh",
                cluster,
                endpoints: 16384,
                // Per plane: 4 single switches per board row/column:
                // 2*32*4 = 256 switches; 8,192 DAC; 8,192 AoC.
                inventory: Inventory::new(256, 8192, 8192).planes(4),
                diameter: diameter::hxmesh_diameter(4, 4, 32, 32, 64),
                paper_cost_musd: 43.3,
                paper_diameter: 8,
            },
            Table2Entry {
                name: "2D torus",
                cluster,
                endpoints: 16384,
                inventory: Inventory::new(0, 0, 16384).planes(4),
                diameter: diameter::torus_diameter(128, 128),
                paper_cost_musd: 39.5,
                paper_diameter: 128,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every computed cost must match Table II to its printed precision
    /// (±0.5% covers the paper's rounding to 3 significant digits).
    #[test]
    fn costs_match_table2() {
        for cluster in [ClusterSize::Small, ClusterSize::Large] {
            for e in table2_entries(cluster) {
                let got = e.cost_musd();
                let rel = (got - e.paper_cost_musd).abs() / e.paper_cost_musd;
                // Table II prints 2-3 significant digits (2.47 -> "2.5").
                assert!(
                    rel < 0.015,
                    "{:?} {}: computed {:.2} M$, paper {} M$ ({:.2}% off)",
                    e.cluster,
                    e.name,
                    got,
                    e.paper_cost_musd,
                    rel * 100.0
                );
            }
        }
    }

    #[test]
    fn diameters_match_table2() {
        for cluster in [ClusterSize::Small, ClusterSize::Large] {
            for e in table2_entries(cluster) {
                assert_eq!(
                    e.diameter, e.paper_diameter,
                    "{:?} {}: diameter formula disagrees with Table II",
                    e.cluster, e.name
                );
            }
        }
    }

    /// Cable counts from the constructed graphs must agree with the closed
    /// forms for the small cluster (where App. C is explicit).
    #[test]
    fn small_graph_counts_agree_with_closed_forms() {
        use hxnet::Cable;
        let entries = table2_entries(ClusterSize::Small);

        let ft = hxnet::fattree::FatTreeParams::small_nonblocking().build();
        assert_eq!(
            ft.topo.count_cables(Cable::Dac) as u64 * 16,
            entries[0].inventory.dac_cables
        );
        assert_eq!(
            ft.topo.count_cables(Cable::Aoc) as u64 * 16,
            entries[0].inventory.aoc_cables
        );
        assert_eq!(
            ft.topo.count_switches() as u64 * 16,
            entries[0].inventory.switches
        );

        let df = hxnet::dragonfly::DragonflyParams::small().build();
        // The paper packs two 31-port virtual switches per 64-port physical
        // switch, turning one local DAC per physical switch into an
        // internal trace: 1,984 graph cables - 64 = 1,920 priced cables.
        assert_eq!(df.topo.count_cables(Cable::Dac) as u64, 1984);
        assert_eq!(
            (df.topo.count_cables(Cable::Dac) as u64 - 64) * 16,
            entries[3].inventory.dac_cables
        );
        assert_eq!(
            df.topo.count_cables(Cable::Aoc) as u64 * 16,
            entries[3].inventory.aoc_cables
        );

        let hx2 = hxnet::hammingmesh::HxMeshParams::small_hx2().build();
        assert_eq!(
            hx2.topo.count_cables(Cable::Dac) as u64 * 4,
            entries[5].inventory.dac_cables
        );
        assert_eq!(
            hx2.topo.count_cables(Cable::Aoc) as u64 * 4,
            entries[5].inventory.aoc_cables
        );

        let hx4 = hxnet::hammingmesh::HxMeshParams::small_hx4().build();
        assert_eq!(
            hx4.topo.count_cables(Cable::Dac) as u64 * 4,
            entries[6].inventory.dac_cables
        );

        let torus = hxnet::torus::TorusParams::small().build();
        assert_eq!(
            torus.topo.count_cables(Cable::Aoc) as u64 * 4,
            entries[7].inventory.aoc_cables
        );
    }

    /// Table II derived claim (§I): Hx4Mesh allreduce is >8x cheaper than a
    /// nonblocking fat tree; sanity-check the cost ratios behind it.
    #[test]
    fn headline_cost_ratios() {
        let small = table2_entries(ClusterSize::Small);
        let ft = small[0].cost_musd();
        let hx4 = small[6].cost_musd();
        assert!(ft / hx4 > 8.0, "small: {ft:.1} / {hx4:.1}");
        let large = table2_entries(ClusterSize::Large);
        let ft = large[0].cost_musd();
        let hx4 = large[6].cost_musd();
        assert!(ft / hx4 > 14.0, "large: {ft:.1} / {hx4:.1}");
    }
}
