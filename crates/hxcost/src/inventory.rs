//! Network bill of materials and pricing (App. E).

use hxnet::{Cable, Network};

/// Component prices in USD. Defaults are the paper's (Colfaxdirect,
/// sourced 2022-03-25, App. E).
#[derive(Clone, Copy, Debug)]
pub struct Prices {
    /// 64-port switch (Edgecore AS7816-64X).
    pub switch_usd: f64,
    /// 20 m active optical cable (Mellanox VCSEL-based).
    pub aoc_usd: f64,
    /// 5 m passive copper cable (Mellanox DAC).
    pub dac_usd: f64,
}

impl Default for Prices {
    fn default() -> Self {
        Self {
            switch_usd: 14_280.0,
            aoc_usd: 603.0,
            dac_usd: 272.0,
        }
    }
}

/// Bill of materials for a full multi-plane network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Inventory {
    pub switches: u64,
    pub dac_cables: u64,
    pub aoc_cables: u64,
}

impl Inventory {
    pub const fn new(switches: u64, dac_cables: u64, aoc_cables: u64) -> Self {
        Self {
            switches,
            dac_cables,
            aoc_cables,
        }
    }

    /// Scale a per-plane inventory to `planes` planes.
    pub const fn planes(self, planes: u64) -> Self {
        Self {
            switches: self.switches * planes,
            dac_cables: self.dac_cables * planes,
            aoc_cables: self.aoc_cables * planes,
        }
    }

    /// Total capital expenditure in USD.
    pub fn cost_usd(&self, p: &Prices) -> f64 {
        self.switches as f64 * p.switch_usd
            + self.dac_cables as f64 * p.dac_usd
            + self.aoc_cables as f64 * p.aoc_usd
    }

    /// Cost in millions of USD (Table II's unit).
    pub fn cost_musd(&self, p: &Prices) -> f64 {
        self.cost_usd(p) / 1.0e6
    }

    /// Count a constructed single-plane graph and scale to `planes`.
    /// PCB traces are free and not counted (§III-C: included in packaging).
    pub fn from_network(net: &Network, planes: u64) -> Self {
        Self {
            switches: net.topo.count_switches() as u64,
            dac_cables: net.topo.count_cables(Cable::Dac) as u64,
            aoc_cables: net.topo.count_cables(Cable::Aoc) as u64,
        }
        .planes(planes)
    }

    // Named `add` for call-site readability; not an `std::ops::Add` impl
    // because inventories are summed by value in builder-style chains.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Self) -> Self {
        Self {
            switches: self.switches + other.switches,
            dac_cables: self.dac_cables + other.dac_cables,
            aoc_cables: self.aoc_cables + other.aoc_cables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prices_match_appendix_e() {
        let p = Prices::default();
        assert_eq!(p.switch_usd, 14280.0);
        assert_eq!(p.aoc_usd, 603.0);
        assert_eq!(p.dac_usd, 272.0);
    }

    #[test]
    fn cost_arithmetic() {
        let inv = Inventory::new(2, 10, 20);
        let p = Prices::default();
        assert_eq!(
            inv.cost_usd(&p),
            2.0 * 14280.0 + 10.0 * 272.0 + 20.0 * 603.0
        );
    }

    #[test]
    fn plane_scaling() {
        let inv = Inventory::new(3, 5, 7).planes(4);
        assert_eq!(inv, Inventory::new(12, 20, 28));
    }

    #[test]
    fn from_network_counts_cables() {
        let net = hxnet::hammingmesh::HxMeshParams::small_hx4().build();
        let inv = Inventory::from_network(&net, 4);
        assert_eq!(inv.dac_cables, 4 * 512);
        assert_eq!(inv.aoc_cables, 4 * 512);
    }
}
