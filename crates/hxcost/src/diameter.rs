//! Network diameter in cables, §III-B.
//!
//! The paper counts *all* cables between source and destination endpoints,
//! including the endpoint attachment cables, "to ensure fairness with
//! direct topologies".

/// Diameter of a `q`-endpoint full-bandwidth fat tree built from `k`-port
/// switches: `2(⌈log_{k/2}(q/k)⌉ + 1)` (§III-B). A single switch (q ≤ k)
/// gives 2.
pub fn fat_tree_diameter(q: usize, k: usize) -> u32 {
    if q <= k {
        return 2;
    }
    let levels = ((q as f64 / k as f64).ln() / ((k / 2) as f64).ln())
        .ceil()
        .max(1.0) as u32;
    2 * (levels + 1)
}

/// Diameter of an HxMesh (§III-B): board walks in both dimensions plus the
/// two global-network traversals (row lines have `2x` ports, column lines
/// `2y`).
pub fn hxmesh_diameter(a: usize, b: usize, x: usize, y: usize, k: usize) -> u32 {
    let board = 2 * (((a - 1) / 2) + ((b - 1) / 2)) as u32;
    board + fat_tree_diameter(2 * x, k) + fat_tree_diameter(2 * y, k)
}

/// Diameter of a 2D HyperX = Hx1Mesh.
pub fn hyperx_diameter(x: usize, y: usize, k: usize) -> u32 {
    hxmesh_diameter(1, 1, x, y, k)
}

/// Diameter of a `cols x rows` 2D torus (endpoint cables are the links
/// themselves).
pub fn torus_diameter(cols: usize, rows: usize) -> u32 {
    (cols / 2 + rows / 2) as u32
}

/// Diameter of a Dragonfly with `h` global links per switch and `groups`
/// groups: 3 cables (endpoint, global, endpoint) when every switch reaches
/// every other group directly, else 5 (two extra local hops).
pub fn dragonfly_diameter(h: usize, groups: usize) -> u32 {
    if h >= groups.saturating_sub(1) {
        3
    } else {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hxnet::{Network, NodeId};

    /// Max BFS distance between endpoint pairs.
    fn graph_diameter(net: &Network, sample: usize) -> u32 {
        let step = (net.endpoints.len() / sample.max(1)).max(1);
        let mut max = 0;
        for &src in net.endpoints.iter().step_by(step) {
            let d = net.topo.bfs_hops(src);
            for &e in &net.endpoints {
                let dd = d[NodeId::idx(e)];
                assert_ne!(dd, u32::MAX, "disconnected");
                max = max.max(dd);
            }
        }
        max
    }

    #[test]
    fn table2_small_diameters() {
        // Table II small cluster: FT 4, Dragonfly 3, HyperX 4, Hx2 4,
        // Hx4 8, torus 32.
        assert_eq!(fat_tree_diameter(1024, 64), 4);
        assert_eq!(dragonfly_diameter(8, 8), 3);
        assert_eq!(hyperx_diameter(32, 32, 64), 4);
        assert_eq!(hxmesh_diameter(2, 2, 16, 16, 64), 4);
        assert_eq!(hxmesh_diameter(4, 4, 8, 8, 64), 8);
        assert_eq!(torus_diameter(32, 32), 32);
    }

    #[test]
    fn table2_large_diameters() {
        // Table II large cluster: FT 6, Dragonfly 5, HyperX 8, Hx2 8,
        // Hx4 8, torus 128.
        assert_eq!(fat_tree_diameter(16384, 64), 6);
        assert_eq!(dragonfly_diameter(16, 30), 5);
        assert_eq!(hyperx_diameter(128, 128, 64), 8);
        assert_eq!(hxmesh_diameter(2, 2, 64, 64, 64), 8);
        assert_eq!(hxmesh_diameter(4, 4, 32, 32, 64), 8);
        assert_eq!(torus_diameter(128, 128), 128);
    }

    #[test]
    fn formulas_bound_constructed_graphs() {
        // The formula is an upper bound for adaptive-minimal paths; BFS
        // (true shortest) must not exceed it.
        let net = hxnet::hammingmesh::HxMeshParams::square(2, 4).build();
        assert!(graph_diameter(&net, 8) <= hxmesh_diameter(2, 2, 4, 4, 64));
        let net = hxnet::hammingmesh::HxMeshParams::square(4, 4).build();
        assert!(graph_diameter(&net, 8) <= hxmesh_diameter(4, 4, 4, 4, 64));
        let net = hxnet::torus::TorusParams {
            cols: 8,
            rows: 8,
            board: 2,
        }
        .build();
        assert_eq!(graph_diameter(&net, 8), torus_diameter(8, 8));
        let net = hxnet::fattree::FatTreeParams::small_nonblocking().build();
        assert_eq!(graph_diameter(&net, 32), 4);
        // Dragonfly: Table II's "3" counts switch-to-switch cables; the
        // endpoint-to-endpoint BFS adds the two endpoint cables (and a
        // local hop when the global link lands on a neighbor switch).
        let net = hxnet::dragonfly::DragonflyParams::small().build();
        let d = graph_diameter(&net, 64);
        assert!(
            (4..=5).contains(&d),
            "small Dragonfly endpoint diameter {d}, expected 4-5 \
             (3 switch-switch cables + endpoint attachments)"
        );
    }
}
