//! # hxcost — capital-expenditure and diameter models (§III-B/C/D, App. C/E)
//!
//! The paper prices networks from three components only (§III-C): 64-port
//! switches, 5 m DAC cables, and 20 m AoC cables, with April-2022
//! Colfaxdirect prices. This crate reproduces the full Table II cost and
//! diameter columns:
//!
//! * [`Prices`] / [`Inventory`] — the cost arithmetic,
//! * [`table2`] — closed-form switch/cable counts for all 16
//!   configurations of App. C (8 topologies x small/large cluster),
//! * [`diameter`] — the §III-B diameter formulas plus BFS verification
//!   against constructed [`hxnet`] graphs.

pub mod diameter;
pub mod inventory;
pub mod table2;

pub use diameter::{dragonfly_diameter, fat_tree_diameter, hxmesh_diameter, torus_diameter};
pub use inventory::{Inventory, Prices};
pub use table2::{table2_entries, ClusterSize, Table2Entry};
