//! The rule set, v1.
//!
//! Rules are token-sequence matchers — see the module docs in
//! [`crate::lexer`] for what the lexer guarantees. Scoping is by crate
//! and target kind (`FileCx`), with `#[cfg(test)]` / `#[test]` regions
//! excluded where a rule only covers shipped code.

use crate::lexer::{Tok, Token};
use crate::{FileCx, FileKind};

/// The crates whose in-memory state feeds simulation output. Any
/// hash-ordered iteration here can leak `RandomState` into results —
/// exactly the bug class that nearly sank PR 5's byte-identical-at-any-
/// thread-count guarantee twice (`BoardMesh::placements`, `defragment()`).
pub const SIM_STATE_CRATES: &[&str] = &[
    "hxnet",
    "hxsim",
    "hxalloc",
    "hxcluster",
    "hxcollect",
    "hxserve",
    "hxtelemetry",
];

/// One catalog entry, also rendered by `--list-rules` and the README.
pub struct RuleInfo {
    pub code: &'static str,
    pub summary: &'static str,
    pub scope: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "D001",
        summary: "no HashMap/HashSet in sim-state crates: hash iteration order is per-process \
                  (RandomState) and leaks into simulation state; use BTreeMap/BTreeSet",
        scope: "all code in sim-state crates (hxnet, hxsim, hxalloc, hxcluster, hxcollect, \
                hxserve, hxtelemetry)",
    },
    RuleInfo {
        code: "D002",
        summary: "no ambient entropy or wall-clock in library code (thread_rng, RandomState, \
                  Instant::now, SystemTime::now); randomness must thread from a CLI seed",
        scope: "library (non-bin, non-test, non-bench) code of every crate",
    },
    RuleInfo {
        code: "D003",
        summary: "no float reduction directly off a parallel iterator (par_iter ... sum/fold/\
                  reduce): reassemble in input-index order (collect, then reduce sequentially)",
        scope: "all code, including bins and tests",
    },
    RuleInfo {
        code: "P001",
        summary: "no unwrap/expect/panic! in library non-test code without a waiver naming the \
                  invariant that rules the panic out",
        scope: "library (non-bin, non-test, non-bench) code of every crate",
    },
];

/// Waiver-system diagnostics (not themselves waivable).
pub const WAIVER_RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "W001",
        summary: "unused waiver: no finding of the waived rule on the covered line",
        scope: "everywhere a waiver comment appears",
    },
    RuleInfo {
        code: "W002",
        summary: "waiver without a reason: every waiver must say why the finding is safe",
        scope: "everywhere a waiver comment appears",
    },
    RuleInfo {
        code: "W003",
        summary: "malformed waiver or unknown rule code in a waiver",
        scope: "everywhere a waiver comment appears",
    },
];

pub fn is_lintable_rule(code: &str) -> bool {
    RULES.iter().any(|r| r.code == code)
}

pub(crate) struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

fn finding(rule: &'static str, t: &Token, message: String) -> RawFinding {
    RawFinding {
        rule,
        line: t.line,
        col: t.col,
        message,
    }
}

/// `toks[i]` starts the path segment sequence `a :: b`?
fn path_seq(toks: &[Token], i: usize, b: &str) -> bool {
    toks.len() > i + 3
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && toks[i + 3].is_ident(b)
}

fn prev_code_tok(toks: &[Token], i: usize) -> Option<&Token> {
    toks[..i]
        .iter()
        .rev()
        .find(|t| !matches!(t.tok, Tok::LineComment(_)))
}

fn next_code_tok(toks: &[Token], i: usize) -> Option<&Token> {
    toks[i + 1..]
        .iter()
        .find(|t| !matches!(t.tok, Tok::LineComment(_)))
}

/// Run every rule over one file's token stream. `in_test[i]` marks tokens
/// inside `#[cfg(test)]` / `#[test]` regions.
pub(crate) fn scan(toks: &[Token], in_test: &[bool], cx: &FileCx) -> Vec<RawFinding> {
    let sim_state = SIM_STATE_CRATES.contains(&cx.crate_name.as_str());
    let lib_code = cx.kind == FileKind::Lib;
    let mut out = Vec::new();
    // D003 state: saw a parallel-iterator adapter since the last `;`.
    // Statement-local by construction; a `;` inside a closure body also
    // resets it, so the rule is a heuristic that can miss reductions
    // buried in multi-statement closures — never a false positive on
    // sequential chains, which is the right trade-off for a gate.
    let mut par_chain = false;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else {
            if t.is_punct(';') {
                par_chain = false;
            }
            continue;
        };
        let tested = in_test.get(i).copied().unwrap_or(false);
        match id.as_str() {
            "HashMap" | "HashSet" if sim_state => {
                out.push(finding(
                    "D001",
                    t,
                    format!(
                        "`{id}` in sim-state crate `{}`: hash iteration order is per-process \
                         RandomState and can leak into simulation state; use `BTree{}` or waive \
                         with the access pattern that makes order irrelevant",
                        cx.crate_name,
                        if id == "HashMap" { "Map" } else { "Set" },
                    ),
                ));
            }
            "thread_rng" | "RandomState" if lib_code && !tested => {
                out.push(finding(
                    "D002",
                    t,
                    format!(
                        "`{id}` is ambient entropy in library code: all randomness must thread \
                         from a CLI seed so runs reproduce byte-identically"
                    ),
                ));
            }
            "Instant" | "SystemTime" if lib_code && !tested && path_seq(toks, i, "now") => {
                out.push(finding(
                    "D002",
                    t,
                    format!(
                        "`{id}::now()` is ambient wall-clock in library code: simulated time \
                         must come from the event loop, wall-clock belongs in bins"
                    ),
                ));
            }
            "par_iter" | "into_par_iter" | "par_bridge" => par_chain = true,
            "sum" | "fold" | "reduce"
                if par_chain && prev_code_tok(toks, i).is_some_and(|p| p.is_punct('.')) =>
            {
                out.push(finding(
                    "D003",
                    t,
                    format!(
                        "`.{id}(..)` fed by a parallel iterator in the same statement: \
                         reduction order follows thread scheduling; `collect()` into index \
                         order first, then reduce sequentially"
                    ),
                ));
            }
            "unwrap" | "expect"
                if lib_code
                    && !tested
                    && prev_code_tok(toks, i).is_some_and(|p| p.is_punct('.'))
                    && next_code_tok(toks, i).is_some_and(|n| n.is_punct('(')) =>
            {
                out.push(finding(
                    "P001",
                    t,
                    format!(
                        "`.{id}(..)` in library non-test code: return an error or waive with \
                         the invariant that rules the panic out"
                    ),
                ));
            }
            "panic"
                if lib_code
                    && !tested
                    && next_code_tok(toks, i).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(finding(
                    "P001",
                    t,
                    "`panic!` in library non-test code: return an error or waive with the \
                     invariant that rules the panic out"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
    out
}
