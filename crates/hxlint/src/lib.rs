//! `hxlint` — the workspace's first-party determinism-and-soundness lint.
//!
//! An offline, dependency-free static-analysis pass over the workspace's
//! `.rs` sources (hand-rolled lexer, same no-crates.io regime as
//! `vendor/`). It exists because the repo's headline guarantee — sweep
//! output byte-identical to sequential at any thread count — was nearly
//! sunk twice by `HashMap` iteration order leaking into simulation state,
//! each time found only by runtime bisection. The lint rejects that bug
//! class (and its neighbors: ambient entropy/wall-clock, scheduling-order
//! float reductions, panicking library paths) at check time.
//!
//! Rule catalog: see [`rules::RULES`] (`hxlint --list-rules` renders it).
//!
//! # Waivers
//!
//! A finding is silenced by a plain `//` comment naming the rule and a
//! reason:
//!
//! ```text
//! let cache: HashMap<K, V> = HashMap::new(); // hxlint: allow(D001) get/insert only, never iterated
//! ```
//!
//! A trailing waiver covers its own line; a waiver alone on a line covers
//! the next line that contains code. Waivers without a reason and waivers
//! that match no finding are themselves errors (`W001`–`W003`), so the
//! waiver set can never rot.
//!
//! # Enforcement points
//!
//! 1. `cargo run -p hxlint` — the standalone gate (`--format json` for
//!    machines);
//! 2. `cargo test -p hxlint` — `tests/workspace_clean.rs` runs the same
//!    pass, so a plain workspace `cargo test` enforces it;
//! 3. the dedicated `hxlint` CI job.

pub mod lexer;
pub mod rules;

use lexer::{Tok, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// How a file is compiled, which decides rule scope: `D002`/`P001` cover
/// `Lib` only (bins own their wall-clock and may panic on bad CLI input;
/// tests panic by design), `D001`/`D003` cover everything.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    Lib,
    Bin,
    Test,
    Bench,
    Example,
}

/// Lint context for one file.
#[derive(Clone, Debug)]
pub struct FileCx {
    /// Workspace crate the file belongs to (`hxnet`, …); the root crate's
    /// files are `hammingmesh-repro`.
    pub crate_name: String,
    pub kind: FileKind,
}

/// One diagnostic, with a span that points at the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A parsed `// hxlint: allow(RULE) reason` comment.
#[derive(Debug)]
struct Waiver {
    code: String,
    reason: String,
    /// Line of the comment itself (spans for W00x diagnostics).
    line: u32,
    col: u32,
    /// Line whose findings this waiver covers.
    target_line: u32,
    used: bool,
}

/// Mark every token inside a `#[cfg(test)]` / `#[test]` item. The scan is
/// attribute-driven: a test-ish attribute claims the next item, which
/// extends to its matching `}` (or terminating `;` for braceless items).
fn test_regions(toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    let mut pending_test: Option<usize> = None; // index of the first test attr's `#`
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let close = matching(toks, i + 1, '[', ']');
            let attr = &toks[i + 2..close.min(toks.len())];
            if is_test_attr(attr) {
                pending_test.get_or_insert(i);
            }
            i = close.saturating_add(1);
            continue;
        }
        if let Some(start) = pending_test {
            let end = item_end(toks, i);
            for flag in in_test.iter_mut().take(end + 1).skip(start) {
                *flag = true;
            }
            pending_test = None;
            i = end + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// `#[test]` exactly, or a `cfg(...)` mentioning `test` without `not`.
fn is_test_attr(attr: &[Token]) -> bool {
    let has = |s: &str| attr.iter().any(|t| t.is_ident(s));
    (attr.len() == 1 && attr[0].is_ident("test")) || (has("cfg") && has("test") && !has("not"))
}

/// Index of the token closing the bracket opened at `open` (which must
/// hold `open_c`). Returns the last index when unbalanced.
fn matching(toks: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// End index of the item starting at `i`: the `}` matching its first
/// body-level `{`, or the first `;` outside any nesting.
fn item_end(toks: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(i) {
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth = depth.saturating_sub(1),
            Tok::Punct('{') if depth == 0 => return matching(toks, j, '{', '}'),
            Tok::Punct(';') if depth == 0 => return j,
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Extract waivers from the token stream's line comments.
fn parse_waivers(toks: &[Token], findings: &mut Vec<Finding>, file: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::LineComment(text) = &t.tok else {
            continue;
        };
        let trimmed = text.trim_start();
        let Some(rest) = trimmed.strip_prefix("hxlint:") else {
            continue; // doc comments (`///`) keep their marker and fall out here
        };
        let rest = rest.trim_start();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            let (code, reason) = r.split_once(')')?;
            let code = code.trim();
            let well_formed = code.len() == 4
                && code.starts_with(|c: char| c.is_ascii_uppercase())
                && code[1..].chars().all(|c| c.is_ascii_digit());
            well_formed.then(|| (code.to_string(), reason.trim().to_string()))
        });
        let Some((code, reason)) = parsed else {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: "W003".into(),
                message: format!(
                    "malformed waiver `//{text}`: expected `// hxlint: allow(RULE) reason`"
                ),
            });
            continue;
        };
        if !rules::is_lintable_rule(&code) {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: "W003".into(),
                message: format!("waiver names unknown rule `{code}`"),
            });
            continue;
        }
        if reason.is_empty() {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                col: t.col,
                rule: "W002".into(),
                message: format!(
                    "waiver for `{code}` carries no reason: say why the finding is safe"
                ),
            });
            continue;
        }
        // Trailing comment covers its own line; a standalone one covers
        // the next line holding code.
        let trailing = toks[..i]
            .iter()
            .any(|p| p.line == t.line && !matches!(p.tok, Tok::LineComment(_)));
        let target_line = if trailing {
            t.line
        } else {
            toks[i + 1..]
                .iter()
                .find(|n| !matches!(n.tok, Tok::LineComment(_)))
                .map(|n| n.line)
                .unwrap_or(t.line)
        };
        out.push(Waiver {
            code,
            reason,
            line: t.line,
            col: t.col,
            target_line,
            used: false,
        });
    }
    out
}

/// Lint one source file. Public so the self-test fixtures can drive the
/// exact production path with a synthetic [`FileCx`].
pub fn lint_source(file: &str, cx: &FileCx, src: &str) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let in_test = test_regions(&toks);
    let raw = rules::scan(&toks, &in_test, cx);
    let mut findings = Vec::new();
    let mut waivers = parse_waivers(&toks, &mut findings, file);
    for f in raw {
        let waived = waivers
            .iter_mut()
            .find(|w| w.code == f.rule && w.target_line == f.line);
        match waived {
            Some(w) => w.used = true,
            None => findings.push(Finding {
                file: file.to_string(),
                line: f.line,
                col: f.col,
                rule: f.rule.to_string(),
                message: f.message,
            }),
        }
    }
    for w in &waivers {
        if !w.used {
            findings.push(Finding {
                file: file.to_string(),
                line: w.line,
                col: w.col,
                rule: "W001".into(),
                message: format!(
                    "unused waiver for `{}` (reason: {}): no such finding on line {} — \
                     delete it or move it to the offending line",
                    w.code, w.reason, w.target_line
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    findings
}

/// Classify a workspace-relative path into its [`FileCx`].
/// `None` means out of scope (vendored shims, build outputs, fixtures).
pub fn classify(rel: &Path) -> Option<FileCx> {
    let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
    match *parts.first()? {
        "vendor" | "target" | ".git" => return None,
        _ => {}
    }
    if parts.contains(&"fixtures") {
        return None; // hxlint's own deliberately-broken test inputs
    }
    let (crate_name, rest) = if parts[0] == "crates" && parts.len() >= 3 {
        (parts[1].to_string(), &parts[2..])
    } else {
        ("hammingmesh-repro".to_string(), &parts[..])
    };
    let kind = match *rest.first()? {
        "tests" => FileKind::Test,
        "benches" => FileKind::Bench,
        "examples" => FileKind::Example,
        "src" if rest.contains(&"bin") || rest.last() == Some(&"main.rs") => FileKind::Bin,
        "src" => FileKind::Lib,
        _ => return None, // stray top-level .rs files are out of scope
    };
    Some(FileCx { crate_name, kind })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let iter = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = iter
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    // Deterministic walk order — the linter holds itself to its own rules.
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "vendor" | "target" | ".git" | "fixtures") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every in-scope `.rs` file under the workspace root. Findings are
/// ordered by (file, line, col) — stable across machines and runs.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut findings = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let Some(cx) = classify(rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        findings.extend(lint_source(&rel.display().to_string(), &cx, &src));
    }
    Ok(findings)
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(crate_name: &str, kind: FileKind) -> FileCx {
        FileCx {
            crate_name: crate_name.into(),
            kind,
        }
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let src = r#"
            fn lib_code() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
            #[test]
            fn standalone() { z.unwrap(); }
        "#;
        let f = lint_source("f.rs", &cx("hxnet", FileKind::Lib), src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "P001");
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let f = lint_source("f.rs", &cx("hxnet", FileKind::Lib), src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn trailing_and_standalone_waivers() {
        let src = "use std::collections::HashMap; // hxlint: allow(D001) import for a waived map\n\
                   // hxlint: allow(D001) get/insert only, never iterated\n\
                   type T = HashMap<u32, u32>;\n";
        let f = lint_source("f.rs", &cx("hxcluster", FileKind::Lib), src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_waiver_is_an_error() {
        let src = "// hxlint: allow(D001) nothing here\nfn f() {}\n";
        let f = lint_source("f.rs", &cx("hxnet", FileKind::Lib), src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "W001");
    }

    #[test]
    fn waiver_without_reason_is_an_error_and_does_not_suppress() {
        let src = "type T = HashSet<u32>; // hxlint: allow(D001)\n";
        let f = lint_source("f.rs", &cx("hxnet", FileKind::Lib), src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["D001", "W002"], "{f:?}");
    }

    #[test]
    fn unknown_rule_waiver_is_an_error() {
        let src = "// hxlint: allow(D999) bogus\nfn f() {}\n";
        let f = lint_source("f.rs", &cx("hxnet", FileKind::Lib), src);
        assert_eq!(f[0].rule, "W003");
    }

    #[test]
    fn classify_scopes() {
        // Crate names are directory names (`bench`, not the package name
        // `hxbench`) — the sim-state list uses directory names too.
        let k = |p: &str| classify(Path::new(p)).map(|c| (c.crate_name, c.kind));
        assert_eq!(
            k("crates/hxnet/src/route.rs"),
            Some(("hxnet".into(), FileKind::Lib))
        );
        assert_eq!(
            k("crates/bench/src/bin/perf_smoke.rs"),
            Some(("bench".into(), FileKind::Bin))
        );
        assert_eq!(
            k("crates/bench/tests/determinism.rs"),
            Some(("bench".into(), FileKind::Test))
        );
        assert_eq!(
            k("tests/proptests.rs"),
            Some(("hammingmesh-repro".into(), FileKind::Test))
        );
        assert_eq!(
            k("src/lib.rs"),
            Some(("hammingmesh-repro".into(), FileKind::Lib))
        );
        assert_eq!(
            k("crates/hxlint/src/main.rs").map(|c| c.1),
            Some(FileKind::Bin)
        );
        // The scenario engine is sim-state: its cache and executor feed
        // simulation results, so D001 applies to all of crates/hxserve.
        let hxserve = k("crates/hxserve/src/exec.rs").unwrap();
        assert_eq!(hxserve, ("hxserve".into(), FileKind::Lib));
        assert!(crate::rules::SIM_STATE_CRATES.contains(&hxserve.0.as_str()));
        assert_eq!(
            k("crates/hxserve/src/main.rs"),
            Some(("hxserve".into(), FileKind::Bin))
        );
        assert!(classify(Path::new("vendor/rayon/src/lib.rs")).is_none());
        assert!(classify(Path::new("crates/hxlint/tests/fixtures/d001_bad.rs")).is_none());
        assert!(classify(Path::new("Cargo.toml")).is_none());
    }
}
