//! CLI for the workspace lint: `cargo run -p hxlint [-- options]`.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use hxlint::rules::{RULES, WAIVER_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn usage() -> ! {
    eprintln!(
        "usage: hxlint [--root PATH] [--format text|json] [--list-rules]\n\
         \n\
         Lints the workspace's .rs sources for determinism and soundness\n\
         (see --list-rules). Waive a finding with an inline comment:\n\
         `// hxlint: allow(D001) <reason>` — unused waivers are errors."
    );
    std::process::exit(2);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => usage(),
            },
            "--list-rules" => {
                for r in RULES.iter().chain(WAIVER_RULES) {
                    println!("{}  {}\n      scope: {}", r.code, r.summary, r.scope);
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("hxlint: cannot determine current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match hxlint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "hxlint: no workspace root above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let findings = match hxlint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hxlint: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!(
                "hxlint: {} finding(s) in {}",
                findings.len(),
                root.display()
            );
        }
        Format::Json => {
            let mut out = String::from("{\"findings\":[");
            for (i, f) in findings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                    json_escape(&f.file),
                    f.line,
                    f.col,
                    json_escape(&f.rule),
                    json_escape(&f.message),
                ));
            }
            out.push_str(&format!("],\"count\":{}}}", findings.len()));
            println!("{out}");
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
