//! A minimal Rust lexer — just enough syntax awareness for the lint rules.
//!
//! The goal is *token-accurate* scanning, not parsing: rules match on
//! identifier/punctuation sequences, so the lexer's one job is to never
//! mistake the inside of a string, char literal, or comment for code (and
//! vice versa). It handles the classic trouble spots: nested block
//! comments, raw strings with arbitrary `#` fences, byte/raw-byte
//! strings, raw identifiers (`r#type`), and the lifetime-vs-char-literal
//! ambiguity after `'`.
//!
//! Line comments are kept as tokens (the waiver syntax lives in them);
//! block comments and doc comments are discarded. Literals are collapsed
//! to a single [`Tok::Literal`] — no rule cares about their content.

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (raw identifiers are unescaped: `r#type` → `type`).
    Ident(String),
    /// Single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// A `//` line comment's text, *excluding* the leading `//` (doc
    /// comments keep their extra `/` or `!` so waiver parsing can reject
    /// them — waivers must be plain `//` comments).
    LineComment(String),
    /// A lifetime such as `'a` (content discarded).
    Lifetime,
    /// String / char / byte / numeric literal (content discarded).
    Literal,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.tok, Tok::Punct(p) if *p == c)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Unterminated constructs (string, block
/// comment) consume to end of input rather than erroring: the linter runs
/// on sources the compiler already accepted, so graceful degradation
/// beats diagnostics here.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.push(Token {
                tok: Tok::LineComment(text),
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // Raw strings / raw identifiers: r"..", r#".."#, r#ident.
        if c == 'r' && matches!(cur.peek(1), Some('"') | Some('#')) {
            if raw_string(&mut cur, 1) {
                out.push(Token {
                    tok: Tok::Literal,
                    line,
                    col,
                });
                continue;
            }
            if cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                cur.bump(); // r
                cur.bump(); // #
                let id = ident(&mut cur);
                out.push(Token {
                    tok: Tok::Ident(id),
                    line,
                    col,
                });
                continue;
            }
        }
        // Byte strings / byte chars: b"..", br"..", b'x'.
        if c == 'b' {
            match cur.peek(1) {
                Some('"') => {
                    cur.bump();
                    string(&mut cur);
                    out.push(Token {
                        tok: Tok::Literal,
                        line,
                        col,
                    });
                    continue;
                }
                Some('\'') => {
                    cur.bump();
                    char_literal(&mut cur);
                    out.push(Token {
                        tok: Tok::Literal,
                        line,
                        col,
                    });
                    continue;
                }
                // `raw_string` consumes nothing when it returns false, so
                // a plain `br` identifier falls through to ident handling.
                Some('r')
                    if matches!(cur.peek(2), Some('"') | Some('#')) && raw_string(&mut cur, 2) =>
                {
                    out.push(Token {
                        tok: Tok::Literal,
                        line,
                        col,
                    });
                    continue;
                }
                _ => {}
            }
        }
        if is_ident_start(c) {
            let id = ident(&mut cur);
            out.push(Token {
                tok: Tok::Ident(id),
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            number(&mut cur);
            out.push(Token {
                tok: Tok::Literal,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            string(&mut cur);
            out.push(Token {
                tok: Tok::Literal,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            let tok = lifetime_or_char(&mut cur);
            out.push(Token { tok, line, col });
            continue;
        }
        cur.bump();
        out.push(Token {
            tok: Tok::Punct(c),
            line,
            col,
        });
    }
    out
}

fn ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        s.push(c);
        cur.bump();
    }
    s
}

/// Numeric literal: digits plus alphanumeric suffix chars, and a decimal
/// point only when followed by a digit (so `1.max(2)` stops at `1`).
fn number(cur: &mut Cursor) {
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) || (c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit())) {
            cur.bump();
        } else {
            break;
        }
    }
}

/// Consume a `"…"` string (cursor on the opening quote), honoring `\"`.
fn string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Try to consume a raw (byte) string whose `r` sits `r_at` chars ahead of
/// the cursor start (cursor is on `r` for `r"…"`, on `b` for `br"…"`).
/// Returns false — consuming nothing — if the `#` fence is not followed by
/// a quote (i.e. this is a raw identifier, not a raw string).
fn raw_string(cur: &mut Cursor, r_at: usize) -> bool {
    let mut hashes = 0usize;
    while cur.peek(r_at + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(r_at + hashes) != Some('"') {
        return false;
    }
    for _ in 0..r_at + hashes + 1 {
        cur.bump();
    }
    // Scan for `"` followed by `hashes` many `#`.
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return true;
        }
    }
    true // unterminated: consumed to EOF
}

/// Consume a `'…'` char literal body (cursor on the opening quote).
fn char_literal(cur: &mut Cursor) {
    cur.bump(); // opening quote
    if cur.bump() == Some('\\') {
        // Escaped char: enough for \n, \', \\, and the lead of \x41 /
        // \u{..}; the trailing digits and closing quote fall to the loop.
        cur.bump();
    }
    while let Some(c) = cur.bump() {
        if c == '\'' {
            break;
        }
    }
}

/// Disambiguate `'a` (lifetime) from `'a'` (char literal), cursor on `'`.
fn lifetime_or_char(cur: &mut Cursor) -> Tok {
    // An escape is always a char literal.
    if cur.peek(1) == Some('\\') {
        char_literal(cur);
        return Tok::Literal;
    }
    // `'x'` with a closing quote right after one char: char literal.
    if cur.peek(2) == Some('\'') && cur.peek(1) != Some('\'') {
        cur.bump();
        cur.bump();
        cur.bump();
        return Tok::Literal;
    }
    // Otherwise `'ident` is a lifetime (including `'static`).
    if cur.peek(1).is_some_and(is_ident_start) {
        cur.bump();
        ident(cur);
        return Tok::Lifetime;
    }
    // Degenerate (`''` or stray quote): treat as literal, consume it.
    char_literal(cur);
    Tok::Literal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            let a = "HashMap in a string";
            /* HashMap in /* a nested */ block comment */
            let b = r#"raw HashMap"#;
            let c = 'H'; let d: &'static str = "x";
            let real = HashMap::new();
        "##;
        assert_eq!(idents(src).iter().filter(|i| *i == "HashMap").count(), 1);
    }

    #[test]
    fn raw_identifiers_and_byte_strings() {
        let src = "let r#type = b\"HashMap\"; let x = br#\"HashSet\"#; fn r#fn() {}";
        let ids = idents(src);
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"fn".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"HashSet".to_string()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn line_comment_text_and_spans() {
        let toks = lex("let x = 1; // hxlint: allow(D001) reason\nlet y = 2;");
        let c = toks
            .iter()
            .find(|t| matches!(t.tok, Tok::LineComment(_)))
            .unwrap();
        assert_eq!(c.line, 1);
        match &c.tok {
            Tok::LineComment(t) => assert_eq!(t.trim(), "hxlint: allow(D001) reason"),
            _ => unreachable!(),
        }
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (2, 5));
    }

    #[test]
    fn doc_comments_keep_their_marker() {
        let toks = lex("/// hxlint: allow(D001) nope\nstruct S;");
        match &toks[0].tok {
            Tok::LineComment(t) => assert!(t.starts_with('/')),
            t => panic!("{t:?}"),
        }
    }

    #[test]
    fn numbers_do_not_swallow_methods() {
        let ids = idents("let x = 1.max(2) + 0.5 + 0xFFu64;");
        assert!(ids.contains(&"max".to_string()));
    }
}
