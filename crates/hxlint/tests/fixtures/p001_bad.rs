//! P001 fixture (broken): panicking calls in library non-test code.
//! Linted as `hxcost` lib code by `tests/fixtures.rs`; never compiled.

pub fn cable_cost(table: &[(u32, f64)], len_m: u32) -> f64 {
    let entry = table.iter().find(|(l, _)| *l == len_m).unwrap();
    entry.1
}

pub fn port_count(radix: Option<u32>) -> u32 {
    radix.expect("radix must be set")
}

pub fn reject(kind: &str) -> ! {
    panic!("unsupported cable kind {kind}")
}
