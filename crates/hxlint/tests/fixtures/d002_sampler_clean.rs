//! D002 fixture (clean): the sampler advances on *simulated* time handed
//! in by the event loop — no clock is ever read, so sample rows depend
//! only on the seed and the workload.
use hxtelemetry::{Registry, Sampler};

pub fn sample_on_sim_time(sampler: &mut Sampler, reg: &Registry, sim_now_ps: u64) {
    sampler.advance(sim_now_ps, reg);
}

#[cfg(test)]
mod tests {
    // Wall-clock in tests is fine: D002 only covers shipped library code.
    #[test]
    fn timing_smoke() {
        let _ = std::time::Instant::now();
    }
}
