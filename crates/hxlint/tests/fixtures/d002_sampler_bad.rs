//! D002 fixture (broken): driving an hxtelemetry sampler off the wall
//! clock. Sample timestamps must be *simulated* time; stamping the ring
//! from `Instant`/`SystemTime` makes every artifact byte differ between
//! runs. Linted as `hxtelemetry` lib code by `tests/fixtures.rs`; never
//! compiled.
use hxtelemetry::{Registry, Sampler};
use std::time::{Instant, SystemTime};

pub fn sample_on_wall_clock(sampler: &mut Sampler, reg: &Registry, epoch: Instant) {
    let now_ps = Instant::now().duration_since(epoch).as_nanos() as u64 * 1000;
    sampler.advance(now_ps, reg);
}

pub fn wall_clock_stamp() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
