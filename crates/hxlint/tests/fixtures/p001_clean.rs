//! P001 fixture (clean): errors propagate; the one residual unwrap is
//! waived with the invariant that rules the panic out; tests may panic.

pub fn cable_cost(table: &[(u32, f64)], len_m: u32) -> Option<f64> {
    table.iter().find(|(l, _)| *l == len_m).map(|(_, c)| *c)
}

pub fn first_cost(table: &[(u32, f64)]) -> f64 {
    if table.is_empty() {
        return 0.0;
    }
    // hxlint: allow(P001) guarded by the is_empty early-return above
    table.first().unwrap().1
}

#[cfg(test)]
mod tests {
    #[test]
    fn lookup_works() {
        // Tests panic on failure by design; P001 does not cover them.
        assert_eq!(super::cable_cost(&[(5, 272.0)], 5).unwrap(), 272.0);
    }
}
