//! D002 fixture (clean): randomness threads from a caller-supplied seeded
//! RNG and time comes from the simulated clock, not the host.
use rand::{rngs::StdRng, Rng};

pub fn jittered_delay(rng: &mut StdRng, base: u64) -> u64 {
    base + rng.random_range(0..10)
}

pub fn stamp(sim_now_ps: u64) -> u64 {
    sim_now_ps
}

#[cfg(test)]
mod tests {
    // Wall-clock in tests is fine: D002 only covers shipped library code.
    #[test]
    fn timing_smoke() {
        let _ = std::time::Instant::now();
    }
}
