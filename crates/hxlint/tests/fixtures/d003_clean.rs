//! D003 fixture (clean): parallel map, collect into input-index order,
//! then reduce sequentially — float addition order is fixed.
use rayon::prelude::*;

pub fn mean_utilization(samples: &[f64]) -> f64 {
    let halved: Vec<f64> = samples.par_iter().map(|s| s * 0.5).collect();
    let total: f64 = halved.iter().sum();
    total / samples.len() as f64
}
