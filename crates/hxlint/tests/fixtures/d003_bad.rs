//! D003 fixture (broken): float reductions fed straight off a parallel
//! iterator. Linted as bin code by `tests/fixtures.rs`; never compiled.
use rayon::prelude::*;

pub fn mean_utilization(samples: &[f64]) -> f64 {
    let total: f64 = samples.par_iter().map(|s| s * 0.5).sum();
    total / samples.len() as f64
}

pub fn max_load(samples: &[f64]) -> f64 {
    samples
        .par_iter()
        .copied()
        .reduce(|| 0.0, f64::max)
}
