//! D001 fixture (broken): hash containers in a sim-state crate. Linted as
//! `hxnet` lib code by `tests/fixtures.rs`; never compiled.
use std::collections::{HashMap, HashSet};

pub struct RoutingState {
    next_hop: HashMap<u32, u32>,
    visited: HashSet<u32>,
}

impl RoutingState {
    pub fn candidates(&self) -> Vec<u32> {
        // Iteration order here is RandomState order — the exact bug class.
        self.next_hop.values().copied().collect()
    }
}
