//! D002 fixture (broken): ambient entropy and wall-clock in library code.
//! Linted as `hxsim` lib code by `tests/fixtures.rs`; never compiled.
use std::time::{Instant, SystemTime};

pub fn jittered_delay(base: u64) -> u64 {
    let mut rng = rand::thread_rng();
    base + rng.random_range(0..10)
}

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
