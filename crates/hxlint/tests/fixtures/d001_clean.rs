//! D001 fixture (clean): ordered containers in a sim-state crate.
use std::collections::{BTreeMap, BTreeSet};

pub struct RoutingState {
    next_hop: BTreeMap<u32, u32>,
    visited: BTreeSet<u32>,
}

impl RoutingState {
    pub fn candidates(&self) -> Vec<u32> {
        // BTreeMap iterates in key order: deterministic across processes.
        self.next_hop.values().copied().collect()
    }
}
