//! Self-test: every rule fires on its broken fixture and stays silent on
//! the clean one. The fixtures live in `tests/fixtures/` (excluded from
//! workspace linting by `classify`) and are linted as source text — they
//! are never compiled.

use hxlint::{lint_source, FileCx, FileKind, Finding};

fn lint(fixture: &str, crate_name: &str, kind: FileKind) -> Vec<Finding> {
    let path = format!("{}/tests/fixtures/{fixture}.rs", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
    let cx = FileCx {
        crate_name: crate_name.to_string(),
        kind,
    };
    lint_source(&format!("tests/fixtures/{fixture}.rs"), &cx, &src)
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn d001_fires_on_hash_containers_and_not_on_btree() {
    let bad = lint("d001_bad", "hxnet", FileKind::Lib);
    assert_eq!(rules(&bad), ["D001", "D001", "D001", "D001"], "{bad:?}");
    // The use-declaration hits count too: both names, then both fields.
    assert!(bad[0].message.contains("RandomState"));
    assert!(lint("d001_clean", "hxnet", FileKind::Lib).is_empty());
}

#[test]
fn d001_only_covers_sim_state_crates() {
    // hxcost holds no simulation state; hash containers are fine there.
    assert!(lint("d001_bad", "hxcost", FileKind::Lib).is_empty());
}

#[test]
fn d002_fires_on_ambient_entropy_and_clock() {
    let bad = lint("d002_bad", "hxsim", FileKind::Lib);
    // thread_rng + Instant::now + SystemTime::now (the `use` line has no
    // `::now` path, so only the call sites trip the clock rules).
    assert_eq!(rules(&bad), ["D002", "D002", "D002"], "{bad:?}");
    assert!(lint("d002_clean", "hxsim", FileKind::Lib).is_empty());
}

#[test]
fn d002_fires_on_wall_clock_driven_samplers() {
    // The hxtelemetry sampler is deterministic only if it is advanced on
    // simulated time; stamping it from Instant/SystemTime is the misuse
    // this pair pins.
    let bad = lint("d002_sampler_bad", "hxtelemetry", FileKind::Lib);
    assert_eq!(rules(&bad), ["D002", "D002"], "{bad:?}");
    assert!(bad[0].message.contains("wall-clock"), "{bad:?}");
    assert!(lint("d002_sampler_clean", "hxtelemetry", FileKind::Lib).is_empty());
}

#[test]
fn d002_does_not_cover_bins() {
    // Bins own the wall-clock (benchmark timing, progress output).
    assert!(lint("d002_bad", "bench", FileKind::Bin).is_empty());
}

#[test]
fn d003_fires_on_parallel_float_reductions() {
    let bad = lint("d003_bad", "bench", FileKind::Bin);
    assert_eq!(rules(&bad), ["D003", "D003"], "{bad:?}");
    assert!(bad[0].message.contains("thread scheduling"));
    assert!(lint("d003_clean", "bench", FileKind::Bin).is_empty());
}

#[test]
fn d003_covers_tests_too() {
    assert_eq!(
        rules(&lint("d003_bad", "hxnet", FileKind::Test)),
        ["D003", "D003"]
    );
}

#[test]
fn p001_fires_on_panicking_library_code() {
    let bad = lint("p001_bad", "hxcost", FileKind::Lib);
    assert_eq!(rules(&bad), ["P001", "P001", "P001"], "{bad:?}");
    assert!(lint("p001_clean", "hxcost", FileKind::Lib).is_empty());
}

#[test]
fn p001_does_not_cover_bins_or_tests() {
    assert!(lint("p001_bad", "hxcost", FileKind::Bin).is_empty());
    assert!(lint("p001_bad", "hxcost", FileKind::Test).is_empty());
}

#[test]
fn findings_render_with_file_line_col_spans() {
    let bad = lint("p001_bad", "hxcost", FileKind::Lib);
    let rendered = bad[0].to_string();
    assert!(
        rendered.starts_with("tests/fixtures/p001_bad.rs:5:"),
        "span should point at the unwrap line: {rendered}"
    );
}
