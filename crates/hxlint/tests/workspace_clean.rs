//! The workspace gate as a `#[test]`: `cargo test -p hxlint` fails if any
//! unwaived finding exists anywhere in the repo, so the determinism and
//! panic-hygiene rules are enforced by the ordinary test run, not only by
//! the dedicated CI job running the `hxlint` binary.

use std::path::Path;

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = hxlint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("hxlint lives inside the workspace");
    let findings = hxlint::lint_workspace(&root).expect("workspace lint runs");
    assert!(
        findings.is_empty(),
        "hxlint found {} unwaived finding(s); fix them or add a \
         `// hxlint: allow(RULE) <reason>` waiver:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
