//! Edge-disjoint Hamiltonian cycles on a 2D torus (App. D).
//!
//! The bidirectional-ring allreduce of §V-A2b uses all four accelerator
//! ports of an HxMesh plane by mapping two bidirectional pipelined rings
//! onto two *edge-disjoint* Hamiltonian cycles of the logical `r x c`
//! torus. Bae, AlBdaiwi & Bose give a construction that works iff
//! `r = k*c` (k >= 1) and `gcd(r, c-1) = 1`.
//!
//! We build the first ("green") cycle in closed form: node `X` of the
//! traversal sits at torus coordinates `(X / c, (X%c + (c-1)*(X/c)) mod c)`
//! — a row snake whose row-to-row transitions are vertical torus edges, and
//! whose closure needs `c | r`. A 2D torus is 4-regular with `2rc` edges
//! and two Hamiltonian cycles use exactly `2rc` edges, so the second
//! ("red") cycle must consist of precisely the edges the green cycle does
//! *not* use; we extract it by walking that complement, and the
//! `gcd(r, c-1) = 1` condition is exactly what makes the complement a
//! single cycle (verified at runtime and by property tests).

use std::collections::BTreeSet;

/// Why disjoint cycles could not be constructed for a given `r x c`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingError {
    /// Construction requires `r = k*c` for integer `k >= 1`.
    NotMultiple,
    /// Construction requires `gcd(r, c-1) = 1`.
    GcdCondition,
    /// Degenerate dimension: tori with a side < 3 have parallel edges
    /// (wrap = direct), which the edge-disjoint construction cannot use.
    TooSmall,
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Check Bae et al.'s feasibility conditions.
pub fn feasible(r: usize, c: usize) -> Result<(), RingError> {
    if r < 3 || c < 3 {
        return Err(RingError::TooSmall);
    }
    if !r.is_multiple_of(c) {
        return Err(RingError::NotMultiple);
    }
    if gcd(r, c - 1) != 1 {
        return Err(RingError::GcdCondition);
    }
    Ok(())
}

/// The closed-form "green" Hamiltonian cycle: position of traversal step
/// `x` on the `r x c` torus.
pub fn green_coord(x: usize, r: usize, c: usize) -> (usize, usize) {
    let (x1, x0) = (x / c, x % c);
    debug_assert!(x1 < r);
    (x1, (x0 + (c - 1) * x1) % c)
}

/// A Hamiltonian cycle as the ordered list of (row, col) coordinates.
pub type Cycle = Vec<(usize, usize)>;

/// Torus edge between two coordinates (unordered, wrap-aware)?
fn is_torus_edge(a: (usize, usize), b: (usize, usize), r: usize, c: usize) -> bool {
    let dr = (a.0 + r - b.0) % r;
    let dc = (a.1 + c - b.1) % c;
    let row_step = (dr == 1 || dr == r - 1) && dc == 0;
    let col_step = (dc == 1 || dc == c - 1) && dr == 0;
    row_step ^ col_step
}

fn canonical_edge(a: (usize, usize), b: (usize, usize)) -> ((usize, usize), (usize, usize)) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Build the two edge-disjoint Hamiltonian cycles for an `r x c` torus.
///
/// Returns `(green, red)`; both have length `r*c` and together they use
/// every torus edge exactly once.
pub fn disjoint_hamiltonian_cycles(r: usize, c: usize) -> Result<(Cycle, Cycle), RingError> {
    feasible(r, c)?;
    let n = r * c;
    let green: Cycle = (0..n).map(|x| green_coord(x, r, c)).collect();

    // Collect green's edge set.
    let mut used: BTreeSet<((usize, usize), (usize, usize))> = BTreeSet::new();
    for i in 0..n {
        let a = green[i];
        let b = green[(i + 1) % n];
        debug_assert!(is_torus_edge(a, b, r, c), "green step {i}: {a:?}->{b:?}");
        used.insert(canonical_edge(a, b));
    }
    debug_assert_eq!(used.len(), n, "green cycle revisits an edge");

    // The red cycle is the complement: every node has exactly two unused
    // incident edges; walk them.
    let neighbors = |p: (usize, usize)| -> [(usize, usize); 4] {
        [
            ((p.0 + 1) % r, p.1),
            ((p.0 + r - 1) % r, p.1),
            (p.0, (p.1 + 1) % c),
            (p.0, (p.1 + c - 1) % c),
        ]
    };
    let mut red: Cycle = Vec::with_capacity(n);
    let start = (0usize, 0usize);
    let mut prev = start;
    // First unused edge out of start.
    let mut cur = *neighbors(start)
        .iter()
        .find(|&&q| !used.contains(&canonical_edge(start, q)))
        .ok_or(RingError::GcdCondition)?;
    red.push(start);
    while cur != start {
        red.push(cur);
        if red.len() > n {
            return Err(RingError::GcdCondition);
        }
        let next = *neighbors(cur)
            .iter()
            .find(|&&q| q != prev && !used.contains(&canonical_edge(cur, q)))
            .ok_or(RingError::GcdCondition)?;
        prev = cur;
        cur = next;
    }
    if red.len() != n {
        // Complement decomposed into several cycles: conditions violated.
        return Err(RingError::GcdCondition);
    }
    Ok((green, red))
}

/// A single Hamiltonian cycle for tori where the disjoint construction is
/// infeasible: a boustrophedon (serpentine) over columns, needing an even
/// number of columns, or over rows for an even number of rows. Falls back
/// to the green closed form when `c | r`.
pub fn single_hamiltonian_cycle(r: usize, c: usize) -> Option<Cycle> {
    if r < 2 || c < 2 {
        return None;
    }
    if r.is_multiple_of(c) {
        return Some((0..r * c).map(|x| green_coord(x, r, c)).collect());
    }
    if c.is_multiple_of(2) {
        // Snake down/up pairs of rows in each column strip, closing along
        // row 0: (0,0) .. (0,c-1) handled by walking columns.
        let mut cy = Vec::with_capacity(r * c);
        // Walk: row 0 reserved as the "return rail".
        for j in 0..c {
            if j % 2 == 0 {
                for i in 1..r {
                    cy.push((i, j));
                }
            } else {
                for i in (1..r).rev() {
                    cy.push((i, j));
                }
            }
        }
        // Return along row 0.
        for j in (0..c).rev() {
            cy.push((0, j));
        }
        // Reorder so it starts at (0,0) and is a proper cycle.
        debug_assert_eq!(cy.len(), r * c);
        Some(cy)
    } else if r.is_multiple_of(2) {
        single_hamiltonian_cycle(c, r).map(|cy| cy.into_iter().map(|(i, j)| (j, i)).collect())
    } else {
        None
    }
}

/// Validate that `cycle` is a Hamiltonian cycle of the `r x c` torus.
pub fn validate_cycle(cycle: &Cycle, r: usize, c: usize) -> Result<(), String> {
    let n = r * c;
    if cycle.len() != n {
        return Err(format!("length {} != {}", cycle.len(), n));
    }
    let distinct: BTreeSet<_> = cycle.iter().collect();
    if distinct.len() != n {
        return Err("revisits a node".into());
    }
    for i in 0..n {
        let (a, b) = (cycle[i], cycle[(i + 1) % n]);
        if !is_torus_edge(a, b, r, c) {
            return Err(format!("step {i}: {a:?} -> {b:?} is not a torus edge"));
        }
    }
    Ok(())
}

/// Validate that two cycles share no edge.
pub fn validate_disjoint(a: &Cycle, b: &Cycle) -> Result<(), String> {
    let n = a.len();
    let ea: BTreeSet<_> = (0..n)
        .map(|i| canonical_edge(a[i], a[(i + 1) % n]))
        .collect();
    for i in 0..b.len() {
        let e = canonical_edge(b[i], b[(i + 1) % b.len()]);
        if ea.contains(&e) {
            return Err(format!("shared edge {e:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four sizes of Fig. 16.
    #[test]
    fn paper_figure16_sizes() {
        for (r, c) in [(4, 4), (8, 4), (9, 3), (16, 8)] {
            let (g, red) =
                disjoint_hamiltonian_cycles(r, c).unwrap_or_else(|e| panic!("{r}x{c}: {e:?}"));
            validate_cycle(&g, r, c).unwrap();
            validate_cycle(&red, r, c).unwrap();
            validate_disjoint(&g, &red).unwrap();
        }
    }

    #[test]
    fn infeasible_sizes_rejected() {
        assert_eq!(
            disjoint_hamiltonian_cycles(4, 3),
            Err(RingError::NotMultiple)
        );
        // r=6, c=3: gcd(6,2)=2.
        assert_eq!(
            disjoint_hamiltonian_cycles(6, 3),
            Err(RingError::GcdCondition)
        );
        assert_eq!(disjoint_hamiltonian_cycles(1, 4), Err(RingError::TooSmall));
    }

    #[test]
    fn cycles_partition_all_edges() {
        let (r, c) = (8, 4);
        let (g, red) = disjoint_hamiltonian_cycles(r, c).unwrap();
        let n = r * c;
        let mut edges: BTreeSet<_> = BTreeSet::new();
        for cy in [&g, &red] {
            for i in 0..n {
                edges.insert(canonical_edge(cy[i], cy[(i + 1) % n]));
            }
        }
        assert_eq!(
            edges.len(),
            2 * n,
            "two Hamiltonian cycles must cover all torus edges"
        );
    }

    #[test]
    fn single_cycle_fallback() {
        for (r, c) in [(4, 6), (3, 4), (5, 4), (7, 10), (6, 4)] {
            let cy =
                single_hamiltonian_cycle(r, c).unwrap_or_else(|| panic!("no cycle for {r}x{c}"));
            validate_cycle(&cy, r, c).unwrap_or_else(|e| panic!("{r}x{c}: {e}"));
        }
    }

    #[test]
    fn green_coord_is_bijective() {
        let (r, c) = (9, 3);
        let set: BTreeSet<_> = (0..r * c).map(|x| green_coord(x, r, c)).collect();
        assert_eq!(set.len(), r * c);
    }
}
