//! Dependency-graph communication schedules.
//!
//! A [`Schedule`] is a per-rank list of operations with intra-rank
//! dependencies (indices into the same rank's list). Sends and receives
//! match across ranks by `(source rank, tag)`, so a generator must give
//! concurrent messages between the same pair distinct tags.

/// What a message carries, in units of the schedule's element space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Elements `[off, off+len)` of the sender's working buffer.
    Segment { off: u32, len: u32 },
    /// Raw bytes with no data semantics (pipeline activations etc.).
    Opaque { bytes: u64 },
}

impl Payload {
    pub fn bytes(&self, elem_bytes: u64) -> u64 {
        match *self {
            Payload::Segment { len, .. } => len as u64 * elem_bytes,
            Payload::Opaque { bytes } => bytes,
        }
    }
}

/// What a receiver does with an incoming segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvAction {
    /// Element-wise add into the local buffer at the segment offset.
    Reduce,
    /// Overwrite the local buffer at the segment offset.
    Copy,
    /// Ignore the data (opaque traffic).
    Discard,
}

#[derive(Clone, Copy, Debug)]
pub enum OpKind {
    Send {
        to: u32,
        tag: u64,
        payload: Payload,
    },
    Recv {
        from: u32,
        tag: u64,
        action: RecvAction,
    },
    /// Local computation lasting `ps` picoseconds (no-op logically).
    Compute {
        ps: u64,
    },
}

/// One operation with its intra-rank dependencies.
#[derive(Clone, Debug)]
pub struct Op {
    pub kind: OpKind,
    /// Indices of ops (same rank) that must complete before this one runs.
    pub deps: Vec<u32>,
}

/// A complete multi-rank communication schedule.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Number of participating ranks.
    pub nranks: usize,
    /// Logical vector length per rank (elements).
    pub data_len: usize,
    /// Bytes per element (4 for FP32).
    pub elem_bytes: u64,
    /// `ops[rank]` is that rank's operation list.
    pub ops: Vec<Vec<Op>>,
}

impl Schedule {
    pub fn new(nranks: usize, data_len: usize) -> Self {
        Self {
            nranks,
            data_len,
            elem_bytes: crate::ELEM_BYTES,
            ops: vec![Vec::new(); nranks],
        }
    }

    /// Append an op for `rank`, returning its index for use in `deps`.
    pub fn push(&mut self, rank: usize, kind: OpKind, deps: Vec<u32>) -> u32 {
        let idx = self.ops[rank].len() as u32;
        self.ops[rank].push(Op { kind, deps });
        idx
    }

    pub fn send(
        &mut self,
        rank: usize,
        to: u32,
        tag: u64,
        payload: Payload,
        deps: Vec<u32>,
    ) -> u32 {
        self.push(rank, OpKind::Send { to, tag, payload }, deps)
    }

    pub fn recv(
        &mut self,
        rank: usize,
        from: u32,
        tag: u64,
        action: RecvAction,
        deps: Vec<u32>,
    ) -> u32 {
        self.push(rank, OpKind::Recv { from, tag, action }, deps)
    }

    pub fn compute(&mut self, rank: usize, ps: u64, deps: Vec<u32>) -> u32 {
        self.push(rank, OpKind::Compute { ps }, deps)
    }

    /// Total number of operations across all ranks.
    pub fn num_ops(&self) -> usize {
        self.ops.iter().map(|v| v.len()).sum()
    }

    /// Total bytes moved by all sends.
    pub fn total_send_bytes(&self) -> u64 {
        self.ops
            .iter()
            .flatten()
            .map(|op| match op.kind {
                OpKind::Send { payload, .. } => payload.bytes(self.elem_bytes),
                _ => 0,
            })
            .sum()
    }

    /// Merge another schedule over the same ranks/data (used to run two
    /// algorithm instances concurrently, e.g. the two disjoint rings).
    /// Dependencies of `other` are re-based; tags are offset by `tag_shift`
    /// to keep matching disjoint.
    pub fn merge(&mut self, other: &Schedule, tag_shift: u64) {
        assert_eq!(self.nranks, other.nranks);
        assert_eq!(self.elem_bytes, other.elem_bytes);
        for r in 0..self.nranks {
            let base = self.ops[r].len() as u32;
            for op in &other.ops[r] {
                let kind = match op.kind {
                    OpKind::Send { to, tag, payload } => OpKind::Send {
                        to,
                        tag: tag + tag_shift,
                        payload,
                    },
                    OpKind::Recv { from, tag, action } => OpKind::Recv {
                        from,
                        tag: tag + tag_shift,
                        action,
                    },
                    k => k,
                };
                self.ops[r].push(Op {
                    kind,
                    deps: op.deps.iter().map(|&d| d + base).collect(),
                });
            }
        }
    }

    /// Validate structural sanity: dependency indices in range and acyclic
    /// (deps must point backwards), segments within the data vector.
    pub fn validate(&self) -> Result<(), String> {
        for (r, ops) in self.ops.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                for &d in &op.deps {
                    if d as usize >= i {
                        return Err(format!("rank {r} op {i}: forward/self dep {d}"));
                    }
                }
                if let OpKind::Send {
                    payload: Payload::Segment { off, len },
                    to,
                    ..
                } = op.kind
                {
                    if (off + len) as usize > self.data_len {
                        return Err(format!("rank {r} op {i}: segment out of range"));
                    }
                    if to as usize >= self.nranks {
                        return Err(format!("rank {r} op {i}: bad destination {to}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_validate() {
        let mut s = Schedule::new(2, 8);
        let r0 = s.recv(0, 1, 0, RecvAction::Reduce, vec![]);
        s.send(0, 1, 0, Payload::Segment { off: 0, len: 8 }, vec![r0]);
        s.send(1, 0, 0, Payload::Segment { off: 0, len: 8 }, vec![]);
        s.recv(1, 0, 0, RecvAction::Reduce, vec![]);
        assert!(s.validate().is_ok());
        assert_eq!(s.num_ops(), 4);
        assert_eq!(s.total_send_bytes(), 2 * 8 * 4);
    }

    #[test]
    fn forward_dep_rejected() {
        let mut s = Schedule::new(1, 4);
        s.push(0, OpKind::Compute { ps: 1 }, vec![1]);
        s.push(0, OpKind::Compute { ps: 1 }, vec![]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn segment_bounds_checked() {
        let mut s = Schedule::new(2, 4);
        s.send(0, 1, 0, Payload::Segment { off: 2, len: 4 }, vec![]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn merge_rebases_deps_and_tags() {
        let mut a = Schedule::new(2, 4);
        let r = a.recv(0, 1, 7, RecvAction::Copy, vec![]);
        a.send(0, 1, 7, Payload::Segment { off: 0, len: 4 }, vec![r]);
        let mut b = Schedule::new(2, 4);
        let r = b.recv(0, 1, 7, RecvAction::Copy, vec![]);
        b.send(0, 1, 7, Payload::Segment { off: 0, len: 4 }, vec![r]);
        a.merge(&b, 1000);
        assert_eq!(a.ops[0].len(), 4);
        match a.ops[0][3].kind {
            OpKind::Send { tag, .. } => assert_eq!(tag, 1007),
            _ => panic!(),
        }
        assert_eq!(a.ops[0][3].deps, vec![2]);
        assert!(a.validate().is_ok());
    }
}
