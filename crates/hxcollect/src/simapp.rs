//! Replay a [`Schedule`] inside the packet simulator.
//!
//! Sends and receives are matched *statically* when the app is built (by
//! `(src, dst, tag)` in program order), so the simulator tag can directly
//! encode the receiver's op index — no runtime matching, and schedules with
//! unmatched operations are rejected up front.

use crate::schedule::{OpKind, Schedule};
use hxsim::{Application, Ctx, MsgInfo};
use std::collections::BTreeMap;

/// A schedule bound to simulator ranks, executable by [`hxsim::Engine`].
pub struct ScheduleApp<'s> {
    sched: &'s Schedule,
    /// Schedule rank -> simulator rank (job placement).
    mapping: Vec<u32>,
    /// Simulator rank -> schedule rank.
    inverse: BTreeMap<u32, u32>,
    /// Remaining dependency count per (rank, op).
    indeg: Vec<Vec<u32>>,
    /// Reverse dependency lists per (rank, op).
    dependents: Vec<Vec<Vec<u32>>>,
    /// For each send op: the matched receiver (schedule rank, op index).
    send_match: Vec<BTreeMap<u32, (u32, u32)>>,
    remaining: usize,
    /// Completion time of the final op (ps).
    pub finish_ps: u64,
}

impl<'s> ScheduleApp<'s> {
    /// Bind `sched` with the identity placement (schedule rank r = sim rank r).
    pub fn new(sched: &'s Schedule) -> Self {
        Self::with_mapping(sched, (0..sched.nranks as u32).collect())
    }

    /// Bind `sched` with an explicit placement: schedule rank `r` runs on
    /// simulator rank `mapping[r]`.
    pub fn with_mapping(sched: &'s Schedule, mapping: Vec<u32>) -> Self {
        assert_eq!(mapping.len(), sched.nranks);
        // hxlint: allow(P001) constructor contract: binding an invalid schedule is a caller bug, fail loudly
        sched.validate().expect("invalid schedule");
        let inverse: BTreeMap<u32, u32> = mapping
            .iter()
            .enumerate()
            .map(|(s, &g)| (g, s as u32))
            .collect();
        assert_eq!(inverse.len(), mapping.len(), "mapping must be injective");

        let mut indeg: Vec<Vec<u32>> = Vec::with_capacity(sched.nranks);
        let mut dependents: Vec<Vec<Vec<u32>>> = Vec::with_capacity(sched.nranks);
        for ops in &sched.ops {
            let mut ind = vec![0u32; ops.len()];
            let mut dep: Vec<Vec<u32>> = vec![Vec::new(); ops.len()];
            for (i, op) in ops.iter().enumerate() {
                ind[i] = op.deps.len() as u32;
                for &d in &op.deps {
                    dep[d as usize].push(i as u32);
                }
            }
            indeg.push(ind);
            dependents.push(dep);
        }

        // Static send/recv matching by (src, dst, tag) in program order.
        let mut pending_recvs: BTreeMap<(u32, u32, u64), Vec<(u32, u32)>> = BTreeMap::new();
        for (r, ops) in sched.ops.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                if let OpKind::Recv { from, tag, .. } = op.kind {
                    pending_recvs
                        .entry((from, r as u32, tag))
                        .or_default()
                        .push((r as u32, i as u32));
                }
            }
        }
        let mut send_match: Vec<BTreeMap<u32, (u32, u32)>> = vec![BTreeMap::new(); sched.nranks];
        for (r, ops) in sched.ops.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                if let OpKind::Send { to, tag, .. } = op.kind {
                    let q = pending_recvs
                        .get_mut(&(r as u32, to, tag))
                        // hxlint: allow(P001) static matching rejects malformed schedules loudly by design
                        .unwrap_or_else(|| panic!("send rank {r} op {i}: no matching recv"));
                    assert!(!q.is_empty(), "send rank {r} op {i}: recv count mismatch");
                    let m = q.remove(0);
                    send_match[r].insert(i as u32, m);
                }
            }
        }
        for (k, q) in &pending_recvs {
            assert!(q.is_empty(), "unmatched recv {k:?}");
        }

        let remaining = sched.num_ops();
        Self {
            sched,
            mapping,
            inverse,
            indeg,
            dependents,
            send_match,
            remaining,
            finish_ps: 0,
        }
    }

    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Schedule rank running on a given simulator rank, if any.
    pub fn schedule_rank_of(&self, sim_rank: u32) -> Option<u32> {
        self.inverse.get(&sim_rank).copied()
    }

    /// Encode (schedule rank, op idx) into a simulator tag.
    fn enc(rank: u32, op: u32) -> u64 {
        ((rank as u64) << 32) | op as u64
    }

    fn dec(tag: u64) -> (u32, u32) {
        ((tag >> 32) as u32, tag as u32)
    }

    /// Issue an op whose dependencies are all satisfied.
    fn issue(&mut self, ctx: &mut Ctx, rank: u32, op_idx: u32) {
        let op = &self.sched.ops[rank as usize][op_idx as usize];
        match op.kind {
            OpKind::Send { to, payload, .. } => {
                let (mrank, mop) = self.send_match[rank as usize][&op_idx];
                debug_assert_eq!(mrank, to);
                let _ = mop;
                let bytes = payload.bytes(self.sched.elem_bytes).max(1);
                // The tag carries the sender's (schedule rank, op index);
                // both completion callbacks decode it and the receiver op is
                // found through the static match table.
                ctx.send(
                    self.mapping[rank as usize],
                    self.mapping[to as usize],
                    bytes,
                    Self::enc(rank, op_idx),
                );
            }
            OpKind::Recv { .. } => {
                // Passive: completes when the matched message arrives.
            }
            OpKind::Compute { ps } => {
                ctx.compute(self.mapping[rank as usize], ps, Self::enc(rank, op_idx));
            }
        }
    }

    /// Mark op complete and cascade to dependents.
    fn complete(&mut self, ctx: &mut Ctx, rank: u32, op_idx: u32) {
        self.remaining -= 1;
        self.finish_ps = self.finish_ps.max(ctx.now());
        let deps = std::mem::take(&mut self.dependents[rank as usize][op_idx as usize]);
        for d in &deps {
            let slot = &mut self.indeg[rank as usize][*d as usize];
            *slot -= 1;
            if *slot == 0 {
                self.issue(ctx, rank, *d);
            }
        }
        self.dependents[rank as usize][op_idx as usize] = deps;
    }
}

impl Application for ScheduleApp<'_> {
    fn start(&mut self, ctx: &mut Ctx) {
        for r in 0..self.sched.nranks as u32 {
            for i in 0..self.sched.ops[r as usize].len() as u32 {
                if self.indeg[r as usize][i as usize] == 0 {
                    self.issue(ctx, r, i);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx, info: MsgInfo) {
        // The tag encodes the sender's (schedule rank, op); resolve the
        // receiver op through the static match.
        let (srank, sop) = Self::dec(info.tag);
        let (rrank, rop) = self.send_match[srank as usize][&sop];
        debug_assert_eq!(self.mapping[rrank as usize], info.dst_rank);
        self.complete(ctx, rrank, rop);
    }

    fn on_send_complete(&mut self, ctx: &mut Ctx, info: MsgInfo) {
        let (srank, sop) = Self::dec(info.tag);
        debug_assert_eq!(self.mapping[srank as usize], info.src_rank);
        self.complete(ctx, srank, sop);
    }

    fn on_compute_done(&mut self, ctx: &mut Ctx, rank: u32, tag: u64) {
        let (srank, sop) = Self::dec(tag);
        debug_assert_eq!(self.mapping[srank as usize], rank);
        self.complete(ctx, srank, sop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::ring_allreduce;
    use hxnet::hammingmesh::HxMeshParams;
    use hxsim::{simulate, EngineKind, SimConfig};

    /// A schedule replay must complete on both simulation backends — the
    /// ScheduleApp surface is engine-agnostic by construction.
    #[test]
    fn schedule_replays_on_both_engines() {
        let net = HxMeshParams::square(2, 2).build();
        let sched = ring_allreduce(net.num_ranks(), 64 * net.num_ranks());
        for kind in EngineKind::all() {
            let mut app = ScheduleApp::new(&sched);
            let stats = simulate(&net, SimConfig::default(), kind, &mut app);
            assert!(stats.clean(), "{kind}: {stats:?}");
            assert!(app.is_done(), "{kind}: schedule incomplete");
            assert!(app.finish_ps > 0);
        }
    }

    /// Schedule replay under fault injection: the routes the replayed
    /// collective rides are re-selected around a failed line cable by the
    /// failure-aware routers, on both backends, and every op completes.
    #[test]
    fn schedule_replays_around_failed_cable_on_both_engines() {
        use hxnet::PortId;
        let net = HxMeshParams::square(2, 2).build();
        let sched = ring_allreduce(net.num_ranks(), 64 * net.num_ranks());
        for kind in EngineKind::all() {
            let mut net = HxMeshParams::square(2, 2).build();
            // Endpoint 0's East port is a row-line cable on a 2x2 board
            // corner; killing it forces the ring's wrap traffic West.
            let e0 = net.endpoints[0];
            let cable = (0..net.topo.num_ports(e0))
                .map(|p| PortId(p as u16))
                .find(|&p| net.topo.kind(net.topo.peer(e0, p).node).is_switch())
                .expect("endpoint line cable");
            net.topo.fail_link(e0, cable);
            let mut app = ScheduleApp::new(&sched);
            let stats = simulate(&net, SimConfig::default(), kind, &mut app);
            assert!(stats.clean(), "{kind}: {stats:?}");
            assert!(app.is_done(), "{kind}: schedule incomplete under faults");
        }
    }
}
