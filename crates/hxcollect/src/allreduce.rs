//! Collective schedule generators (§V-A2).
//!
//! All generators are pure functions from parameters to a [`Schedule`]; the
//! same schedule is checked for numerical correctness by the logical
//! executor and timed by the packet simulator. Rings operate over an
//! arbitrary rank *order*, so the same code drives plain rings, the two
//! edge-disjoint Hamiltonian cycles, and the row/column phases of the 2D
//! torus algorithm.

use crate::rings;
use crate::schedule::{Payload, RecvAction, Schedule};

/// Split `[off, off+len)` into `p` nearly equal chunks.
fn chunks(off: u32, len: u32, p: usize) -> Vec<(u32, u32)> {
    let base = len / p as u32;
    let rem = len % p as u32;
    let mut out = Vec::with_capacity(p);
    let mut o = off;
    for j in 0..p as u32 {
        let l = base + u32::from(j < rem);
        out.push((o, l));
        o += l;
    }
    out
}

/// Pipelined ring reduce-scatter over `order` on `[off, off+len)`.
///
/// After completion, the member at ring position `i` owns the fully
/// reduced chunk `(i+1) mod p` (chunks split the range near-evenly).
/// `entry[i]` are dependencies gating position `i`'s first send.
/// Returns per-position indices of the op that completes the owned chunk.
pub fn ring_reduce_scatter_on(
    s: &mut Schedule,
    order: &[u32],
    off: u32,
    len: u32,
    tag_base: u64,
    entry: &[Vec<u32>],
) -> Vec<u32> {
    let p = order.len();
    assert!(p >= 2);
    let ch = chunks(off, len, p);
    let mut last_recv: Vec<Option<u32>> = vec![None; p];
    for k in 0..p - 1 {
        for i in 0..p {
            let rank = order[i] as usize;
            let next = order[(i + 1) % p];
            let prev = order[(i + p - 1) % p];
            let send_chunk = ch[(i + p - k) % p];
            let mut deps: Vec<u32> = entry[i].clone();
            if let Some(lr) = last_recv[i] {
                deps = vec![lr];
            }
            s.send(
                rank,
                next,
                tag_base + k as u64,
                Payload::Segment {
                    off: send_chunk.0,
                    len: send_chunk.1,
                },
                deps,
            );
            let r = s.recv(
                rank,
                prev,
                tag_base + k as u64,
                RecvAction::Reduce,
                entry[i].clone(),
            );
            last_recv[i] = Some(r);
        }
    }
    // hxlint: allow(P001) every rank recvs at least once when p >= 2 (asserted by build())
    last_recv.into_iter().map(|o| o.expect("p >= 2")).collect()
}

/// Pipelined ring allgather over `order` on `[off, off+len)`, assuming the
/// position-`i` member owns chunk `(i+1) mod p` (the reduce-scatter
/// post-condition). `entry[i]` gates position `i`'s first send.
pub fn ring_allgather_on(
    s: &mut Schedule,
    order: &[u32],
    off: u32,
    len: u32,
    tag_base: u64,
    entry: &[Vec<u32>],
) -> Vec<u32> {
    let p = order.len();
    assert!(p >= 2);
    let ch = chunks(off, len, p);
    let mut last: Vec<u32> = vec![0; p];
    let mut last_recv: Vec<Option<u32>> = vec![None; p];
    for k in 0..p - 1 {
        for i in 0..p {
            let rank = order[i] as usize;
            let next = order[(i + 1) % p];
            let prev = order[(i + p - 1) % p];
            let send_chunk = ch[(i + 1 + p - k) % p];
            let deps = if k == 0 {
                entry[i].clone()
            } else {
                // hxlint: allow(P001) k > 0: round k-1 recorded a recv for every rank
                vec![last_recv[i].unwrap()]
            };
            s.send(
                rank,
                next,
                tag_base + k as u64,
                Payload::Segment {
                    off: send_chunk.0,
                    len: send_chunk.1,
                },
                deps,
            );
            let r = s.recv(
                rank,
                prev,
                tag_base + k as u64,
                RecvAction::Copy,
                Vec::new(),
            );
            last_recv[i] = Some(r);
            last[i] = r;
        }
    }
    last
}

/// Full pipelined ring allreduce over `order` on `[off, off+len)`:
/// reduce-scatter followed by allgather (§V-A2b, Tp ≈ 2pα + 2Sβ).
/// Returns the per-position final op indices.
pub fn ring_allreduce_on(
    s: &mut Schedule,
    order: &[u32],
    off: u32,
    len: u32,
    tag_base: u64,
    entry: &[Vec<u32>],
) -> Vec<u32> {
    let rs = ring_reduce_scatter_on(s, order, off, len, tag_base, entry);
    let gate: Vec<Vec<u32>> = rs.into_iter().map(|d| vec![d]).collect();
    ring_allgather_on(s, order, off, len, tag_base + 1_000_000, &gate)
}

/// Unidirectional pipelined ring allreduce over `p` ranks and `n` elements.
pub fn ring_allreduce(p: usize, n: usize) -> Schedule {
    let mut s = Schedule::new(p, n);
    let order: Vec<u32> = (0..p as u32).collect();
    let entry = vec![Vec::new(); p];
    ring_allreduce_on(&mut s, &order, 0, n as u32, 0, &entry);
    s
}

/// Bidirectional pipelined ring allreduce (§V-A2b, Tbp ≈ 2pα + Sβ): half
/// the data travels each direction, using two NICs concurrently.
pub fn bidirectional_ring_allreduce(p: usize, n: usize) -> Schedule {
    let mut s = Schedule::new(p, n);
    let fwd: Vec<u32> = (0..p as u32).collect();
    let bwd: Vec<u32> = (0..p as u32).rev().collect();
    let entry = vec![Vec::new(); p];
    let half = (n / 2) as u32;
    ring_allreduce_on(&mut s, &fwd, 0, half, 0, &entry);
    ring_allreduce_on(&mut s, &bwd, half, n as u32 - half, 10_000_000, &entry);
    s
}

/// Allreduce over a logical `r x c` torus using **two bidirectional rings
/// on edge-disjoint Hamiltonian cycles** (§V-A2b "rings", App. D): each of
/// the four quarters of the data travels one direction of one cycle,
/// Trings ≈ 2pα + (S/4)·2β /2 = 2pα + Sβ/2 with four ports.
///
/// Ranks are row-major over the torus. Returns the schedule and the number
/// of distinct cycles used (2 when the Bae et al. conditions hold for
/// `r x c` or its transpose; 1 with a single-cycle fallback).
pub fn disjoint_rings_allreduce(r: usize, c: usize, n: usize) -> (Schedule, usize) {
    let p = r * c;
    let mut s = Schedule::new(p, n);
    let entry = vec![Vec::new(); p];
    let rank_of = |co: (usize, usize)| (co.0 * c + co.1) as u32;

    let cycles: (Vec<u32>, Option<Vec<u32>>) = match rings::disjoint_hamiltonian_cycles(r, c) {
        Ok((g, red)) => (
            g.into_iter().map(rank_of).collect(),
            Some(red.into_iter().map(rank_of).collect()),
        ),
        Err(_) => match rings::disjoint_hamiltonian_cycles(c, r) {
            // Transposed construction: swap coordinates back.
            Ok((g, red)) => (
                g.into_iter().map(|(i, j)| rank_of((j, i))).collect(),
                Some(red.into_iter().map(|(i, j)| rank_of((j, i))).collect()),
            ),
            Err(_) => {
                let cy = rings::single_hamiltonian_cycle(r, c)
                    .map(|cy| cy.into_iter().map(rank_of).collect::<Vec<_>>())
                    .unwrap_or_else(|| (0..p as u32).collect());
                (cy, None)
            }
        },
    };

    match cycles {
        (g, Some(red)) => {
            // Four quarters: green fwd/bwd, red fwd/bwd.
            let q = (n / 4) as u32;
            let segs = [(0, q), (q, q), (2 * q, q), (3 * q, n as u32 - 3 * q)];
            let gr: Vec<u32> = g.iter().rev().copied().collect();
            let rr: Vec<u32> = red.iter().rev().copied().collect();
            ring_allreduce_on(&mut s, &g, segs[0].0, segs[0].1, 0, &entry);
            ring_allreduce_on(&mut s, &gr, segs[1].0, segs[1].1, 10_000_000, &entry);
            ring_allreduce_on(&mut s, &red, segs[2].0, segs[2].1, 20_000_000, &entry);
            ring_allreduce_on(&mut s, &rr, segs[3].0, segs[3].1, 30_000_000, &entry);
            (s, 2)
        }
        (g, None) => {
            let half = (n / 2) as u32;
            let gr: Vec<u32> = g.iter().rev().copied().collect();
            ring_allreduce_on(&mut s, &g, 0, half, 0, &entry);
            ring_allreduce_on(&mut s, &gr, half, n as u32 - half, 10_000_000, &entry);
            (s, 1)
        }
    }
}

/// Two-dimensional torus allreduce (§V-A2c): row reduce-scatter, column
/// allreduce on the owned chunk, row allgather. With `doubled`, two
/// instances (the second with transposed roles) each handle half the data,
/// driving all four ports: T ≈ 4√p α + Sβ(1+2√p)/(4√p).
pub fn torus2d_allreduce(rows: usize, cols: usize, n: usize, doubled: bool) -> Schedule {
    let p = rows * cols;
    let mut s = Schedule::new(p, n);
    if doubled {
        let half = n / 2;
        let a = torus2d_instance(rows, cols, 0, half as u32, false);
        let b = torus2d_instance(rows, cols, half as u32, (n - half) as u32, true);
        s.merge(&a, 0);
        s.merge(&b, 500_000_000);
        s
    } else {
        let inst = torus2d_instance(rows, cols, 0, n as u32, false);
        s.merge(&inst, 0);
        s
    }
}

/// One torus-allreduce instance on `[off, off+len)`; `transposed` swaps the
/// roles of rows and columns (for the doubled variant).
fn torus2d_instance(rows: usize, cols: usize, off: u32, len: u32, transposed: bool) -> Schedule {
    let p = rows * cols;
    // Effective grid.
    let (er, ec) = if transposed {
        (cols, rows)
    } else {
        (rows, cols)
    };
    let rank_of = |i: usize, j: usize| -> u32 {
        if transposed {
            (j * cols + i) as u32
        } else {
            (i * cols + j) as u32
        }
    };
    let mut s = Schedule::new(p, (off + len) as usize);
    s.data_len = (off + len) as usize; // merged later into the real length
    let no_deps: Vec<Vec<u32>> = vec![Vec::new(); ec.max(er)];

    if ec == 1 {
        // Degenerate: single column; just ring-allreduce each column.
        for j in 0..ec {
            let order: Vec<u32> = (0..er).map(|i| rank_of(i, j)).collect();
            ring_allreduce_on(&mut s, &order, off, len, 0, &no_deps[..er]);
        }
        return s;
    }

    let ch = chunks(off, len, ec);
    // Phase 1: per-row reduce-scatter.
    let mut rs_exit: Vec<Vec<u32>> = vec![Vec::new(); p]; // per rank: gating deps
    for i in 0..er {
        let order: Vec<u32> = (0..ec).map(|j| rank_of(i, j)).collect();
        let entry: Vec<Vec<u32>> = vec![Vec::new(); ec];
        let exits = ring_reduce_scatter_on(&mut s, &order, off, len, (i as u64) << 16, &entry);
        for (pos, e) in exits.into_iter().enumerate() {
            rs_exit[order[pos] as usize] = vec![e];
        }
    }
    // Phase 2: per-column allreduce on the chunk owned by that column's
    // position: position j in a row owns chunk (j+1) mod ec.
    let mut col_exit: Vec<Vec<u32>> = vec![Vec::new(); p];
    for j in 0..ec {
        let owned = ch[(j + 1) % ec];
        let order: Vec<u32> = (0..er).map(|i| rank_of(i, j)).collect();
        if er >= 2 && owned.1 > 0 {
            let entry: Vec<Vec<u32>> = order
                .iter()
                .map(|&rk| rs_exit[rk as usize].clone())
                .collect();
            let exits = ring_allreduce_on(
                &mut s,
                &order,
                owned.0,
                owned.1,
                (1 << 32) | ((j as u64) << 16),
                &entry,
            );
            for (pos, e) in exits.into_iter().enumerate() {
                col_exit[order[pos] as usize] = vec![e];
            }
        } else {
            for &rk in &order {
                col_exit[rk as usize] = rs_exit[rk as usize].clone();
            }
        }
    }
    // Phase 3: per-row allgather.
    for i in 0..er {
        let order: Vec<u32> = (0..ec).map(|j| rank_of(i, j)).collect();
        let entry: Vec<Vec<u32>> = order
            .iter()
            .map(|&rk| col_exit[rk as usize].clone())
            .collect();
        ring_allgather_on(
            &mut s,
            &order,
            off,
            len,
            (2 << 32) | ((i as u64) << 16),
            &entry,
        );
    }
    s
}

/// Binomial-tree allreduce (reduce to rank 0, then broadcast) — the
/// small-message algorithm of §V-A2a (T ≈ log2(p)(α + Sβ)). Requires no
/// power-of-two: uses the standard fold into the lower half.
pub fn binomial_tree_allreduce(p: usize, n: usize) -> Schedule {
    let mut s = Schedule::new(p, n);
    let seg = Payload::Segment {
        off: 0,
        len: n as u32,
    };
    // Reduce phase.
    let mut gate: Vec<Option<u32>> = vec![None; p];
    let mut dist = 1usize;
    let mut round = 0u64;
    while dist < p {
        for r in (0..p).step_by(2 * dist) {
            let peer = r + dist;
            if peer >= p {
                continue;
            }
            let deps_s: Vec<u32> = gate[peer].iter().copied().collect();
            s.send(peer, r as u32, round, seg, deps_s);
            let deps_r: Vec<u32> = gate[r].iter().copied().collect();
            let rv = s.recv(r, peer as u32, round, RecvAction::Reduce, deps_r);
            gate[r] = Some(rv);
        }
        dist *= 2;
        round += 1;
    }
    // Broadcast phase (mirror).
    let mut levels = Vec::new();
    let mut d = 1usize;
    while d < p {
        levels.push(d);
        d *= 2;
    }
    for &dist in levels.iter().rev() {
        for r in (0..p).step_by(2 * dist) {
            let peer = r + dist;
            if peer >= p {
                continue;
            }
            let deps_s: Vec<u32> = gate[r].iter().copied().collect();
            s.send(r, peer as u32, 1000 + round, seg, deps_s);
            let rv = s.recv(peer, r as u32, 1000 + round, RecvAction::Copy, Vec::new());
            gate[peer] = Some(rv);
        }
        round += 1;
    }
    s
}

/// Pipelined ring broadcast from `root` over `p` ranks: the root streams
/// `p` segments around the ring; everyone forwards (§V-A2d mentions
/// broadcast follows the allgather epoch's tradeoffs).
pub fn ring_broadcast(p: usize, n: usize, root: usize) -> Schedule {
    let mut s = Schedule::new(p, n);
    assert!(root < p);
    let nseg = p.min(n).max(1);
    let ch = chunks(0, n as u32, nseg);
    // Ring order starting at root.
    let order: Vec<u32> = (0..p).map(|i| ((root + i) % p) as u32).collect();
    let mut last_recv: Vec<Option<u32>> = vec![None; p];
    for (seg_idx, &(o, l)) in ch.iter().enumerate() {
        if l == 0 {
            continue;
        }
        let tag = seg_idx as u64;
        for pos in 0..p - 1 {
            let rank = order[pos] as usize;
            let next = order[pos + 1];
            let deps = if pos == 0 {
                Vec::new()
            } else {
                // hxlint: allow(P001) pos > 0: the previous ring position recorded a recv
                vec![last_recv[rank].unwrap()]
            };
            s.send(rank, next, tag, Payload::Segment { off: o, len: l }, deps);
            let rv = s.recv(
                next as usize,
                rank as u32,
                tag,
                RecvAction::Copy,
                Vec::new(),
            );
            last_recv[next as usize] = Some(rv);
        }
    }
    s
}

/// Plain reduce-scatter over `p` ranks (exposed for CosmoFlow's layers).
pub fn ring_reduce_scatter(p: usize, n: usize) -> Schedule {
    let mut s = Schedule::new(p, n);
    let order: Vec<u32> = (0..p as u32).collect();
    let entry = vec![Vec::new(); p];
    ring_reduce_scatter_on(&mut s, &order, 0, n as u32, 0, &entry);
    s
}

/// Plain allgather over `p` ranks, assuming rank `i` owns chunk `(i+1)%p`.
pub fn ring_allgather(p: usize, n: usize) -> Schedule {
    let mut s = Schedule::new(p, n);
    let order: Vec<u32> = (0..p as u32).collect();
    let entry = vec![Vec::new(); p];
    ring_allgather_on(&mut s, &order, 0, n as u32, 0, &entry);
    s
}

/// Per-job schedule instantiation for the cluster simulator: the gradient
/// allreduce one training iteration of a placed job runs, over the job's
/// `rows x cols` accelerator grid (ranks row-major over the grid, exactly
/// the layout `hxcluster` maps onto the virtual sub-HxMesh).
///
/// Algorithm selection follows the shape: grids with both dimensions ≥ 2
/// use the four-port disjoint-rings algorithm (with its built-in
/// single-cycle and linear-order fallbacks for infeasible dimensions);
/// strips (`1 x n` / `n x 1`) use the bidirectional ring, which is what
/// their two usable line directions support; a single rank degenerates to
/// an empty schedule (nothing to reduce). `elems` is raised to `4 * p`
/// when smaller, so every pipelined chunk is non-empty.
pub fn job_allreduce(rows: usize, cols: usize, elems: usize) -> Schedule {
    let p = rows * cols;
    if p <= 1 {
        return Schedule::new(p.max(1), elems.max(1));
    }
    let elems = elems.max(4 * p);
    if rows == 1 || cols == 1 {
        bidirectional_ring_allreduce(p, elems)
    } else {
        disjoint_rings_allreduce(rows, cols, elems).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::check_allreduce;

    #[test]
    fn ring_allreduce_is_correct() {
        for p in [2, 3, 4, 7, 8] {
            for n in [4, 16, 37] {
                if n < p {
                    continue;
                }
                let s = ring_allreduce(p, n);
                check_allreduce(&s).unwrap_or_else(|e| panic!("p={p} n={n}: {e}"));
            }
        }
    }

    #[test]
    fn bidirectional_ring_is_correct() {
        for p in [2, 4, 5, 8] {
            let s = bidirectional_ring_allreduce(p, 64);
            check_allreduce(&s).unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn disjoint_rings_allreduce_is_correct() {
        // Feasible sizes use 2 cycles.
        let (s, ncyc) = disjoint_rings_allreduce(4, 4, 64);
        assert_eq!(ncyc, 2);
        check_allreduce(&s).unwrap();
        let (s, ncyc) = disjoint_rings_allreduce(8, 4, 128);
        assert_eq!(ncyc, 2);
        check_allreduce(&s).unwrap();
        // Infeasible size falls back to one cycle but stays correct.
        let (s, ncyc) = disjoint_rings_allreduce(4, 6, 96);
        assert_eq!(ncyc, 1);
        check_allreduce(&s).unwrap();
    }

    #[test]
    fn torus2d_allreduce_is_correct() {
        for (r, c) in [(2, 2), (3, 3), (4, 4), (2, 4), (4, 2), (3, 5)] {
            let n = 4 * r * c;
            let s = torus2d_allreduce(r, c, n, false);
            check_allreduce(&s).unwrap_or_else(|e| panic!("{r}x{c}: {e}"));
        }
    }

    #[test]
    fn torus2d_doubled_is_correct() {
        for (r, c) in [(2, 2), (4, 4), (3, 4)] {
            let n = 8 * r * c;
            let s = torus2d_allreduce(r, c, n, true);
            check_allreduce(&s).unwrap_or_else(|e| panic!("{r}x{c} doubled: {e}"));
        }
    }

    #[test]
    fn binomial_tree_is_correct() {
        for p in [2, 3, 4, 5, 8, 13] {
            let s = binomial_tree_allreduce(p, 16);
            check_allreduce(&s).unwrap_or_else(|e| panic!("p={p}: {e}"));
        }
    }

    #[test]
    fn broadcast_distributes_roots_data() {
        use crate::logical::execute;
        let p = 5;
        let n = 10;
        let s = ring_broadcast(p, n, 2);
        let mut inputs = vec![vec![0.0f32; n]; p];
        inputs[2] = (0..n).map(|i| i as f32 + 1.0).collect();
        let res = execute(&s, &inputs).unwrap();
        for r in 0..p {
            assert_eq!(res.data[r], inputs[2], "rank {r}");
        }
    }

    #[test]
    fn job_allreduce_is_correct_for_every_job_shape() {
        // Every shape the allocator can hand the cluster simulator must
        // produce a numerically correct allreduce: square grids, skewed
        // grids, infeasible-ring grids (odd x odd), strips, and the
        // degenerate single rank.
        for (rows, cols) in [
            (1, 1),
            (1, 2),
            (1, 6),
            (4, 1),
            (2, 2),
            (2, 3),
            (3, 3),
            (4, 2),
            (6, 4),
            (5, 3),
        ] {
            let s = job_allreduce(rows, cols, 8);
            assert_eq!(s.nranks, (rows * cols).max(1));
            check_allreduce(&s).unwrap_or_else(|e| panic!("{rows}x{cols}: {e}"));
        }
    }

    #[test]
    fn ring_volume_matches_theory() {
        // Reduce-scatter + allgather move 2*(p-1)/p * S bytes per rank.
        let (p, n) = (8, 64);
        let s = ring_allreduce(p, n);
        let total = s.total_send_bytes();
        let expect = 2 * (p as u64 - 1) * (n as u64 * 4);
        assert_eq!(total, expect);
    }
}
