//! # hxcollect — collective communication for HammingMesh
//!
//! Implements the collective algorithms of §V-A2 as *schedules*: explicit
//! per-rank dependency graphs of send/receive/compute operations. One
//! schedule can be executed two ways:
//!
//! * [`logical::execute`] runs it on real `f32` vectors and checks
//!   numerical correctness (every allreduce really computes the global sum),
//! * [`simapp::ScheduleApp`] replays it inside the [`hxsim`] packet
//!   simulator to measure time on a concrete topology.
//!
//! Provided algorithms:
//!
//! * pipelined ring allreduce (§V-A2b), unidirectional and bidirectional,
//! * the two edge-disjoint Hamiltonian-cycle bidirectional rings used to
//!   drive all four HxMesh ports ([`rings`], App. D / Bae et al.),
//! * the two-dimensional torus allreduce (reduce-scatter + column allreduce
//!   + allgather, §V-A2c),
//! * binomial-tree allreduce for small messages (§V-A2a),
//! * ring broadcast and allgather building blocks,
//! * α-β analytic runtime models for all of the above ([`model`]).

pub mod allreduce;
pub mod logical;
pub mod model;
pub mod rings;
pub mod schedule;
pub mod simapp;

pub use allreduce::{
    bidirectional_ring_allreduce, binomial_tree_allreduce, disjoint_rings_allreduce,
    ring_allgather, ring_allreduce, ring_broadcast, ring_reduce_scatter, torus2d_allreduce,
};
pub use schedule::{Op, OpKind, Payload, RecvAction, Schedule};

/// Element width used throughout (FP32 gradients, §V-B "trained in FP32").
pub const ELEM_BYTES: u64 = 4;
