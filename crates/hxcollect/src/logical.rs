//! Logical (data-level) schedule executor.
//!
//! Runs a [`Schedule`] on real `f32` vectors to verify that the collective
//! computes what it claims — e.g. after an allreduce schedule, every rank's
//! buffer must equal the element-wise sum of all initial buffers. This is
//! the correctness half of the dual-executor design; the packet simulator
//! is the timing half.

use crate::schedule::{OpKind, Payload, RecvAction, Schedule};
use std::collections::BTreeMap;

/// Outcome of a logical execution.
#[derive(Debug)]
pub struct LogicalResult {
    /// Final buffer contents per rank.
    pub data: Vec<Vec<f32>>,
    /// Number of messages exchanged.
    pub messages: usize,
}

/// Execute `sched` starting from `inputs` (one vector per rank, all of
/// length `sched.data_len`). Returns an error when the schedule deadlocks
/// (an op never becomes runnable) — which property tests use to reject
/// malformed generators.
pub fn execute(sched: &Schedule, inputs: &[Vec<f32>]) -> Result<LogicalResult, String> {
    assert_eq!(inputs.len(), sched.nranks);
    for (r, v) in inputs.iter().enumerate() {
        assert_eq!(v.len(), sched.data_len, "rank {r} input length");
    }
    sched.validate()?;

    let mut data: Vec<Vec<f32>> = inputs.to_vec();
    let mut done: Vec<Vec<bool>> = sched.ops.iter().map(|v| vec![false; v.len()]).collect();
    // In-flight messages: (src, dst, tag) -> segment data + offset.
    #[allow(clippy::type_complexity)]
    let mut mailbox: BTreeMap<(u32, u32, u64), Vec<(Option<(u32, Vec<f32>)>, u64)>> =
        BTreeMap::new();
    let mut messages = 0usize;

    let total: usize = sched.num_ops();
    let mut completed = 0usize;
    loop {
        let mut progress = false;
        for r in 0..sched.nranks {
            for i in 0..sched.ops[r].len() {
                if done[r][i] {
                    continue;
                }
                let op = &sched.ops[r][i];
                if !op.deps.iter().all(|&d| done[r][d as usize]) {
                    continue;
                }
                match op.kind {
                    OpKind::Compute { .. } => {
                        done[r][i] = true;
                    }
                    OpKind::Send { to, tag, payload } => {
                        let entry = match payload {
                            Payload::Segment { off, len } => {
                                let seg = data[r][off as usize..(off + len) as usize].to_vec();
                                (Some((off, seg)), 0)
                            }
                            Payload::Opaque { bytes } => (None, bytes),
                        };
                        mailbox.entry((r as u32, to, tag)).or_default().push(entry);
                        messages += 1;
                        done[r][i] = true;
                    }
                    OpKind::Recv { from, tag, action } => {
                        let key = (from, r as u32, tag);
                        let Some(queue) = mailbox.get_mut(&key) else {
                            continue;
                        };
                        if queue.is_empty() {
                            continue;
                        }
                        let (seg, _bytes) = queue.remove(0);
                        match (action, seg) {
                            (RecvAction::Discard, _) => {}
                            (RecvAction::Reduce, Some((off, vals))) => {
                                for (k, v) in vals.iter().enumerate() {
                                    data[r][off as usize + k] += v;
                                }
                            }
                            (RecvAction::Copy, Some((off, vals))) => {
                                data[r][off as usize..off as usize + vals.len()]
                                    .copy_from_slice(&vals);
                            }
                            (a, None) => {
                                return Err(format!("rank {r} op {i}: {a:?} on opaque payload"))
                            }
                        }
                        done[r][i] = true;
                    }
                }
                if done[r][i] {
                    completed += 1;
                    progress = true;
                }
            }
        }
        if completed == total {
            return Ok(LogicalResult { data, messages });
        }
        if !progress {
            let stuck: Vec<String> = (0..sched.nranks)
                .flat_map(|r| {
                    done[r]
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| !**d)
                        .map(move |(i, _)| format!("rank {r} op {i}"))
                })
                .take(8)
                .collect();
            return Err(format!("schedule deadlock; stuck: {stuck:?}"));
        }
    }
}

/// Convenience: run `sched` on deterministic pseudo-random inputs and check
/// that every rank ends with the element-wise sum of all inputs (allreduce
/// post-condition). Tolerates float rounding from reassociation.
pub fn check_allreduce(sched: &Schedule) -> Result<(), String> {
    let inputs: Vec<Vec<f32>> = (0..sched.nranks)
        .map(|r| {
            (0..sched.data_len)
                .map(|i| ((r * 31 + i * 7) % 97) as f32 - 48.0)
                .collect()
        })
        .collect();
    let mut expect = vec![0.0f32; sched.data_len];
    for v in &inputs {
        for (e, x) in expect.iter_mut().zip(v) {
            *e += x;
        }
    }
    let res = execute(sched, &inputs)?;
    for (r, v) in res.data.iter().enumerate() {
        for (i, (&got, &want)) in v.iter().zip(&expect).enumerate() {
            let tol = 1e-3 * (1.0 + want.abs());
            if (got - want).abs() > tol {
                return Err(format!(
                    "rank {r} elem {i}: got {got}, want {want} (allreduce broken)"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    /// Hand-written 2-rank allreduce: exchange full vectors and reduce.
    #[test]
    fn two_rank_exchange_allreduce() {
        let mut s = Schedule::new(2, 4);
        for r in 0..2usize {
            let peer = (1 - r) as u32;
            s.send(r, peer, 0, Payload::Segment { off: 0, len: 4 }, vec![]);
            s.recv(r, peer, 0, RecvAction::Reduce, vec![]);
        }
        check_allreduce(&s).unwrap();
    }

    #[test]
    fn deadlock_detected() {
        let mut s = Schedule::new(2, 4);
        // Recv with no matching send.
        s.recv(0, 1, 0, RecvAction::Reduce, vec![]);
        let inputs = vec![vec![0.0; 4], vec![0.0; 4]];
        assert!(execute(&s, &inputs).is_err());
    }

    #[test]
    fn copy_action_overwrites() {
        let mut s = Schedule::new(2, 2);
        s.send(0, 1, 0, Payload::Segment { off: 0, len: 2 }, vec![]);
        s.recv(1, 0, 0, RecvAction::Copy, vec![]);
        let res = execute(&s, &[vec![5.0, 6.0], vec![0.0, 0.0]]).unwrap();
        assert_eq!(res.data[1], vec![5.0, 6.0]);
    }

    #[test]
    fn opaque_discard_works() {
        let mut s = Schedule::new(2, 1);
        s.send(0, 1, 3, Payload::Opaque { bytes: 1000 }, vec![]);
        s.recv(1, 0, 3, RecvAction::Discard, vec![]);
        let res = execute(&s, &[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(res.data[1], vec![2.0]);
        assert_eq!(res.messages, 1);
    }
}
