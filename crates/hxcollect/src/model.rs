//! α-β analytic runtime models for the collectives (§V-A2).
//!
//! `alpha_ps` is the per-message latency, `beta_ps_per_byte` the inverse
//! bandwidth of **one** network interface (20 ps/B at 400 Gb/s). The
//! formulas are the paper's; the tests in `tests/` compare them against the
//! packet simulator.

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct AlphaBeta {
    /// Per-hop/message startup latency in picoseconds.
    pub alpha_ps: f64,
    /// Seconds-per-byte equivalent in ps/B of a single interface.
    pub beta_ps_per_byte: f64,
}

impl AlphaBeta {
    /// 400 Gb/s interfaces with ~1 µs software/packet startup.
    pub fn default_400g() -> Self {
        Self {
            alpha_ps: 1_000_000.0,
            beta_ps_per_byte: 20.0,
        }
    }
}

impl AlphaBeta {
    /// Binomial tree allreduce (§V-A2a): `T ≈ log2(p)·α + log2(p)·S·β`.
    pub fn tree_allreduce(&self, p: usize, s_bytes: u64) -> f64 {
        let l = (p as f64).log2().ceil();
        l * self.alpha_ps + l * s_bytes as f64 * self.beta_ps_per_byte
    }

    /// Unidirectional pipelined ring (§V-A2b): `Tp ≈ 2pα + 2Sβ`.
    pub fn ring_allreduce(&self, p: usize, s_bytes: u64) -> f64 {
        2.0 * p as f64 * self.alpha_ps + 2.0 * s_bytes as f64 * self.beta_ps_per_byte
    }

    /// Bidirectional pipelined ring (§V-A2b): `Tbp ≈ 2pα + Sβ`.
    pub fn bidirectional_ring_allreduce(&self, p: usize, s_bytes: u64) -> f64 {
        2.0 * p as f64 * self.alpha_ps + s_bytes as f64 * self.beta_ps_per_byte
    }

    /// Two bidirectional rings on disjoint Hamiltonian cycles (§V-A2b):
    /// `Trings ≈ 2pα + (S/2)β`.
    pub fn disjoint_rings_allreduce(&self, p: usize, s_bytes: u64) -> f64 {
        2.0 * p as f64 * self.alpha_ps + 0.5 * s_bytes as f64 * self.beta_ps_per_byte
    }

    /// 2D torus algorithm (§V-A2c):
    /// `T ≈ 4√p α + Sβ (1 + 2√p) / (4√p)`.
    pub fn torus2d_allreduce(&self, p: usize, s_bytes: u64) -> f64 {
        let sq = (p as f64).sqrt();
        4.0 * sq * self.alpha_ps
            + s_bytes as f64 * self.beta_ps_per_byte * (1.0 + 2.0 * sq) / (4.0 * sq)
    }

    /// Optimal large-message allreduce bus bandwidth: every byte must enter
    /// and leave each node once; with `k` interfaces the bound is
    /// `T ≥ 2S/(k/β) = 2Sβ/k` — i.e. "1/2 of the injection bandwidth"
    /// (Table II's allreduce normalization).
    pub fn allreduce_lower_bound(&self, s_bytes: u64, interfaces: usize) -> f64 {
        2.0 * s_bytes as f64 * self.beta_ps_per_byte / interfaces as f64
    }

    /// Balanced-shift alltoall on a nonblocking fabric: each rank streams
    /// `(p-1)·S` bytes at one interface's rate.
    pub fn alltoall(&self, p: usize, s_bytes_per_pair: u64, interfaces: usize) -> f64 {
        (p as f64 - 1.0)
            * (self.alpha_ps + s_bytes_per_pair as f64 * self.beta_ps_per_byte / interfaces as f64)
    }
}

/// The "allreduce bandwidth as share of peak" metric from Table II: peak is
/// half the injection bandwidth; reported value is
/// `S / T` normalized by `inj/2`, where `inj` is bytes/ps of all interfaces.
pub fn allreduce_bw_fraction(s_bytes: u64, t_ps: u64, inj_bytes_per_ps: f64) -> f64 {
    if t_ps == 0 {
        return 0.0;
    }
    let achieved = s_bytes as f64 / t_ps as f64; // bytes/ps of "allreduce work"
    achieved / (inj_bytes_per_ps / 2.0)
}

/// Global (alltoall) bandwidth as share of injection (Table II): bytes each
/// rank sends divided by runtime, over the injection bandwidth.
pub fn alltoall_bw_fraction(bytes_per_rank: u64, t_ps: u64, inj_bytes_per_ps: f64) -> f64 {
    if t_ps == 0 {
        return 0.0;
    }
    (bytes_per_rank as f64 / t_ps as f64) / inj_bytes_per_ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_formulas_are_consistent() {
        let m = AlphaBeta::default_400g();
        let (p, s) = (16, 64 << 20);
        // Bidirectional halves the bandwidth term.
        let uni = m.ring_allreduce(p, s);
        let bi = m.bidirectional_ring_allreduce(p, s);
        let rings = m.disjoint_rings_allreduce(p, s);
        assert!(bi < uni && rings < bi);
        // For large S the ratios approach 2x and 4x.
        let ratio = (uni - 2.0 * p as f64 * m.alpha_ps) / (rings - 2.0 * p as f64 * m.alpha_ps);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn torus_beats_rings_at_small_sizes() {
        // §V-A2c: the torus algorithm trades bandwidth for latency; at
        // small S and large p it wins, at large S the rings win.
        let m = AlphaBeta::default_400g();
        let p = 64;
        let small = 64 * 1024;
        let large = 512 << 20;
        assert!(m.torus2d_allreduce(p, small) < m.disjoint_rings_allreduce(p, small));
        assert!(m.torus2d_allreduce(p, large) > m.disjoint_rings_allreduce(p, large));
    }

    #[test]
    fn lower_bound_is_below_algorithms() {
        let m = AlphaBeta::default_400g();
        let (p, s) = (64, 512 << 20);
        let lb = m.allreduce_lower_bound(s, 4);
        assert!(lb <= m.disjoint_rings_allreduce(p, s));
        assert!(lb <= m.torus2d_allreduce(p, s));
    }

    #[test]
    fn bw_fraction_normalization() {
        // A perfect allreduce at the bound reports fraction 1.0.
        let m = AlphaBeta::default_400g();
        let s = 1 << 30;
        let inj = 4.0 / m.beta_ps_per_byte; // 4 ports
        let t = m.allreduce_lower_bound(s, 4) as u64;
        let f = allreduce_bw_fraction(s, t, inj);
        assert!((f - 1.0).abs() < 1e-6, "{f}");
    }
}
