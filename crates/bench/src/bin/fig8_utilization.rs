//! Regenerates **Fig. 8**: system utilization of the greedy allocator with
//! the heuristic stacks of §IV-B, on the four HxMesh configurations.

use hammingmesh::hxalloc::experiments::{fig8_strategies, fig8_utilization};
use hxbench::{header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let traces = args.traces.unwrap_or(if args.full { 1000 } else { 100 });

    // (label, x boards, y boards) — Fig. 8's four meshes.
    let meshes: &[(&str, usize, usize)] = if args.full {
        &[
            ("Small 16x16 Hx2Mesh", 16, 16),
            ("Small 8x8 Hx4Mesh", 8, 8),
            ("Large 64x64 Hx2Mesh", 64, 64),
            ("Large 32x32 Hx4Mesh", 32, 32),
        ]
    } else {
        &[
            ("Small 16x16 Hx2Mesh", 16, 16),
            ("Small 8x8 Hx4Mesh", 8, 8),
            ("Large 32x32 Hx4Mesh", 32, 32),
        ]
    };

    header(&format!(
        "Fig. 8 — system utilization, {traces} traces per point"
    ));
    for &(label, x, y) in meshes {
        println!("\n{label}:");
        println!(
            "{:<44} {:>7} {:>7} {:>7}",
            "strategy", "mean%", "med%", "p99%"
        );
        for strat in fig8_strategies() {
            let d = timed(strat.name, || {
                fig8_utilization(x, y, traces, strat, args.seed)
            });
            println!(
                "{:<44} {:>6.1} {:>6.1} {:>6.1}",
                strat.name,
                d.mean() * 100.0,
                d.median() * 100.0,
                d.percentile(0.01) * 100.0 // 99th percentile of the *loss*
            );
        }
    }
    println!("\nPaper: plain greedy ~90%; +transpose +5-8%; sorted stacks mean/median >98%.");
}
