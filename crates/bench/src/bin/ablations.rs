//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Global-tree tapering** (§III-F): sweep the HxMesh taper factor and
//!    measure alltoall (should degrade) vs allreduce (should not) and the
//!    switch/cable savings.
//! 2. **Board size** (Fig. 1's local-vs-global dial): Hx1/2/4/8 at equal
//!    accelerator count — the alltoall fraction should track the 1/2a cut.
//! 3. **Adaptive routing ingredients**: waypoints (column-first / Valiant)
//!    on vs off.

use hammingmesh::hxcost::Inventory;
use hammingmesh::prelude::*;
use hxbench::{header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    // Quick-mode message sizes; --full restores the paper-scale 32 KiB
    // alltoall / 16 MiB allreduce used for the reported numbers. The
    // topology shapes themselves cannot shrink: ablation 1 needs 2x = 96
    // ports per line to force two-level (taperable) global trees.
    let (a2a_msg, ared_msg): (u64, u64) = if args.full {
        (32 << 10, 16 << 20)
    } else {
        (16 << 10, 1 << 20)
    };

    header("Ablation 1 — HxMesh global-network tapering (§III-F)");
    println!(
        "{:>8} {:>9} {:>9} {:>11} {:>12}",
        "taper", "switches", "AoC", "a2a BW%", "ared BW%"
    );
    // Lines of 2x = 96 ports force two-level trees where taper applies.
    for taper in [0.0, 0.5, 0.75] {
        let p = hammingmesh::hxnet::hammingmesh::HxMeshParams {
            a: 2,
            b: 2,
            x: 48,
            y: 1,
            taper,
            radix: 64,
        };
        let net = p.build();
        let inv = Inventory::from_network(&net, 1);
        let a2a = timed(&format!("taper {taper} a2a"), || {
            experiments::alltoall_bandwidth_on(&net, a2a_msg, 2, engine)
        });
        let ar = timed(&format!("taper {taper} ared"), || {
            experiments::allreduce_bandwidth_on(
                &net,
                AllreduceAlgo::DisjointRings,
                ared_msg,
                engine,
            )
        });
        println!(
            "{:>8} {:>9} {:>9} {:>10.1}% {:>11.1}%",
            taper,
            inv.switches,
            inv.aoc_cables,
            a2a.bw_fraction * 100.0,
            ar.bw_fraction * 100.0
        );
    }
    println!("Expected: tapering cuts switches/cables and alltoall, allreduce unharmed\n(rings need only 2 ports between neighboring switches — Fig. 6).");

    header("Ablation 2 — board size at 256 accelerators (the 1/2a dial)");
    println!(
        "{:>8} {:>10} {:>11} {:>12}",
        "board", "cut bound", "a2a BW%", "ared BW%"
    );
    for board in [1usize, 2, 4, 8] {
        let side = 16 / board;
        let p = HxMeshParams::square(board, side);
        let net = p.build();
        let a2a = timed(&format!("hx{board} a2a"), || {
            experiments::alltoall_bandwidth_on(&net, a2a_msg, 2, engine)
        });
        let ar = timed(&format!("hx{board} ared"), || {
            experiments::allreduce_bandwidth_on(
                &net,
                AllreduceAlgo::DisjointRings,
                ared_msg,
                engine,
            )
        });
        println!(
            "{:>8} {:>9.1}% {:>10.1}% {:>11.1}%",
            format!("{board}x{board}"),
            100.0 / (2.0 * board as f64),
            a2a.bw_fraction * 100.0,
            ar.bw_fraction * 100.0
        );
    }

    header("Ablation 3 — source-adaptive waypoints");
    for use_waypoints in [true, false] {
        let net = HxMeshParams::square(2, if args.full { 8 } else { 4 }).build();
        let cfg = SimConfig {
            use_waypoints,
            ..Default::default()
        };
        let mut app = hammingmesh::hxsim::apps::Alltoall::new(net.num_ranks(), a2a_msg, 2);
        let stats = timed(&format!("waypoints={use_waypoints}"), || {
            simulate(&net, cfg, engine, &mut app)
        });
        let frac = hammingmesh::hxcollect::model::alltoall_bw_fraction(
            app.bytes_per_rank(),
            stats.finish_ps,
            net.injection_bytes_per_ps(0),
        );
        println!(
            "waypoints {:>5}: alltoall {:>5.1}% of injection (clean={})",
            use_waypoints,
            frac * 100.0,
            stats.clean()
        );
    }
    println!("Expected: disabling column-first waypoints funnels diagonal traffic\nthrough row-first paths only, lowering alltoall throughput.");
}
