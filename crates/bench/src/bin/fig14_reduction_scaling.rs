//! Regenerates **Fig. 14**: the reduction-bandwidth sweep — achieved
//! allreduce bandwidth (share of the S/(inj/2) optimum) as the cluster
//! *grows*, at a fixed large message size, for the rings and torus
//! algorithms across the Table II topologies. Complements Fig. 13, which
//! sweeps message size at a fixed cluster.
//!
//! Quick scale sweeps 64 and 256 endpoints at 1 MiB; `--full` adds the
//! paper's 1,024-endpoint cluster at 8 MiB. `--traces N` caps the sweep
//! at the first `N` cluster sizes (the smoke suite passes 1), and
//! `--engine packet|flow` / `--csv PATH` follow the harness conventions.

use hammingmesh::prelude::*;
use hxbench::{fmt_bytes, header, timed, HarnessArgs};
use rayon::prelude::*;
use std::fmt::Write as _;

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    let sizes: &[usize] = if args.full {
        &[64, 256, 1024]
    } else {
        &[64, 256]
    };
    let cap = args.traces.unwrap_or(sizes.len()).clamp(1, sizes.len());
    let sizes = &sizes[..cap];
    let bytes: u64 = if args.full { 8 << 20 } else { 1 << 20 };

    header(&format!(
        "Fig. 14 — allreduce bandwidth vs cluster size, {} per rank, {engine} engine",
        fmt_bytes(bytes)
    ));
    // Build each (topology, cluster-size) network once, then run the
    // (algorithm x topology x size) grid on the thread pool. Cells come
    // back in grid order, so table and CSV are identical at any thread
    // count.
    let algos = [AllreduceAlgo::DisjointRings, AllreduceAlgo::Torus2D];
    let nets: Vec<Vec<Network>> = TopologyChoice::all()
        .into_iter()
        .map(|choice| {
            sizes
                .iter()
                .map(|&n| {
                    if n >= 1024 {
                        choice.build_small()
                    } else {
                        choice.build_scaled(n)
                    }
                })
                .collect()
        })
        .collect();
    let grid: Vec<(AllreduceAlgo, usize, usize)> = algos
        .iter()
        .flat_map(|&algo| {
            (0..nets.len()).flat_map(move |ci| (0..sizes.len()).map(move |si| (algo, ci, si)))
        })
        .collect();
    let cells: Vec<Measurement> = timed("fig14 grid", || {
        grid.par_iter()
            .map(|&(algo, ci, si)| {
                experiments::allreduce_bandwidth_on(&nets[ci][si], algo, bytes, engine)
            })
            .collect()
    });

    let mut csv =
        String::from("algorithm,topology,engine,endpoints,bytes,bw_fraction,sim_ps,clean\n");
    let mut cell = 0usize;
    for algo in algos {
        println!("\nalgorithm: {algo:?}");
        print!("{:<24}", "topology");
        for &n in sizes {
            print!(" {:>10}", format!("{n} accels"));
        }
        println!();
        for (ci, choice) in TopologyChoice::all().into_iter().enumerate() {
            print!("{:<24}", choice.name());
            for si in 0..sizes.len() {
                // The print loops must mirror the grid construction order.
                debug_assert_eq!(grid[cell], (algo, ci, si));
                let m = &cells[cell];
                cell += 1;
                print!(
                    " {:>9.1}%{}",
                    m.bw_fraction * 100.0,
                    if m.clean { "" } else { "!" }
                );
                writeln!(
                    csv,
                    "{algo:?},{},{engine},{},{bytes},{:.4},{},{}",
                    choice.name(),
                    nets[ci][si].num_ranks(),
                    m.bw_fraction,
                    m.time_ps,
                    m.clean
                )
                .unwrap();
            }
            println!();
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).expect("write fig14 CSV");
        eprintln!("[fig14] wrote {}", path.display());
    }
    println!(
        "\nExpected shape (paper): at a fixed message the per-rank chunk shrinks as\n\
         the cluster grows, so every curve decays with p (the rings' 2pα latency\n\
         term); HxMesh tracks the fat trees within a constant factor while the\n\
         torus algorithm holds up better at small chunks (√p latency). Quick\n\
         scale is latency-tinged by design — `--full` runs the paper's 8 MiB."
    );
}
