//! Regenerates **Fig. 14**: the reduction-bandwidth sweep — achieved
//! allreduce bandwidth (share of the S/(inj/2) optimum) as the cluster
//! *grows*, at a fixed large message size, for the rings and torus
//! algorithms across the Table II topologies. Complements Fig. 13, which
//! sweeps message size at a fixed cluster.
//!
//! Quick scale sweeps 64 and 256 endpoints at 1 MiB; `--full` adds the
//! paper's 1,024-endpoint cluster at 8 MiB. `--traces N` caps the sweep
//! at the first `N` cluster sizes (the smoke suite passes 1), and
//! `--engine packet|flow` / `--csv PATH` follow the harness conventions.

use hammingmesh::prelude::*;
use hxbench::{fmt_bytes, header, timed, HarnessArgs};
use std::fmt::Write as _;

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    let sizes: &[usize] = if args.full {
        &[64, 256, 1024]
    } else {
        &[64, 256]
    };
    let cap = args.traces.unwrap_or(sizes.len()).clamp(1, sizes.len());
    let sizes = &sizes[..cap];
    let bytes: u64 = if args.full { 8 << 20 } else { 1 << 20 };

    header(&format!(
        "Fig. 14 — allreduce bandwidth vs cluster size, {} per rank, {engine} engine",
        fmt_bytes(bytes)
    ));
    let mut csv =
        String::from("algorithm,topology,engine,endpoints,bytes,bw_fraction,sim_ps,clean\n");
    for algo in [AllreduceAlgo::DisjointRings, AllreduceAlgo::Torus2D] {
        println!("\nalgorithm: {algo:?}");
        print!("{:<24}", "topology");
        for &n in sizes {
            print!(" {:>10}", format!("{n} accels"));
        }
        println!();
        for choice in TopologyChoice::all() {
            print!("{:<24}", choice.name());
            for &n in sizes {
                let net = if n >= 1024 {
                    choice.build_small()
                } else {
                    choice.build_scaled(n)
                };
                let m = timed(&format!("{} {:?} n={n}", choice.name(), algo), || {
                    experiments::allreduce_bandwidth_on(&net, algo, bytes, engine)
                });
                print!(
                    " {:>9.1}%{}",
                    m.bw_fraction * 100.0,
                    if m.clean { "" } else { "!" }
                );
                writeln!(
                    csv,
                    "{algo:?},{},{engine},{},{bytes},{:.4},{},{}",
                    choice.name(),
                    net.num_ranks(),
                    m.bw_fraction,
                    m.time_ps,
                    m.clean
                )
                .unwrap();
            }
            println!();
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).expect("write fig14 CSV");
        eprintln!("[fig14] wrote {}", path.display());
    }
    println!(
        "\nExpected shape (paper): at a fixed message the per-rank chunk shrinks as\n\
         the cluster grows, so every curve decays with p (the rings' 2pα latency\n\
         term); HxMesh tracks the fat trees within a constant factor while the\n\
         torus algorithm holds up better at small chunks (√p latency). Quick\n\
         scale is latency-tinged by design — `--full` runs the paper's 8 MiB."
    );
}
