//! Regenerates **Fig. 14**: the reduction-bandwidth sweep — achieved
//! allreduce bandwidth (share of the S/(inj/2) optimum) as the cluster
//! *grows*, at a fixed large message size, for the rings and torus
//! algorithms. Complements Fig. 13, which sweeps message size at a fixed
//! cluster. The sweep lives in `specs/fig14.toml`; this binary just binds
//! it to the shared flag set (`--traces N` caps the cluster-size axis —
//! the smoke suite passes 1 — and `--csv PATH` records per-cell samples).

fn main() {
    let args = hxbench::HarnessArgs::parse();
    hxbench::run_spec(include_str!("../../../../specs/fig14.toml"), &args);
}
