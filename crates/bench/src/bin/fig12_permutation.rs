//! Regenerates **Fig. 12**: the distribution of per-accelerator receive
//! bandwidth under random-permutation traffic, per topology, plus the
//! cost-per-average-bandwidth ranking.

use hammingmesh::prelude::*;
use hxbench::{header, timed, HarnessArgs};
use rayon::prelude::*;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    let n = if args.full { 1024 } else { 256 };
    let bytes = if args.full { 1 << 20 } else { 256 << 10 };

    header(&format!(
        "Fig. 12 — permutation receive-bandwidth distribution ({n} endpoints, {engine} engine)"
    ));
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>14}",
        "topology", "p10%", "median%", "p90%", "mean%", "cost/avgBW"
    );
    let costs = hammingmesh::hxcost::table2_entries(ClusterSize::Small);
    let mut ft_cost_per_bw = None;
    // One independent permutation run per topology: the whole row set
    // runs on the thread pool, results in topology order.
    let seed = args.seed;
    let rows: Vec<Vec<f64>> = timed("fig12 permutations", || {
        TopologyChoice::all()
            .into_par_iter()
            .map(|choice| {
                let net = if args.full {
                    choice.build_small()
                } else {
                    choice.build_scaled(n)
                };
                experiments::permutation_bandwidths_on(&net, bytes, 2, seed, engine)
            })
            .collect()
    });
    for ((i, choice), mut bw) in TopologyChoice::all().into_iter().enumerate().zip(rows) {
        bw.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = bw.iter().sum::<f64>() / bw.len() as f64;
        let cost_per_bw = costs[i].cost_musd() / mean.max(1e-9);
        let rel = *ft_cost_per_bw.get_or_insert(cost_per_bw);
        println!(
            "{:<24} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>10.2}x-FT",
            choice.name(),
            percentile(&bw, 0.10) * 100.0,
            percentile(&bw, 0.50) * 100.0,
            percentile(&bw, 0.90) * 100.0,
            mean * 100.0,
            cost_per_bw / rel
        );
    }
    println!(
        "\nPaper: significant variance across connections on every topology; HxMeshes\n\
         are among the most cost-effective per unit of average bandwidth."
    );
}
