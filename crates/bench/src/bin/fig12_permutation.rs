//! Regenerates **Fig. 12**: the distribution of per-accelerator receive
//! bandwidth under random-permutation traffic, per topology, plus the
//! cost-per-average-bandwidth ranking. The sweep lives in
//! `specs/fig12.toml`; this binary just binds it to the shared flag set.

fn main() {
    let args = hxbench::HarnessArgs::parse();
    hxbench::run_spec(include_str!("../../../../specs/fig12.toml"), &args);
}
