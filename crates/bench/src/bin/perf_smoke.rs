//! CI perf-smoke harness: runs the Fig. 11 (alltoall) and Fig. 13
//! (allreduce) headline scenarios at quick scale on **both** simulation
//! backends, records wall-clock and simulated time to `BENCH_sim.json`,
//! emits the figure sweeps as CSV artifacts (flow engine, so the sweep
//! stays cheap even in CI), and benchmarks the thread pool: the Fig. 8 /
//! Fig. 9 Monte-Carlo trace sweeps run once at 1 thread and once at the
//! environment thread count, and `BENCH_par.json` records the measured
//! parallel speedup plus a bitwise identical-results check.
//!
//! ```sh
//! perf_smoke --out bench-artifacts
//! ```
//!
//! The JSON files double as the PR-level perf gates: `BENCH_sim.json`'s
//! `wall_speedup` documents how much faster the flow-level fast path is
//! than the packet engine, and `BENCH_par.json`'s `speedup` documents
//! what multi-core execution buys on the trace sweeps (CI enforces
//! >= 1.5x when the runner has >= 4 cores).

use hammingmesh::hxalloc::experiments::{
    fig8_strategies, fig8_utilization, fig9_upper_traffic, Distribution,
};
use hammingmesh::hxsim::apps::Alltoall;
use hammingmesh::hxsim::SimStats;
use hammingmesh::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct EngineRun {
    wall_s: f64,
    sim_ps: u64,
    bw_fraction: f64,
    clean: bool,
}

fn run_both(mut f: impl FnMut(EngineKind) -> Measurement) -> (EngineRun, EngineRun) {
    let mut one = |engine| {
        #[allow(clippy::disallowed_methods)] // wall-clock is this bin's product
        let t0 = Instant::now();
        let m = f(engine);
        EngineRun {
            wall_s: t0.elapsed().as_secs_f64(),
            sim_ps: m.time_ps,
            bw_fraction: m.bw_fraction,
            clean: m.clean,
        }
    };
    (one(EngineKind::Packet), one(EngineKind::Flow))
}

fn json_scenario(out: &mut String, name: &str, desc: &str, packet: &EngineRun, flow: &EngineRun) {
    let speedup = packet.wall_s / flow.wall_s.max(1e-9);
    writeln!(out, "    \"{name}\": {{").unwrap();
    writeln!(out, "      \"scenario\": \"{desc}\",").unwrap();
    for (engine, r) in [("packet", packet), ("flow", flow)] {
        writeln!(
            out,
            "      \"{engine}\": {{\"wall_s\": {:.4}, \"sim_ps\": {}, \"bw_fraction\": {:.4}, \"clean\": {}}},",
            r.wall_s, r.sim_ps, r.bw_fraction, r.clean
        )
        .unwrap();
    }
    writeln!(out, "      \"wall_speedup\": {speedup:.1}").unwrap();
    out.push_str("    }");
}

fn main() {
    let mut out_dir = PathBuf::from(".");
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_dir = PathBuf::from(it.next().expect("--out needs a directory")),
            // Shrink the packet-engine scenarios so the binary stays fast
            // under the debug profile (the smoke tests run it this way);
            // CI's perf job runs the full release version.
            "--quick" => quick = true,
            // Accepted for smoke-test CLI uniformity.
            "--traces" | "--seed" => {
                let _ = it.next();
            }
            "--help" | "-h" => {
                eprintln!("options: --out DIR  --quick");
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // Headline scenarios: quick topology scale (Hx2Mesh, 64 endpoints)
    // at the paper's headline message sizes — the largest size of the
    // Fig. 11 axis (1 MiB alltoall) and of the Fig. 13 axis (64 MiB
    // allreduce). This is the regime the flow engine exists for: packet
    // cost grows with bytes, flow cost does not.
    let (a2a_bytes, ar_bytes): (u64, u64) = if quick {
        (128 << 10, 4 << 20)
    } else {
        (1 << 20, 64 << 20)
    };
    let net = TopologyChoice::Hx2Mesh.build_scaled(64);
    eprintln!("[perf_smoke] fig11_alltoall scenario on {}", net.name);
    let (a2a_packet, a2a_flow) =
        run_both(|engine| experiments::alltoall_bandwidth_on(&net, a2a_bytes, 2, engine));
    eprintln!(
        "[perf_smoke] alltoall packet {:.2}s / flow {:.2}s -> {:.0}x",
        a2a_packet.wall_s,
        a2a_flow.wall_s,
        a2a_packet.wall_s / a2a_flow.wall_s.max(1e-9)
    );
    eprintln!("[perf_smoke] fig13_allreduce scenario on {}", net.name);
    let (ar_packet, ar_flow) = run_both(|engine| {
        experiments::allreduce_bandwidth_on(&net, AllreduceAlgo::DisjointRings, ar_bytes, engine)
    });
    eprintln!(
        "[perf_smoke] allreduce packet {:.2}s / flow {:.2}s -> {:.0}x",
        ar_packet.wall_s,
        ar_flow.wall_s,
        ar_packet.wall_s / ar_flow.wall_s.max(1e-9)
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"perf_smoke\",\n");
    json.push_str(if quick {
        "  \"scale\": \"reduced (--quick)\",\n"
    } else {
        "  \"scale\": \"quick\",\n"
    });
    json.push_str("  \"scenarios\": {\n");
    json_scenario(
        &mut json,
        "fig11_alltoall",
        &format!(
            "balanced-shift alltoall, {}/pair, Hx2Mesh 64 endpoints",
            hxbench::fmt_bytes(a2a_bytes)
        ),
        &a2a_packet,
        &a2a_flow,
    );
    json.push_str(",\n");
    json_scenario(
        &mut json,
        "fig13_allreduce",
        &format!(
            "disjoint-rings allreduce, {}/rank, Hx2Mesh 64 endpoints",
            hxbench::fmt_bytes(ar_bytes)
        ),
        &ar_packet,
        &ar_flow,
    );
    json.push_str(",\n");
    json_flow_scale(&mut json, quick);
    json.push_str("\n  }\n}\n");
    let json_path = out_dir.join("BENCH_sim.json");
    std::fs::write(&json_path, &json).expect("write BENCH_sim.json");
    eprintln!("[perf_smoke] wrote {}", json_path.display());

    // Figure sweeps as CSV artifacts, on the flow engine (cheap).
    let sizes_a2a: &[u64] = if quick {
        &[32 << 10]
    } else {
        &[32 << 10, 256 << 10, 1 << 20]
    };
    let mut csv = String::from("topology,engine,bytes,bw_fraction,sim_ps,clean\n");
    for choice in TopologyChoice::all() {
        let net = choice.build_scaled(64);
        for &s in sizes_a2a {
            let m = experiments::alltoall_bandwidth_on(&net, s, 2, EngineKind::Flow);
            writeln!(
                csv,
                "{},flow,{},{:.4},{},{}",
                choice.name(),
                s,
                m.bw_fraction,
                m.time_ps,
                m.clean
            )
            .unwrap();
        }
    }
    let p = out_dir.join("fig11_alltoall.csv");
    std::fs::write(&p, &csv).expect("write fig11 csv");
    eprintln!("[perf_smoke] wrote {}", p.display());

    let sizes_ar: &[u64] = if quick {
        &[256 << 10]
    } else {
        &[256 << 10, 1 << 20, 4 << 20]
    };
    let mut csv = String::from("topology,engine,algorithm,bytes,bw_fraction,sim_ps,clean\n");
    for choice in TopologyChoice::all() {
        let net = choice.build_scaled(64);
        for algo in [AllreduceAlgo::DisjointRings, AllreduceAlgo::Torus2D] {
            for &s in sizes_ar {
                let m = experiments::allreduce_bandwidth_on(&net, algo, s, EngineKind::Flow);
                writeln!(
                    csv,
                    "{},flow,{:?},{},{:.4},{},{}",
                    choice.name(),
                    algo,
                    s,
                    m.bw_fraction,
                    m.time_ps,
                    m.clean
                )
                .unwrap();
            }
        }
    }
    let p = out_dir.join("fig13_allreduce.csv");
    std::fs::write(&p, &csv).expect("write fig13 csv");
    eprintln!("[perf_smoke] wrote {}", p.display());

    write_bench_obs(&out_dir, quick, &net, a2a_bytes);
    write_bench_fault(&out_dir, quick, &net, a2a_bytes);
    write_bench_par(&out_dir, quick);
}

/// The mid-run failure machinery's no-op gate: the fig11 alltoall flow
/// run with no schedule — the baseline configuration every figure sweep
/// uses — against the same run with a [`hammingmesh::hxsim::FailureSchedule`] armed whose
/// events all land far beyond the horizon. The no-schedule run IS the
/// baseline, so this gate pins the cost of carrying schedule support in
/// the engines at all; an armed-but-inert schedule costs one comparison
/// per epoch-loop iteration and must sit within measurement noise
/// (<= 1.05x). `BENCH_fault.json` records both walls and the gate.
fn write_bench_fault(out_dir: &std::path::Path, quick: bool, net: &Network, bytes: u64) {
    use hammingmesh::hxsim::FailureSchedule;
    let wall = |sched: &FailureSchedule| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            #[allow(clippy::disallowed_methods)] // wall-clock is this bin's product
            let t0 = Instant::now();
            let m = experiments::alltoall_bandwidth_cfg(
                net,
                bytes,
                2,
                EngineKind::Flow,
                SimConfig {
                    failures: sched.clone(),
                    ..SimConfig::default()
                },
            );
            assert!(m.clean, "fig11 flow run did not deliver all traffic");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let baseline = wall(&FailureSchedule::default());
    let (node, port) = net.topo.cables()[0];
    const BEYOND_HORIZON_PS: u64 = 1_000_000_000_000_000;
    let armed = FailureSchedule::new()
        .fail(BEYOND_HORIZON_PS, node, port)
        .repair(BEYOND_HORIZON_PS + 1_000, node, port);
    let armed_wall = wall(&armed);
    let ratio = armed_wall / baseline.max(1e-9);
    eprintln!(
        "[perf_smoke] fault: no-schedule {baseline:.3}s, armed-inert {armed_wall:.3}s \
         ({ratio:.3}x)"
    );
    let mut json = String::new();
    json.push_str("{\n  \"generated_by\": \"perf_smoke\",\n");
    json.push_str(
        "  \"scenario\": \"balanced-shift alltoall, flow engine, Hx2Mesh 64 endpoints, \
         min-of-3 walls in one process; armed schedule fires beyond the horizon\",\n",
    );
    writeln!(json, "  \"no_schedule_wall_s\": {baseline:.4},").unwrap();
    writeln!(json, "  \"armed_inert_wall_s\": {armed_wall:.4},").unwrap();
    writeln!(json, "  \"ratio\": {ratio:.4},").unwrap();
    writeln!(
        json,
        "  \"gate\": {{\"max_ratio\": 1.05, \"enforced\": {}}}",
        !quick
    )
    .unwrap();
    json.push_str("}\n");
    let path = out_dir.join("BENCH_fault.json");
    std::fs::write(&path, &json).expect("write BENCH_fault.json");
    eprintln!("[perf_smoke] wrote {}", path.display());
}

/// The observability overhead gate: the fig11 alltoall flow run measured
/// three ways in one process — telemetry disabled (the baseline and the
/// "tracing off" leg, proving the disabled instrumentation is one branch
/// per site), then with both channels on. `BENCH_obs.json` records the
/// walls and the ratio gates (off <= 1.05x, on <= 1.25x); the traced run
/// also emits `fig11_flow.trace.json`, a Perfetto-loadable sample
/// artifact, validated against the Chrome trace-event schema before it
/// is written.
fn write_bench_obs(out_dir: &std::path::Path, quick: bool, net: &Network, bytes: u64) {
    use hxtelemetry::collect;
    let wall = |runs: u32| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            #[allow(clippy::disallowed_methods)] // wall-clock is this bin's product
            let t0 = Instant::now();
            let m = experiments::alltoall_bandwidth_on(net, bytes, 2, EngineKind::Flow);
            assert!(m.clean, "fig11 flow run did not deliver all traffic");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    collect::set_trace_enabled(false);
    collect::set_metrics_enabled(false);
    let baseline = wall(3);
    let off = wall(3);
    collect::set_trace_enabled(true);
    collect::set_metrics_enabled(true);
    collect::reset();
    let on = {
        let _scope = collect::scope("obs/fig11_flow");
        wall(3)
    };
    let trace = collect::render_trace().expect("render trace");
    let events = hxtelemetry::validate_chrome_trace(&trace)
        .expect("traced fig11 run must emit valid Chrome trace JSON");
    collect::set_trace_enabled(false);
    collect::set_metrics_enabled(false);
    collect::reset();
    let trace_path = out_dir.join("fig11_flow.trace.json");
    std::fs::write(&trace_path, &trace).expect("write sample trace artifact");
    eprintln!(
        "[perf_smoke] wrote {} ({events} events)",
        trace_path.display()
    );

    let off_ratio = off / baseline.max(1e-9);
    let on_ratio = on / baseline.max(1e-9);
    eprintln!(
        "[perf_smoke] obs: baseline {baseline:.3}s, tracing-off {off:.3}s ({off_ratio:.3}x), \
         tracing-on {on:.3}s ({on_ratio:.3}x)"
    );
    let mut json = String::new();
    json.push_str("{\n  \"generated_by\": \"perf_smoke\",\n");
    json.push_str(
        "  \"scenario\": \"balanced-shift alltoall, flow engine, Hx2Mesh 64 endpoints, \
         min-of-3 walls in one process\",\n",
    );
    writeln!(json, "  \"baseline_wall_s\": {baseline:.4},").unwrap();
    writeln!(json, "  \"tracing_off_wall_s\": {off:.4},").unwrap();
    writeln!(json, "  \"tracing_on_wall_s\": {on:.4},").unwrap();
    writeln!(json, "  \"off_ratio\": {off_ratio:.4},").unwrap();
    writeln!(json, "  \"on_ratio\": {on_ratio:.4},").unwrap();
    writeln!(json, "  \"trace_events\": {events},").unwrap();
    writeln!(
        json,
        "  \"gate\": {{\"max_off_ratio\": 1.05, \"max_on_ratio\": 1.25, \"enforced\": {}}}",
        !quick
    )
    .unwrap();
    json.push_str("}\n");
    let path = out_dir.join("BENCH_obs.json");
    std::fs::write(&path, &json).expect("write BENCH_obs.json");
    eprintln!("[perf_smoke] wrote {}", path.display());
}

/// ROADMAP item 1's scale gate: a Table-II-scale Hx4Mesh alltoall on one
/// core of the flow engine. The alltoall is shift-capped
/// ([`Alltoall::with_shifts`]) so the message count stays CI-sized
/// (16384 ranks × 8 shifts ≈ 131k messages; the untruncated pattern
/// would be 2.7·10⁸), while each shift remains a full permutation of the
/// uniform all-pairs traffic. Records wall-clock, the solver-effort
/// split from [`SimStats`], and the share of recompute epochs the
/// O(affected) incremental solver kept component-scoped — CI gates that
/// share at ≥ 0.9 and the wall-clock under the step budget. `--quick`
/// shrinks to 1024 endpoints so the debug-profile smoke tests stay fast.
fn json_flow_scale(out: &mut String, quick: bool) {
    let (endpoints, shifts, bytes): (usize, u32, u64) = if quick {
        (1024, 4, 64 << 10)
    } else {
        (16384, 8, 64 << 10)
    };
    eprintln!("[perf_smoke] flow_scale: Hx4Mesh {endpoints} endpoints, {shifts} shifts");
    let net = TopologyChoice::Hx4Mesh.build_scaled(endpoints);
    // Window 1: one in-flight shift per rank. Deeper windows overlap
    // consecutive permutations, and the overlap flows chain accelerator
    // rows into one giant sharing component — which turns nearly every
    // epoch into a full refill and defeats the O(affected) solver this
    // step exists to measure.
    let mut app = Alltoall::with_shifts(endpoints, bytes, 1, shifts);
    #[allow(clippy::disallowed_methods)] // wall-clock is this bin's product
    let t0 = Instant::now();
    let stats: SimStats = FlowEngine::new(&net, SimConfig::default()).run(&mut app);
    let wall_s = t0.elapsed().as_secs_f64();
    let messages = endpoints as u64 * shifts as u64;
    let comp_share =
        stats.rate_recomputes_component as f64 / (stats.rate_recomputes as f64).max(1.0);
    eprintln!(
        "[perf_smoke] flow_scale: {messages} messages in {wall_s:.2}s, \
         {} recompute epochs ({} full, {} component -> {:.1}% component-scoped)",
        stats.rate_recomputes,
        stats.rate_recomputes_full,
        stats.rate_recomputes_component,
        100.0 * comp_share
    );
    assert!(stats.clean(), "flow_scale run did not complete: {stats:?}");
    writeln!(out, "    \"flow_scale\": {{").unwrap();
    writeln!(
        out,
        "      \"scenario\": \"shift-capped alltoall, Hx4Mesh {endpoints} endpoints, \
         {shifts} shifts x {}/pair, flow engine, 1 core\",",
        hxbench::fmt_bytes(bytes)
    )
    .unwrap();
    writeln!(
        out,
        "      \"endpoints\": {endpoints}, \"shifts\": {shifts}, \"messages\": {messages},"
    )
    .unwrap();
    writeln!(
        out,
        "      \"flow\": {{\"wall_s\": {wall_s:.4}, \"sim_ps\": {}, \"clean\": {}}},",
        stats.finish_ps,
        stats.clean()
    )
    .unwrap();
    writeln!(
        out,
        "      \"rate_recomputes\": {}, \"rate_recomputes_full\": {}, \
         \"rate_recomputes_component\": {}, \"rate_touched_flows\": {},",
        stats.rate_recomputes,
        stats.rate_recomputes_full,
        stats.rate_recomputes_component,
        stats.rate_touched_flows
    )
    .unwrap();
    writeln!(out, "      \"component_fill_share\": {comp_share:.4},").unwrap();
    // The wall budget is generous against the measured time (see
    // BENCH_sim.json in-tree) so CI noise cannot flake the gate; the
    // component-share gate is the real O(affected) regression tripwire.
    writeln!(
        out,
        "      \"gate\": {{\"min_component_share\": 0.9, \"max_wall_s\": 120.0, \
         \"enforced\": {}}}",
        !quick
    )
    .unwrap();
    out.push_str("    }");
}

/// Benchmark the thread pool under the rayon shim: the Fig. 8 and Fig. 9
/// Monte-Carlo trace sweeps — the workloads ISSUE/ROADMAP name as the
/// parallelization targets — once at `RAYON_NUM_THREADS=1` and once at
/// the environment thread count, asserting the two runs produce bitwise
/// identical samples (the pool's index-ordered collection contract) and
/// recording the wall-clock speedup in `BENCH_par.json`.
///
/// The vendored shim re-reads `RAYON_NUM_THREADS` on every parallel call,
/// which is what lets one process measure both configurations.
fn write_bench_par(out_dir: &std::path::Path, quick: bool) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    let threads = rayon::current_num_threads();
    // Sized so the sequential leg runs a few hundred ms in release: long
    // enough that the CI speedup gate measures compute, not timer noise
    // or thread spawn cost, short enough to stay a smoke test.
    let (fig8_traces, fig9_traces) = if quick { (60, 6) } else { (4000, 200) };
    let strategies = fig8_strategies();
    let full_stack = strategies[5];
    let locality_stack = strategies[3];

    let run_fig8 = || fig8_utilization(16, 16, fig8_traces, full_stack, 0xC0FFEE);
    let run_fig9 = || fig9_upper_traffic(64, 64, fig9_traces, locality_stack, 0xC0FFEE);
    let timed = |f: &dyn Fn() -> Vec<Distribution>| {
        #[allow(clippy::disallowed_methods)] // wall-clock is this bin's product
        let t0 = Instant::now();
        let d = f();
        (d, t0.elapsed().as_secs_f64())
    };

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let (d8_seq, w8_seq) = timed(&|| vec![run_fig8()]);
    let (d9_seq, w9_seq) = timed(&|| {
        let (a, b) = run_fig9();
        vec![a, b]
    });
    match &saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let (d8_par, w8_par) = timed(&|| vec![run_fig8()]);
    let (d9_par, w9_par) = timed(&|| {
        let (a, b) = run_fig9();
        vec![a, b]
    });

    let identical = |a: &[Distribution], b: &[Distribution]| {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.samples.len() == y.samples.len()
                    && x.samples
                        .iter()
                        .zip(&y.samples)
                        .all(|(p, q)| p.to_bits() == q.to_bits())
            })
    };
    let id8 = identical(&d8_seq, &d8_par);
    let id9 = identical(&d9_seq, &d9_par);
    assert!(
        id8 && id9,
        "parallel sweep results diverged from sequential (fig8: {id8}, fig9: {id9})"
    );

    let mut json = String::new();
    json.push_str("{\n  \"generated_by\": \"perf_smoke\",\n");
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    json.push_str("  \"sweeps\": {\n");
    for (name, traces, seq, par, id, comma) in [
        ("fig8_utilization", fig8_traces, w8_seq, w8_par, id8, ","),
        ("fig9_upper_traffic", fig9_traces, w9_seq, w9_par, id9, ""),
    ] {
        writeln!(
            json,
            "    \"{name}\": {{\"traces\": {traces}, \"wall_s_1thread\": {seq:.4}, \
             \"wall_s_par\": {par:.4}, \"speedup\": {:.2}, \"identical_results\": {id}}}{comma}",
            seq / par.max(1e-9)
        )
        .unwrap();
        eprintln!(
            "[perf_smoke] {name}: {seq:.2}s @1 thread, {par:.2}s @{threads} -> {:.2}x",
            seq / par.max(1e-9)
        );
    }
    json.push_str("  },\n");
    // Enforce only when the parallel leg actually ran >= 4 wide: a
    // RAYON_NUM_THREADS cap below 4 (or a small machine) makes the
    // speedup unearnable, so the gate must no-op there.
    writeln!(
        json,
        "  \"gate\": {{\"min_speedup\": 1.5, \"enforced\": {}}}",
        cores >= 4 && threads >= 4
    )
    .unwrap();
    json.push_str("}\n");
    let path = out_dir.join("BENCH_par.json");
    std::fs::write(&path, &json).expect("write BENCH_par.json");
    eprintln!("[perf_smoke] wrote {}", path.display());
}
