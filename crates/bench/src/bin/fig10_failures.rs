//! Regenerates **Fig. 10**: graceful degradation under failures, in two
//! modes selected by `--mode`:
//!
//! * `--mode board` (default) — the paper's analytic allocation sweep:
//!   utilization of working boards under random *board* failures, for the
//!   small and large Hx2/Hx4 meshes, with jobs allocated sorted and in
//!   arrival order.
//! * `--mode routed` — the simulated cable sweep the failure-aware
//!   routers unlock: random failed *cables* (connectivity-preserving) on
//!   every baseline topology, with alltoall traffic routed around the
//!   dead links by the simulator, reporting sustained utilization versus
//!   the number of failed cables. Runs on both engines unless `--engine`
//!   picks one; `--csv PATH` records the per-draw samples.

use hammingmesh::hxsim::EngineKind;
use hammingmesh::prelude::*;
use hxbench::{header, timed, HarnessArgs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

fn main() {
    let args = HarnessArgs::parse();
    match args.mode.as_deref() {
        None | Some("board") => board_mode(&args),
        Some("routed") => routed_mode(&args),
        Some(other) => {
            eprintln!("unknown --mode {other:?} (expected \"board\" or \"routed\")");
            std::process::exit(2);
        }
    }
}

/// The paper's analytic Fig. 10: allocator utilization vs failed boards.
fn board_mode(args: &HarnessArgs) {
    use hammingmesh::hxalloc::experiments::fig10_failures;
    let traces = args.traces.unwrap_or(if args.full { 200 } else { 40 });

    let meshes: &[(&str, usize, usize, &[usize])] = &[
        ("Hx2Small (16x16)", 16, 16, &[0, 10, 20, 30, 40]),
        ("Hx4Small (8x8)", 8, 8, &[0, 10, 20, 30, 40]),
        ("Hx2Large (64x64)", 64, 64, &[0, 25, 50, 75, 100]),
        ("Hx4Large (32x32)", 32, 32, &[0, 25, 50, 75, 100]),
    ];

    header(&format!(
        "Fig. 10 — utilization vs failed boards, {traces} traces"
    ));
    for &(label, x, y, failures) in meshes {
        if !args.full && x == 64 {
            continue; // large Hx2 sweep is slow at default settings
        }
        for sorted in [false, true] {
            println!(
                "\n{label} ({} jobs):",
                if sorted { "sorted" } else { "unsorted" }
            );
            println!(
                "{:>10} {:>8} {:>8} {:>8}",
                "failures", "mean%", "med%", "p1%"
            );
            for &f in failures {
                let d = timed(&format!("{label} f={f}"), || {
                    fig10_failures(x, y, f, traces, sorted, args.seed)
                });
                println!(
                    "{:>10} {:>7.1} {:>7.1} {:>7.1}",
                    f,
                    d.mean() * 100.0,
                    d.median() * 100.0,
                    d.percentile(0.01) * 100.0
                );
            }
        }
    }
    println!("\nPaper: median utilization of working boards >70% in almost all cases.");
}

/// The routed cable-failure sweep: alltoall utilization vs failed cables
/// on every baseline topology, routing around the dead links.
fn routed_mode(args: &HarnessArgs) {
    let (n, bytes, window) = if args.full {
        (256usize, 256u64 << 10, 2u32)
    } else {
        (64usize, 32u64 << 10, 2u32)
    };
    let traces = args.traces.unwrap_or(if args.full { 5 } else { 3 });
    let sweep: &[usize] = if args.full {
        &[0, 4, 8, 16, 32]
    } else {
        &[0, 1, 2, 4, 8]
    };
    let engines: Vec<EngineKind> = match args.engine {
        Some(e) => vec![e],
        None => EngineKind::all().to_vec(),
    };
    let topologies = [
        TopologyChoice::FatTree,
        TopologyChoice::Dragonfly,
        TopologyChoice::HyperX,
        TopologyChoice::Hx2Mesh,
        TopologyChoice::Torus,
    ];

    header(&format!(
        "Fig. 10 (routed) — alltoall utilization vs failed cables, \
         {n} endpoints, {}/pair, {traces} draws",
        hxbench::fmt_bytes(bytes)
    ));
    let mut csv = String::from("topology,engine,failed_cables,draw,bw_fraction,sim_ps,clean\n");
    for choice in topologies {
        // One network per topology; each draw injects its failure set and
        // repairs it afterwards (fail_link/restore_link round-trips are
        // exact, see tests/fault_injection.rs), so nothing is rebuilt.
        let mut net = choice.build_scaled(n);
        let cables = net.topo.cables();
        println!(
            "\n{} ({} endpoints, {} cables):",
            net.name,
            net.endpoints.len(),
            cables.len()
        );
        print!("{:>8}", "failed");
        for e in &engines {
            print!(" {:>9}", format!("{e}%"));
        }
        println!();
        for &f in sweep {
            let mut means = Vec::new();
            for &engine in &engines {
                let mut sum = 0.0;
                for t in 0..traces {
                    let mut rng = StdRng::seed_from_u64(
                        args.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    let got = net.fail_random_cables(f, &mut rng);
                    assert_eq!(got, f, "{}: could only fail {got}/{f} cables", net.name);
                    let m = timed(&format!("{} f={f} t={t} {engine}", net.name), || {
                        experiments::alltoall_bandwidth_on(&net, bytes, window, engine)
                    });
                    assert!(
                        m.clean,
                        "{} with {f} failed cables did not deliver all traffic ({engine})",
                        net.name
                    );
                    sum += m.bw_fraction;
                    writeln!(
                        csv,
                        "{},{engine},{f},{t},{:.4},{},{}",
                        net.name, m.bw_fraction, m.time_ps, m.clean
                    )
                    .unwrap();
                    for &(cn, cp) in &cables {
                        net.topo.restore_link(cn, cp);
                    }
                    assert_eq!(net.topo.count_failed_links(), 0);
                }
                means.push(sum / traces as f64);
            }
            print!("{f:>8}");
            for m in &means {
                print!(" {:>9.1}", m * 100.0);
            }
            println!();
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).expect("write routed-mode CSV");
        eprintln!("[fig10_failures] wrote {}", path.display());
    }
    println!(
        "\nPaper: HammingMesh degrades gracefully under failures; with \
         failure-aware routing every baseline now completes the sweep too."
    );
}
