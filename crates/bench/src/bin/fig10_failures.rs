//! Regenerates **Fig. 10**: graceful degradation under failures, in two
//! modes selected by `--mode`:
//!
//! * `--mode board` (default) — the paper's analytic allocation sweep:
//!   utilization of working boards under random *board* failures, for the
//!   small and large Hx2/Hx4 meshes, with jobs allocated sorted and in
//!   arrival order. This mode sweeps the allocator, not the simulator, so
//!   it stays hand-rolled here.
//! * `--mode routed` — the simulated cable sweep the failure-aware
//!   routers unlock, driven by the `specs/fig10_routed.toml` scenario:
//!   random failed *cables* (connectivity-preserving) on every baseline
//!   topology, with alltoall traffic routed around the dead links by the
//!   simulator. Runs on both engines unless `--engine` picks one;
//!   `--traces N` overrides the number of random draws per sweep point
//!   and `--csv PATH` records the per-draw samples.

use hxbench::{header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    match args.mode.as_deref() {
        None | Some("board") => board_mode(&args),
        Some("routed") => {
            hxbench::run_spec(include_str!("../../../../specs/fig10_routed.toml"), &args)
        }
        Some(other) => {
            eprintln!("unknown --mode {other:?} (expected \"board\" or \"routed\")");
            std::process::exit(2);
        }
    }
}

/// The paper's analytic Fig. 10: allocator utilization vs failed boards.
fn board_mode(args: &HarnessArgs) {
    use hammingmesh::hxalloc::experiments::fig10_failures;
    let traces = args.traces.unwrap_or(if args.full { 200 } else { 40 });

    let meshes: &[(&str, usize, usize, &[usize])] = &[
        ("Hx2Small (16x16)", 16, 16, &[0, 10, 20, 30, 40]),
        ("Hx4Small (8x8)", 8, 8, &[0, 10, 20, 30, 40]),
        ("Hx2Large (64x64)", 64, 64, &[0, 25, 50, 75, 100]),
        ("Hx4Large (32x32)", 32, 32, &[0, 25, 50, 75, 100]),
    ];

    header(&format!(
        "Fig. 10 — utilization vs failed boards, {traces} traces"
    ));
    for &(label, x, y, failures) in meshes {
        if !args.full && x == 64 {
            continue; // large Hx2 sweep is slow at default settings
        }
        for sorted in [false, true] {
            println!(
                "\n{label} ({} jobs):",
                if sorted { "sorted" } else { "unsorted" }
            );
            println!(
                "{:>10} {:>8} {:>8} {:>8}",
                "failures", "mean%", "med%", "p1%"
            );
            for &f in failures {
                let d = timed(&format!("{label} f={f}"), || {
                    fig10_failures(x, y, f, traces, sorted, args.seed)
                });
                println!(
                    "{:>10} {:>7.1} {:>7.1} {:>7.1}",
                    f,
                    d.mean() * 100.0,
                    d.median() * 100.0,
                    d.percentile(0.01) * 100.0
                );
            }
        }
    }
    println!("\nPaper: median utilization of working boards >70% in almost all cases.");
}
