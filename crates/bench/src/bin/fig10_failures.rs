//! Regenerates **Fig. 10**: graceful degradation under failures, in two
//! modes selected by `--mode`:
//!
//! * `--mode board` (default) — the paper's analytic allocation sweep:
//!   utilization of working boards under random *board* failures, for the
//!   small and large Hx2/Hx4 meshes, with jobs allocated sorted and in
//!   arrival order.
//! * `--mode routed` — the simulated cable sweep the failure-aware
//!   routers unlock: random failed *cables* (connectivity-preserving) on
//!   every baseline topology, with alltoall traffic routed around the
//!   dead links by the simulator, reporting sustained utilization versus
//!   the number of failed cables. Runs on both engines unless `--engine`
//!   picks one; `--csv PATH` records the per-draw samples.

use hammingmesh::hxsim::EngineKind;
use hammingmesh::prelude::*;
use hxbench::{header, timed, HarnessArgs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::fmt::Write as _;

fn main() {
    let args = HarnessArgs::parse();
    match args.mode.as_deref() {
        None | Some("board") => board_mode(&args),
        Some("routed") => routed_mode(&args),
        Some(other) => {
            eprintln!("unknown --mode {other:?} (expected \"board\" or \"routed\")");
            std::process::exit(2);
        }
    }
}

/// The paper's analytic Fig. 10: allocator utilization vs failed boards.
fn board_mode(args: &HarnessArgs) {
    use hammingmesh::hxalloc::experiments::fig10_failures;
    let traces = args.traces.unwrap_or(if args.full { 200 } else { 40 });

    let meshes: &[(&str, usize, usize, &[usize])] = &[
        ("Hx2Small (16x16)", 16, 16, &[0, 10, 20, 30, 40]),
        ("Hx4Small (8x8)", 8, 8, &[0, 10, 20, 30, 40]),
        ("Hx2Large (64x64)", 64, 64, &[0, 25, 50, 75, 100]),
        ("Hx4Large (32x32)", 32, 32, &[0, 25, 50, 75, 100]),
    ];

    header(&format!(
        "Fig. 10 — utilization vs failed boards, {traces} traces"
    ));
    for &(label, x, y, failures) in meshes {
        if !args.full && x == 64 {
            continue; // large Hx2 sweep is slow at default settings
        }
        for sorted in [false, true] {
            println!(
                "\n{label} ({} jobs):",
                if sorted { "sorted" } else { "unsorted" }
            );
            println!(
                "{:>10} {:>8} {:>8} {:>8}",
                "failures", "mean%", "med%", "p1%"
            );
            for &f in failures {
                let d = timed(&format!("{label} f={f}"), || {
                    fig10_failures(x, y, f, traces, sorted, args.seed)
                });
                println!(
                    "{:>10} {:>7.1} {:>7.1} {:>7.1}",
                    f,
                    d.mean() * 100.0,
                    d.median() * 100.0,
                    d.percentile(0.01) * 100.0
                );
            }
        }
    }
    println!("\nPaper: median utilization of working boards >70% in almost all cases.");
}

/// The routed cable-failure sweep: alltoall utilization vs failed cables
/// on every baseline topology, routing around the dead links.
fn routed_mode(args: &HarnessArgs) {
    let (n, bytes, window) = if args.full {
        (256usize, 256u64 << 10, 2u32)
    } else {
        (64usize, 32u64 << 10, 2u32)
    };
    let traces = args.traces.unwrap_or(if args.full { 5 } else { 3 });
    let sweep: &[usize] = if args.full {
        &[0, 4, 8, 16, 32]
    } else {
        &[0, 1, 2, 4, 8]
    };
    let engines: Vec<EngineKind> = match args.engine {
        Some(e) => vec![e],
        None => EngineKind::all().to_vec(),
    };
    let topologies = [
        TopologyChoice::FatTree,
        TopologyChoice::Dragonfly,
        TopologyChoice::HyperX,
        TopologyChoice::Hx2Mesh,
        TopologyChoice::Torus,
    ];

    header(&format!(
        "Fig. 10 (routed) — alltoall utilization vs failed cables, \
         {n} endpoints, {}/pair, {traces} draws",
        hxbench::fmt_bytes(bytes)
    ));
    // Every (topology, failures, engine, draw) cell is an independent
    // simulation: each builds its own network and failure set (seeded per
    // draw, so the sets are identical at any thread count) and the whole
    // grid runs on the thread pool. Results come back in grid order, so
    // the printed table and the CSV are byte-identical to a sequential
    // run.
    let mut cells: Vec<(TopologyChoice, usize, EngineKind, usize)> = Vec::new();
    for &choice in &topologies {
        for &f in sweep {
            for &engine in &engines {
                for t in 0..traces {
                    cells.push((choice, f, engine, t));
                }
            }
        }
    }
    let seed = args.seed;
    let results: Vec<(f64, u64, bool)> = cells
        .par_iter()
        .map(|&(choice, f, engine, t)| {
            let mut net = choice.build_scaled(n);
            let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let got = net.fail_random_cables(f, &mut rng);
            assert_eq!(got, f, "{}: could only fail {got}/{f} cables", net.name);
            let m = experiments::alltoall_bandwidth_on(&net, bytes, window, engine);
            assert!(
                m.clean,
                "{} with {f} failed cables did not deliver all traffic ({engine})",
                net.name
            );
            (m.bw_fraction, m.time_ps, m.clean)
        })
        .collect();

    let mut csv = String::from("topology,engine,failed_cables,draw,bw_fraction,sim_ps,clean\n");
    let mut cell = 0usize;
    for choice in topologies {
        let probe = choice.build_scaled(n);
        println!(
            "\n{} ({} endpoints, {} cables):",
            probe.name,
            probe.endpoints.len(),
            probe.topo.cables().len()
        );
        print!("{:>8}", "failed");
        for e in &engines {
            print!(" {:>9}", format!("{e}%"));
        }
        println!();
        for &f in sweep {
            let mut means = Vec::new();
            for &engine in &engines {
                let mut sum = 0.0;
                for t in 0..traces {
                    debug_assert_eq!(cells[cell], (choice, f, engine, t));
                    let (bw_fraction, time_ps, clean) = results[cell];
                    cell += 1;
                    sum += bw_fraction;
                    writeln!(
                        csv,
                        "{},{engine},{f},{t},{bw_fraction:.4},{time_ps},{clean}",
                        probe.name
                    )
                    .unwrap();
                }
                means.push(sum / traces as f64);
            }
            print!("{f:>8}");
            for m in &means {
                print!(" {:>9.1}", m * 100.0);
            }
            println!();
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).expect("write routed-mode CSV");
        eprintln!("[fig10_failures] wrote {}", path.display());
    }
    println!(
        "\nPaper: HammingMesh degrades gracefully under failures; with \
         failure-aware routing every baseline now completes the sweep too."
    );
}
