//! Regenerates **Fig. 16**: the two edge-disjoint Hamiltonian cycles for
//! the 4x4, 8x4, 9x3 and 16x8 tori, drawn as ASCII (G = green-only edge,
//! R = red-only edge at each node's east/south connection).

use hammingmesh::hxcollect::rings::{
    disjoint_hamiltonian_cycles, validate_cycle, validate_disjoint,
};
use hxbench::{header, HarnessArgs};
use std::collections::BTreeSet;

fn main() {
    // No simulation here, but parse for the uniform figure-binary CLI.
    let _args = HarnessArgs::parse();
    for (r, c) in [(4usize, 4usize), (8, 4), (9, 3), (16, 8)] {
        header(&format!(
            "Fig. 16 — disjoint Hamiltonian cycles on {r}x{c} torus"
        ));
        let (green, red) = disjoint_hamiltonian_cycles(r, c).expect("feasible size");
        validate_cycle(&green, r, c).unwrap();
        validate_cycle(&red, r, c).unwrap();
        validate_disjoint(&green, &red).unwrap();

        let edge_set = |cy: &[(usize, usize)]| -> BTreeSet<((usize, usize), (usize, usize))> {
            (0..cy.len())
                .map(|i| {
                    let (a, b) = (cy[i], cy[(i + 1) % cy.len()]);
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
                .collect()
        };
        let ge = edge_set(&green);
        let re = edge_set(&red);
        let mark = |a: (usize, usize), b: (usize, usize)| -> char {
            let e = if a <= b { (a, b) } else { (b, a) };
            if ge.contains(&e) {
                'G'
            } else if re.contains(&e) {
                'R'
            } else {
                ' '
            }
        };
        // Draw the grid: each cell shows its east and south edge color.
        for i in 0..r {
            let mut row1 = String::new();
            let mut row2 = String::new();
            for j in 0..c {
                row1.push('o');
                row1.push(mark((i, j), (i, (j + 1) % c)));
            }
            for j in 0..c {
                row2.push(mark((i, j), ((i + 1) % r, j)));
                row2.push(' ');
            }
            println!("{row1}");
            println!("{row2}");
        }
        println!(
            "green len {}, red len {}, edges disjoint, together covering all {} torus edges",
            green.len(),
            red.len(),
            2 * r * c
        );
    }
}
