//! Regenerates **Fig. 7**: the cumulative distribution of the proportion
//! of boards allocated to jobs of a given size, for the synthetic stand-in
//! of the Alibaba MLaaS trace (DESIGN.md substitution #3) and for the
//! mixes actually sampled onto a cluster.

use hammingmesh::hxalloc::workload::{JobMix, JobSizeDistribution};
use hxbench::{header, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let cluster = if args.full { 4096 } else { 1024 };
    let dist = JobSizeDistribution::default();

    header("Fig. 7 — board-weighted job-size CDF (synthetic Alibaba stand-in)");
    println!("{:>10} {:>12} {:>12}", "size", "original", "sampled");
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 100, 128, 256, 512, 1024];
    // "Original": the distribution itself; "sampled": mixes drawn to fill
    // the cluster (truncation changes the tail, as in the paper's figure).
    let traces = args.traces.unwrap_or(200);
    let cluster_dist = JobSizeDistribution::for_cluster(cluster);
    let mut sampled_sizes: Vec<usize> = Vec::new();
    for t in 0..traces {
        let mix = JobMix::draw(&cluster_dist, cluster, args.seed + t as u64);
        sampled_sizes.extend(mix.shapes.iter().map(|&(u, v)| u * v));
    }
    let total_boards: usize = sampled_sizes.iter().sum();
    for &s in &sizes {
        let original = dist.board_weighted_cdf(s, 100_000, args.seed);
        let sampled: usize = sampled_sizes.iter().filter(|&&x| x <= s).sum();
        println!(
            "{:>10} {:>11.1}% {:>11.1}%",
            s,
            original * 100.0,
            sampled as f64 / total_boards as f64 * 100.0
        );
    }
    println!(
        "\nPaper's calibration knee: ~39% of boards to jobs of <100 boards; ours at 100: {:.1}%",
        dist.board_weighted_cdf(100, 200_000, args.seed) * 100.0
    );
}
