//! Regenerates **Fig. 11**: alltoall bandwidth (share of injection) versus
//! message size on the small-cluster topologies. The sweep itself lives in
//! `specs/fig11.toml`; this binary just binds it to the shared flag set.

fn main() {
    let args = hxbench::HarnessArgs::parse();
    hxbench::run_spec(include_str!("../../../../specs/fig11.toml"), &args);
}
