//! Regenerates **Fig. 11**: alltoall bandwidth (share of injection) versus
//! message size on the small-cluster topologies.

use hammingmesh::prelude::*;
use hxbench::{fmt_bytes, header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    // Quick scale is 64 endpoints (the qualitative cut-bandwidth ordering
    // is already visible there), but the sizes span the paper's full
    // Fig. 11 axis up to 1 MiB: the flow engine's cost is independent of
    // message size, so quick mode no longer has to stop at 128 KiB the
    // way the packet engine forced it to (`--engine packet` on this sweep
    // is the perf-smoke baseline recorded in BENCH_sim.json).
    let n = if args.full { 1024 } else { 64 };
    let sizes: &[u64] = if args.full {
        &[8 << 10, 32 << 10, 128 << 10, 512 << 10, 1 << 20]
    } else {
        &[32 << 10, 256 << 10, 1 << 20]
    };

    header(&format!(
        "Fig. 11 — alltoall bandwidth vs message size ({n} endpoints, {engine} engine)"
    ));
    print!("{:<24}", "topology");
    for &s in sizes {
        print!(" {:>10}", fmt_bytes(s));
    }
    println!();
    for choice in TopologyChoice::all() {
        let net = if args.full {
            choice.build_small()
        } else {
            choice.build_scaled(n)
        };
        print!("{:<24}", choice.name());
        for &s in sizes {
            let m = timed(&format!("{} {}", choice.name(), fmt_bytes(s)), || {
                experiments::alltoall_bandwidth_on(&net, s, 2, engine)
            });
            print!(
                " {:>9.1}%{}",
                m.bw_fraction * 100.0,
                if m.clean { "" } else { "!" }
            );
        }
        println!();
    }
    println!(
        "\nExpected shape (paper): fat tree ~100%, HyperX ~90%, Hx2Mesh ~25% (cut 1/2a=1/4),\n\
         Hx4Mesh ~12% (1/8), torus worst; small clusters exceed the cut bound slightly\n\
         because not all traffic crosses the bisection."
    );
}
