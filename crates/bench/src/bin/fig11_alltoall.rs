//! Regenerates **Fig. 11**: alltoall bandwidth (share of injection) versus
//! message size on the small-cluster topologies.

use hammingmesh::prelude::*;
use hxbench::{fmt_bytes, header, timed, HarnessArgs};
use rayon::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    // Quick scale is 64 endpoints (the qualitative cut-bandwidth ordering
    // is already visible there), but the sizes span the paper's full
    // Fig. 11 axis up to 1 MiB: the flow engine's cost is independent of
    // message size, so quick mode no longer has to stop at 128 KiB the
    // way the packet engine forced it to (`--engine packet` on this sweep
    // is the perf-smoke baseline recorded in BENCH_sim.json).
    let n = if args.full { 1024 } else { 64 };
    let sizes: &[u64] = if args.full {
        &[8 << 10, 32 << 10, 128 << 10, 512 << 10, 1 << 20]
    } else {
        &[32 << 10, 256 << 10, 1 << 20]
    };

    header(&format!(
        "Fig. 11 — alltoall bandwidth vs message size ({n} endpoints, {engine} engine)"
    ));
    print!("{:<24}", "topology");
    for &s in sizes {
        print!(" {:>10}", fmt_bytes(s));
    }
    println!();
    // The full (topology x size) grid of independent simulations runs on
    // the thread pool; cells come back in grid order, so the table is
    // identical at any thread count.
    let nets: Vec<Network> = TopologyChoice::all()
        .into_iter()
        .map(|choice| {
            if args.full {
                choice.build_small()
            } else {
                choice.build_scaled(n)
            }
        })
        .collect();
    let grid: Vec<(usize, u64)> = (0..nets.len())
        .flat_map(|ni| sizes.iter().map(move |&s| (ni, s)))
        .collect();
    let cells: Vec<Measurement> = timed("fig11 grid", || {
        grid.par_iter()
            .map(|&(ni, s)| experiments::alltoall_bandwidth_on(&nets[ni], s, 2, engine))
            .collect()
    });
    for (ni, choice) in TopologyChoice::all().into_iter().enumerate() {
        print!("{:<24}", choice.name());
        for (si, _) in sizes.iter().enumerate() {
            let m = &cells[ni * sizes.len() + si];
            print!(
                " {:>9.1}%{}",
                m.bw_fraction * 100.0,
                if m.clean { "" } else { "!" }
            );
        }
        println!();
    }
    println!(
        "\nExpected shape (paper): fat tree ~100%, HyperX ~90%, Hx2Mesh ~25% (cut 1/2a=1/4),\n\
         Hx4Mesh ~12% (1/8), torus worst; small clusters exceed the cut bound slightly\n\
         because not all traffic crosses the bisection."
    );
}
