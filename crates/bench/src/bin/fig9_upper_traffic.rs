//! Regenerates **Fig. 9**: the fraction of alltoall / allreduce traffic
//! that crosses the upper levels of the line fat trees, for the large
//! HxMesh configurations under each allocation strategy.

use hammingmesh::hxalloc::experiments::{fig8_strategies, fig9_upper_traffic};
use hxbench::{header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let traces = args.traces.unwrap_or(if args.full { 200 } else { 30 });

    let meshes: &[(&str, usize, usize)] = &[
        ("Large 64x64 Hx2Mesh", 64, 64),
        ("Large 32x32 Hx4Mesh", 32, 32),
    ];

    header(&format!(
        "Fig. 9 — upper-layer traffic share, {traces} traces"
    ));
    for &(label, x, y) in meshes {
        println!("\n{label}:");
        println!(
            "{:<44} {:>12} {:>12}",
            "strategy", "alltoall%", "allreduce%"
        );
        for strat in fig8_strategies() {
            let (a2a, ar) = timed(strat.name, || {
                fig9_upper_traffic(x, y, traces, strat, args.seed)
            });
            println!(
                "{:<44} {:>11.1} {:>11.1}",
                strat.name,
                a2a.mean() * 100.0,
                ar.mean() * 100.0
            );
        }
    }
    println!(
        "\nPaper: alltoall <50% (justifying 2:1 tapering), allreduce <15%; locality\n\
         drops Hx4Mesh alltoall below 25%."
    );
}
