//! Regenerates **Fig. 13** (large clusters) / **Fig. 17** (small): global
//! allreduce bandwidth for the "rings" (two bidirectional disjoint
//! Hamiltonian rings) and "torus" (2D reduce-scatter/allreduce/allgather)
//! algorithms versus message size, across topologies.

use hammingmesh::prelude::*;
use hxbench::{fmt_bytes, header, timed, HarnessArgs};
use rayon::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    // Quick scale is 64 endpoints / <=4 MiB: the former 256-endpoint,
    // 16 MiB quick config ran for minutes in the packet simulator, against
    // the harness contract that quick mode finishes in seconds.
    let n = if args.full { 1024 } else { 64 };
    let sizes: &[u64] = if args.full {
        &[256 << 10, 1 << 20, 8 << 20, 64 << 20]
    } else {
        &[256 << 10, 1 << 20, 4 << 20]
    };

    header(&format!(
        "Fig. 13/17 — allreduce bandwidth (share of peak), {n} endpoints, {engine} engine"
    ));
    // The (algorithm x topology x size) grid runs on the thread pool;
    // cells return in grid order, so the tables are identical at any
    // thread count.
    let algos = [AllreduceAlgo::DisjointRings, AllreduceAlgo::Torus2D];
    let nets: Vec<Network> = TopologyChoice::all()
        .into_iter()
        .map(|choice| {
            if args.full {
                choice.build_small()
            } else {
                choice.build_scaled(n)
            }
        })
        .collect();
    let grid: Vec<(AllreduceAlgo, usize, u64)> = algos
        .iter()
        .flat_map(|&algo| {
            (0..nets.len()).flat_map(move |ni| sizes.iter().map(move |&s| (algo, ni, s)))
        })
        .collect();
    let cells: Vec<Measurement> = timed("fig13 grid", || {
        grid.par_iter()
            .map(|&(algo, ni, s)| experiments::allreduce_bandwidth_on(&nets[ni], algo, s, engine))
            .collect()
    });
    let mut cell = 0usize;
    for algo in algos {
        println!("\nalgorithm: {algo:?}");
        print!("{:<24}", "topology");
        for &s in sizes {
            print!(" {:>10}", fmt_bytes(s));
        }
        println!();
        for (ni, choice) in TopologyChoice::all().into_iter().enumerate() {
            print!("{:<24}", choice.name());
            for &s in sizes {
                // The print loops must mirror the grid construction order.
                debug_assert_eq!(grid[cell], (algo, ni, s));
                let m = &cells[cell];
                cell += 1;
                print!(
                    " {:>9.1}%{}",
                    m.bw_fraction * 100.0,
                    if m.clean { "" } else { "!" }
                );
            }
            println!();
        }
    }
    println!(
        "\nExpected shape (paper): all topologies approach full allreduce bandwidth with\n\
         the rings algorithm at large messages (Table II: 91-99%); the torus algorithm\n\
         is ~2x less bandwidth-efficient but wins at small sizes (√p latency)."
    );
}
