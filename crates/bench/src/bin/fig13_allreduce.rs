//! Regenerates **Fig. 13** (large clusters) / **Fig. 17** (small): global
//! allreduce bandwidth for the "rings" (two bidirectional disjoint
//! Hamiltonian rings) and "torus" (2D reduce-scatter/allreduce/allgather)
//! algorithms versus message size, across topologies.

use hammingmesh::prelude::*;
use hxbench::{fmt_bytes, header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    // Quick scale is 64 endpoints / <=4 MiB: the former 256-endpoint,
    // 16 MiB quick config ran for minutes in the packet simulator, against
    // the harness contract that quick mode finishes in seconds.
    let n = if args.full { 1024 } else { 64 };
    let sizes: &[u64] = if args.full {
        &[256 << 10, 1 << 20, 8 << 20, 64 << 20]
    } else {
        &[256 << 10, 1 << 20, 4 << 20]
    };

    header(&format!(
        "Fig. 13/17 — allreduce bandwidth (share of peak), {n} endpoints, {engine} engine"
    ));
    for algo in [AllreduceAlgo::DisjointRings, AllreduceAlgo::Torus2D] {
        println!("\nalgorithm: {algo:?}");
        print!("{:<24}", "topology");
        for &s in sizes {
            print!(" {:>10}", fmt_bytes(s));
        }
        println!();
        for choice in TopologyChoice::all() {
            let net = if args.full {
                choice.build_small()
            } else {
                choice.build_scaled(n)
            };
            print!("{:<24}", choice.name());
            for &s in sizes {
                let m = timed(
                    &format!("{} {:?} {}", choice.name(), algo, fmt_bytes(s)),
                    || experiments::allreduce_bandwidth_on(&net, algo, s, engine),
                );
                print!(
                    " {:>9.1}%{}",
                    m.bw_fraction * 100.0,
                    if m.clean { "" } else { "!" }
                );
            }
            println!();
        }
    }
    println!(
        "\nExpected shape (paper): all topologies approach full allreduce bandwidth with\n\
         the rings algorithm at large messages (Table II: 91-99%); the torus algorithm\n\
         is ~2x less bandwidth-efficient but wins at small sizes (√p latency)."
    );
}
