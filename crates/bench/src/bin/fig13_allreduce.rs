//! Regenerates **Fig. 13** (large clusters) / **Fig. 17** (small): global
//! allreduce bandwidth for the "rings" (two bidirectional disjoint
//! Hamiltonian rings) and "torus" (2D reduce-scatter/allreduce/allgather)
//! algorithms versus message size, across topologies. The sweep lives in
//! `specs/fig13.toml`; this binary just binds it to the shared flag set.

fn main() {
    let args = hxbench::HarnessArgs::parse();
    hxbench::run_spec(include_str!("../../../../specs/fig13.toml"), &args);
}
