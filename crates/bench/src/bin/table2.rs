//! Regenerates **Table II**: cost, diameter, and (with `--simulate` or by
//! default at reduced scale) the global-alltoall and allreduce bandwidth
//! columns for all eight topologies.
//!
//! Costs and diameters are exact (closed forms from App. C/E); bandwidths
//! come from the packet simulator on scaled topologies (256 endpoints by
//! default, the paper-size 1,024-endpoint "small cluster" with `--full`).

use hammingmesh::prelude::*;
use hxbench::{fmt_bytes, header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();

    header("Table II — capital expenditure and diameter (closed forms)");
    println!(
        "{:<24} {:>10} {:>10} {:>6}   {:>10} {:>10} {:>6}",
        "topology", "cost[M$]", "paper", "diam", "cost[M$]", "paper", "diam"
    );
    println!(
        "{:<24} {:>28}   {:>28}",
        "", "— small cluster —", "— large cluster —"
    );
    let small = hammingmesh::hxcost::table2_entries(ClusterSize::Small);
    let large = hammingmesh::hxcost::table2_entries(ClusterSize::Large);
    for (s, l) in small.iter().zip(&large) {
        println!(
            "{:<24} {:>10.1} {:>10.1} {:>6}   {:>10.1} {:>10.1} {:>6}",
            s.name,
            s.cost_musd(),
            s.paper_cost_musd,
            s.diameter,
            l.cost_musd(),
            l.paper_cost_musd,
            l.diameter
        );
    }

    // Quick scale is 64 endpoints / 128 KiB base message: 256 endpoints of
    // packet simulation across 8 topologies takes minutes (the harness
    // contract is "quick finishes in seconds").
    let (n, msg) = if args.full {
        (1024usize, 1u64 << 20)
    } else {
        (64, 128 << 10)
    };
    header(&format!(
        "Table II — simulated bandwidths ({n} endpoints, {} messages)",
        fmt_bytes(msg)
    ));
    println!(
        "{:<24} {:>14} {:>14}",
        "topology", "glob.BW[%inj]", "ared.BW[%peak]"
    );
    for choice in TopologyChoice::all() {
        let net = if args.full {
            choice.build_small()
        } else {
            choice.build_scaled(n)
        };
        let a2a = timed(&format!("{} alltoall", choice.name()), || {
            experiments::alltoall_bandwidth(&net, msg / 16, 2)
        });
        let ar = timed(&format!("{} allreduce", choice.name()), || {
            experiments::allreduce_bandwidth(&net, AllreduceAlgo::DisjointRings, msg * 32)
        });
        println!(
            "{:<24} {:>13.1}% {:>13.1}%{}",
            choice.name(),
            a2a.bw_fraction * 100.0,
            ar.bw_fraction * 100.0,
            if a2a.clean && ar.clean {
                ""
            } else {
                "  [INCOMPLETE RUN]"
            }
        );
    }
    println!(
        "\nNote: paper values (small cluster) for reference — glob.BW: 99.9/51.2/25.7/62.9/\n\
         91.6/25.4/11.3/2.0; ared.BW: 98.9/98.9/98.9/98.8/98.1/98.3/98.4/98.1. Scaled-down\n\
         runs reproduce ordering and oversubscription ratios, not absolute percentages."
    );
}
