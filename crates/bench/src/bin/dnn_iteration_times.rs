//! Regenerates the **§V-B iteration-time numbers** (e.g. GPT-3: 34.8 ms on
//! a nonblocking fat tree, 41.7 ms on Hx2Mesh, 72.2 ms on the torus) with
//! the α-β model, and cross-checks a scaled-down GPT-3 iteration on the
//! packet simulator.

use hammingmesh::hxcollect::simapp::ScheduleApp;
use hammingmesh::hxmodels::analytic::{estimate_iteration, TopologyPerf};
use hammingmesh::hxmodels::schedule::{build_iteration, ScaledConfig};
use hammingmesh::hxmodels::DnnWorkload;
use hammingmesh::prelude::*;
use hxbench::{header, timed, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let perfs = TopologyPerf::table2_small();

    header("§V-B — modeled iteration times [ms]");
    print!("{:<24}", "topology");
    for w in DnnWorkload::all() {
        print!(" {:>10}", w.name);
    }
    println!();
    for t in &perfs {
        print!("{:<24}", t.name);
        for w in DnnWorkload::all() {
            let e = estimate_iteration(&w, t);
            print!(" {:>9.1}ms", e.iteration_ms() * 1.0);
        }
        println!();
    }
    println!(
        "\nPaper iteration times (nonbl. FT / torus / Hx2 / Hx4):\n\
         ResNet 109.7/110.1/110.1/110.1; GPT-3 34.8/72.2/41.7/49.9;\n\
         GPT-3 MoE 52.2/73.8/58.3/63.3; DLRM 2.96/3.12/2.97/3.00 ms."
    );

    let engine = args.engine();
    header(&format!("scaled GPT-3 iteration on the {engine} simulator"));
    let w = DnnWorkload::gpt3();
    let mut cfg = ScaledConfig::fit(&w, if args.full { 64 } else { 16 });
    cfg.bytes_scale = if args.full { 0.01 } else { 0.002 };
    let sched = build_iteration(&w, &cfg);
    println!(
        "scale: D={} P={} O={} ({} ranks), {} ops",
        cfg.parallelism.d,
        cfg.parallelism.p,
        cfg.parallelism.o,
        cfg.parallelism.total(),
        sched.num_ops()
    );
    let nets: Vec<(&str, Network)> = vec![
        ("Hx2Mesh", HxMeshParams::square(2, 2).build()),
        (
            "2D torus",
            TorusParams {
                cols: 4,
                rows: 4,
                board: 2,
            }
            .build(),
        ),
        (
            "fat tree",
            FatTreeParams::scaled_nonblocking(16, 16).build(),
        ),
    ];
    for (name, net) in &nets {
        let mut app = ScheduleApp::new(&sched);
        let stats = timed(name, || {
            simulate(net, SimConfig::default(), engine, &mut app)
        });
        println!(
            "{:<10} iteration {:>8.3} ms  ({} events, clean={})",
            name,
            stats.finish_ps as f64 / 1e9,
            stats.events,
            stats.clean()
        );
    }
}
