//! Cluster-lifetime sweep: the `hxcluster` discrete-event simulator run
//! at several offered loads, reporting the cluster metrics the paper only
//! gestures at — per-job wait time and completion time, time-averaged
//! allocation fragmentation and utilization, and cluster-wide link
//! utilization — with cable fail/repair events advancing the failure
//! epoch *during* the run.
//!
//! Quick scale: an 8x8 Hx2Mesh (64 boards, 256 accelerators) and 40 jobs
//! per load point, seconds on the flow engine. `--full` grows the mesh to
//! 16x16 (256 boards, 1,024 accelerators) and 120 jobs. `--traces N`
//! overrides the job count, `--seed` the master seed, `--engine` the
//! backend (`flow` default; `packet` for spot-checks), `--csv PATH`
//! records per-job rows plus one summary row per load point — the output
//! is byte-for-byte reproducible for a fixed seed.
//!
//! `--mode in-situ` switches fail/repair handling from the frozen-epoch
//! re-rate to in-situ interrupted-iteration measurement: each event is
//! injected *mid-simulation* into the iteration every running job had in
//! flight, flows re-route inside the run, and the table gains a
//! `reroutes` column. The default path (no `--mode`) is untouched and
//! its CSV stays byte-identical.

use hammingmesh::hxalloc::workload::JobSizeDistribution;
use hammingmesh::hxcluster::{ClusterConfig, ClusterReport, ClusterSim};
use hammingmesh::hxnet::hammingmesh::HxMeshParams;
use hxbench::{header, HarnessArgs};
use rayon::prelude::*;

const MS: u64 = 1_000_000_000;

fn main() {
    let args = HarnessArgs::parse();
    let engine = args.engine();
    let in_situ = match args.mode.as_deref() {
        None => false,
        Some("in-situ") => true,
        Some(other) => {
            eprintln!("unknown mode {other:?} (cluster_sweep accepts --mode in-situ)");
            std::process::exit(2);
        }
    };
    let (side, num_jobs) = if args.full { (16, 120) } else { (8, 40) };
    let num_jobs = args.traces.unwrap_or(num_jobs);
    let mesh = HxMeshParams::square(2, side);
    let boards = mesh.x * mesh.y;

    // Offered load is steered by the interarrival gap: jobs train for
    // ~150 ms (40-120 iterations at ~1.8 ms) and average ~3 boards with
    // occasional half-cluster giants (max_boards = boards/2), so mean
    // gaps of 40/12/5 ms span a mostly-idle cluster to a saturating one
    // where jobs queue behind the giants.
    let loads: &[(&str, u64)] = &[("light", 40 * MS), ("medium", 12 * MS), ("heavy", 5 * MS)];

    let recovery = if in_situ {
        "in-situ mid-run cable fail/repair"
    } else {
        "mid-run cable fail/repair"
    };
    header(&format!(
        "Cluster sweep — {side}x{side} Hx2Mesh ({boards} boards), {num_jobs} jobs/load, \
         {engine} engine, {recovery}"
    ));
    let mut head = format!(
        "{:<8} {:>9} {:>10} {:>10} {:>8} {:>8} {:>9} {:>6} {:>7} {:>7}",
        "load",
        "makespan",
        "mean_wait",
        "mean_jct",
        "frag",
        "util",
        "link_util",
        "fails",
        "resims",
        "defrag"
    );
    if in_situ {
        head.push_str(&format!(" {:>8}", "reroutes"));
    }
    println!("{head}");

    // The load points are independent simulations: run them on the
    // thread pool, then emit every load level's rows strictly in load
    // order — per-load output is buffered so per-job rows and summaries
    // never interleave across loads, whatever the completion order.
    let reports: Vec<(&str, ClusterReport, f64)> = loads
        .par_iter()
        .map(|&(label, gap)| {
            // Telemetry for this load point — including every nested
            // iteration simulation — lands under a label derived from the
            // load name, so `--metrics-out`/`--trace-out` artifacts are
            // byte-identical at any thread count.
            let _tel_scope = hxtelemetry::collect::scope(&format!("load/{label}"));
            let cfg = ClusterConfig {
                mesh: mesh.clone(),
                num_jobs,
                mean_interarrival_ps: gap,
                size_dist: JobSizeDistribution {
                    max_boards: boards / 2,
                    ..JobSizeDistribution::for_cluster(boards)
                },
                engine,
                seed: args.seed,
                in_situ_failures: in_situ,
                ..ClusterConfig::quick()
            };
            #[allow(clippy::disallowed_methods)] // wall-clock progress chatter on stderr
            let t0 = std::time::Instant::now();
            let report = ClusterSim::new(cfg).run();
            (label, report, t0.elapsed().as_secs_f64())
        })
        .collect();

    let mut csv = String::from(ClusterReport::csv_header());
    csv.push('\n');
    for (label, report, wall_s) in &reports {
        eprintln!("[cluster_sweep {label}] {wall_s:.2}s");
        let mut row = format!(
            "{:<8} {:>8.1}ms {:>8.2}ms {:>8.2}ms {:>8.3} {:>8.3} {:>9.4} {:>6} {:>7} {:>7}",
            label,
            report.makespan_ps as f64 / MS as f64,
            report.mean_wait_ps() / MS as f64,
            report.mean_jct_ps() / MS as f64,
            report.frag_time_avg,
            report.util_time_avg,
            report.link_util,
            report.fail_events,
            report.resims,
            report.defrag_passes,
        );
        if in_situ {
            row.push_str(&format!(" {:>8}", report.flows_rerouted));
        }
        println!("{row}");
        report.write_csv(label, &mut csv);
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).expect("write cluster_sweep CSV");
        eprintln!("[cluster_sweep] wrote {}", path.display());
    }
    args.write_telemetry();
    println!(
        "\nExpected shape: waits are ~0 until the cluster saturates, then grow\n\
         sharply at heavy load while utilization climbs; blocked giants trigger\n\
         defrag re-packs; fail/repair epochs re-rate jobs without aborting them."
    );
}
