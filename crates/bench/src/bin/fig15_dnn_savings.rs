//! Regenerates **Fig. 15**: relative network-cost savings of Hx2Mesh and
//! Hx4Mesh versus the other topologies for the five DNN workloads
//! (savings = cost ratio x communication-overhead ratio, §V-B5).

use hammingmesh::hxmodels::analytic::{fig15_savings, TopologyPerf};
use hammingmesh::hxmodels::DnnWorkload;
use hxbench::{header, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let perfs = if args.full {
        TopologyPerf::table2_large()
    } else {
        TopologyPerf::table2_small()
    };
    let cluster = if args.full { "large" } else { "small" };

    for hx_name in ["Hx2Mesh", "Hx4Mesh"] {
        let hx = perfs.iter().find(|t| t.name == hx_name).unwrap().clone();
        header(&format!(
            "Fig. 15 — relative cost savings of {hx_name} ({cluster} cluster)"
        ));
        print!("{:<24}", "baseline");
        for w in DnnWorkload::all() {
            print!(" {:>10}", w.name);
        }
        println!();
        for base in &perfs {
            if base.name == hx_name {
                continue;
            }
            print!("{:<24}", base.name);
            for w in DnnWorkload::all() {
                let s = fig15_savings(&w, base, &hx);
                print!(" {:>9.1}x", s);
            }
            println!();
        }
    }
    println!(
        "\nPaper (small cluster, Hx2Mesh row 1 = vs nonblocking fat tree):\n\
         ResNet 3.7, GPT-3 1.4, GPT-3 MoE 0.8, CosmoFlow 2.5, DLRM 4.0;\n\
         Hx4Mesh vs nonblocking FT: 7.8, 1.5, 2.7, 3.0, 5.6. Shape to check: HxMeshes\n\
         save most on bandwidth-bound models (ResNet, DLRM), least on the\n\
         communication-intensive transformers; Hx4Mesh > Hx2Mesh savings."
    );
}
