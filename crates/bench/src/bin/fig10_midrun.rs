//! Regenerates the **Fig. 10 mid-run comparison**: frozen-failure vs
//! mid-flight-failure alltoall curves, driven by the
//! `specs/fig10_midrun.toml` scenario. Each sweep point draws one random
//! connectivity-preserving cable set and runs it both ways — frozen
//! before injection starts, and as in-run link-fail events at 5 µs with
//! traffic already in flight (flow engine: mid-run re-route and re-rate;
//! packet engine: drop plus timeout/reroute retransmission, see
//! `--retransmit`). `--engine` restricts the engine columns, `--traces N`
//! overrides the draws per sweep point, and `--csv PATH` records the
//! per-draw samples with a frozen/midrun `mode` column.

use hxbench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    hxbench::run_spec(include_str!("../../../../specs/fig10_midrun.toml"), &args)
}
