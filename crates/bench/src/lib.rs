//! Shared plumbing for the per-figure benchmark binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §3 for the index) and prints the same rows/series the paper
//! reports. By default they run at a reduced scale that finishes in
//! seconds; pass `--full` for the paper-scale configuration (hours).
//!
//! The simulation-sweep binaries (fig10 routed, fig11–fig14) are thin
//! wrappers over `hxserve` scenario specs under `specs/` — see
//! [`run_spec`]. The flag table is shared with the `hxserve` CLI
//! ([`hxserve::cli`]), so `--help` text and strict unknown-flag handling
//! (exit 2) cannot drift between the two entry points.

use hammingmesh::hxsim::EngineKind;
use hxserve::cli::{self, COMMON_FLAGS, HARNESS_FLAGS};
use std::time::Instant;

/// Parsed command line shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Run paper-scale sizes instead of the quick defaults.
    pub full: bool,
    /// Override trace/repetition counts.
    pub traces: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Simulation backend override (`--engine packet|flow`).
    pub engine: Option<EngineKind>,
    /// Figure-specific sub-mode (`--mode NAME`); binaries with a single
    /// mode ignore it. `fig10_failures` accepts `board` and `routed`.
    pub mode: Option<String>,
    /// Also write the printed table as CSV to this path (`--csv PATH`).
    pub csv: Option<std::path::PathBuf>,
    /// Write the deterministic metrics registry as JSON (`--metrics-out`).
    pub metrics_out: Option<std::path::PathBuf>,
    /// Write a Chrome trace-event JSON of the run (`--trace-out`).
    pub trace_out: Option<std::path::PathBuf>,
}

impl HarnessArgs {
    /// Parse the process arguments. Unknown flags and malformed values
    /// are hard errors (message on stderr, exit 2); `--help` prints the
    /// shared flag table and exits 0. A `--threads N` override is applied
    /// to the sweep pool immediately (flag > `RAYON_NUM_THREADS` env >
    /// all cores).
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let flags = match cli::parse_flags(&argv, &[COMMON_FLAGS, HARNESS_FLAGS]) {
            Ok((flags, positional)) => {
                if let Some(p) = positional.first() {
                    eprintln!("unexpected argument {p:?} (try --help)");
                    std::process::exit(2);
                }
                flags
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        let mut out = Self {
            full: false,
            traces: None,
            seed: 0xC0FFEE,
            engine: None,
            mode: None,
            csv: None,
            metrics_out: None,
            trace_out: None,
        };
        let fail = |msg: String| -> ! {
            eprintln!("{msg}");
            std::process::exit(2);
        };
        for (flag, value) in &flags {
            let value = value.as_deref().unwrap_or("");
            match flag.as_str() {
                "--help" => {
                    print!(
                        "{}",
                        cli::help_text("<figure binary> [options]", &[COMMON_FLAGS, HARNESS_FLAGS])
                    );
                    std::process::exit(0);
                }
                "--full" => out.full = true,
                "--traces" => match value.parse() {
                    Ok(n) => out.traces = Some(n),
                    Err(_) => fail(format!("--traces needs an integer, got {value:?}")),
                },
                "--seed" => match value.parse() {
                    Ok(s) => out.seed = s,
                    Err(_) => fail(format!("--seed needs an integer, got {value:?}")),
                },
                "--engine" => match value.parse() {
                    Ok(e) => out.engine = Some(e),
                    Err(msg) => fail(msg),
                },
                "--threads" => match value.parse::<usize>() {
                    Ok(n) if n > 0 => cli::apply_threads(n),
                    _ => fail(format!("--threads needs a positive integer, got {value:?}")),
                },
                "--rates" => match value.parse() {
                    Ok(m) => cli::apply_rates(m),
                    Err(msg) => fail(msg),
                },
                "--retransmit" => match value.parse() {
                    Ok(p) => cli::apply_retransmit(p),
                    Err(msg) => fail(msg),
                },
                "--mode" => out.mode = Some(value.to_string()),
                "--csv" => out.csv = Some(std::path::PathBuf::from(value)),
                "--metrics-out" => out.metrics_out = Some(std::path::PathBuf::from(value)),
                "--trace-out" => out.trace_out = Some(std::path::PathBuf::from(value)),
                other => fail(format!("unhandled flag {other:?}")),
            }
        }
        // Enable telemetry before any engine is constructed: engines cache
        // the channel flags at construction time.
        cli::apply_telemetry(out.metrics_out.as_deref(), out.trace_out.as_deref());
        out
    }

    /// Write the `--metrics-out` / `--trace-out` artifacts collected over
    /// the process. Figure binaries call this once, after all sweeps.
    pub fn write_telemetry(&self) {
        if let Err(e) = cli::write_telemetry(self.metrics_out.as_deref(), self.trace_out.as_deref())
        {
            eprintln!("cannot write telemetry artifacts: {e}");
            std::process::exit(1);
        }
        for path in [&self.metrics_out, &self.trace_out].into_iter().flatten() {
            eprintln!("[telemetry] wrote {}", path.display());
        }
    }

    /// The simulation backend to use: an explicit `--engine` wins;
    /// otherwise the figure binaries default to the flow-level fast path
    /// at every scale — it is what makes the paper-size message sweeps
    /// affordable (quick included, now that quick configs span the
    /// paper's MiB-sized messages), and it is mandatory at `--full`
    /// scale. Pass `--engine packet` for packet-level validation runs;
    /// the cross-validation suite (`tests/flow_vs_packet.rs`) pins the
    /// agreement between the two.
    pub fn engine(&self) -> EngineKind {
        self.engine.unwrap_or(EngineKind::Flow)
    }

    /// These flags as `hxserve` scenario overrides.
    pub fn overrides(&self) -> hxserve::Overrides {
        hxserve::Overrides {
            full: self.full,
            traces: self.traces,
            seed: Some(self.seed),
            engine: self.engine,
        }
    }
}

/// Run an `hxserve` scenario spec the way the figure binaries do: resolve
/// it against the parsed flags, execute (uncached — a figure binary is a
/// from-scratch reproduction by definition), print the table to stdout,
/// and honor `--csv`. Spec errors exit 2: the committed specs are
/// validated by `cargo test -p hxserve`, so an error here means a local
/// edit broke one.
pub fn run_spec(spec_src: &str, args: &HarnessArgs) {
    let scenario = match hxserve::Scenario::parse(spec_src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let plan = scenario.resolve(&args.overrides());
    let result = timed(&format!("{} cells", plan.name), || {
        hxserve::exec::run(&plan, &hxserve::ExecOptions::default())
    });
    print!("{}", hxserve::render::render(&plan, &result.rows));
    if let Some(path) = &args.csv {
        if let Some(csv) = hxserve::render::render_csv(&plan, &result.rows) {
            if let Err(e) = std::fs::write(path, &csv) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("[{}] wrote {}", plan.name, path.display());
        }
    }
    args.write_telemetry();
}

/// Print a section header in the style used by all binaries.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Time a closure and report wall-clock seconds on stderr.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    #[allow(clippy::disallowed_methods)]
    // hxlint: allow(D002) wall-clock benchmark chatter on stderr; simulation results never read it
    let t0 = Instant::now();
    let out = f();
    eprintln!("[{label}] {:.2}s", t0.elapsed().as_secs_f64());
    out
}

/// Human-readable byte size for axes.
pub fn fmt_bytes(b: u64) -> String {
    hxserve::render::fmt_bytes(b)
}
