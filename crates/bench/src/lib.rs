//! Shared plumbing for the per-figure benchmark binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §3 for the index) and prints the same rows/series the paper
//! reports. By default they run at a reduced scale that finishes in
//! seconds; pass `--full` for the paper-scale configuration (hours).

use std::time::Instant;

/// Parsed command line shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Run paper-scale sizes instead of the quick defaults.
    pub full: bool,
    /// Override trace/repetition counts.
    pub traces: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl HarnessArgs {
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut out = Self { full: false, traces: None, seed: 0xC0FFEE };
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--traces" => {
                    out.traces = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    out.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(out.seed);
                }
                "--help" | "-h" => {
                    eprintln!("options: --full  --traces N  --seed S");
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        out
    }
}

/// Print a section header in the style used by all binaries.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Time a closure and report wall-clock seconds on stderr.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    eprintln!("[{label}] {:.2}s", t0.elapsed().as_secs_f64());
    out
}

/// Human-readable byte size for axes.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}
