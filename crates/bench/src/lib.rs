//! Shared plumbing for the per-figure benchmark binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §3 for the index) and prints the same rows/series the paper
//! reports. By default they run at a reduced scale that finishes in
//! seconds; pass `--full` for the paper-scale configuration (hours).

use hammingmesh::hxsim::EngineKind;
use std::time::Instant;

/// Parsed command line shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Run paper-scale sizes instead of the quick defaults.
    pub full: bool,
    /// Override trace/repetition counts.
    pub traces: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Simulation backend override (`--engine packet|flow`).
    pub engine: Option<EngineKind>,
    /// Figure-specific sub-mode (`--mode NAME`); binaries with a single
    /// mode ignore it. `fig10_failures` accepts `board` and `routed`.
    pub mode: Option<String>,
    /// Also write the printed table as CSV to this path (`--csv PATH`).
    pub csv: Option<std::path::PathBuf>,
}

impl HarnessArgs {
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut out = Self {
            full: false,
            traces: None,
            seed: 0xC0FFEE,
            engine: None,
            mode: None,
            csv: None,
        };
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--traces" => {
                    out.traces = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    out.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(out.seed);
                }
                "--mode" => {
                    out.mode = it.next().cloned();
                    if out.mode.is_none() {
                        eprintln!("--mode needs a value");
                        std::process::exit(2);
                    }
                }
                "--csv" => {
                    out.csv = it.next().map(std::path::PathBuf::from);
                    if out.csv.is_none() {
                        eprintln!("--csv needs a path");
                        std::process::exit(2);
                    }
                }
                "--engine" => match it.next().map(|v| v.parse::<EngineKind>()) {
                    Some(Ok(e)) => out.engine = Some(e),
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--engine needs a value (packet|flow)");
                        std::process::exit(2);
                    }
                },
                "--help" | "-h" => {
                    eprintln!(
                        "options: --full  --traces N  --seed S  --engine packet|flow  \
                         --mode NAME  --csv PATH"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
        }
        out
    }

    /// The simulation backend to use: an explicit `--engine` wins;
    /// otherwise the figure binaries default to the flow-level fast path
    /// at every scale — it is what makes the paper-size message sweeps
    /// affordable (quick included, now that quick configs span the
    /// paper's MiB-sized messages), and it is mandatory at `--full`
    /// scale. Pass `--engine packet` for packet-level validation runs;
    /// the cross-validation suite (`tests/flow_vs_packet.rs`) pins the
    /// agreement between the two.
    pub fn engine(&self) -> EngineKind {
        self.engine.unwrap_or(EngineKind::Flow)
    }
}

/// Print a section header in the style used by all binaries.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Time a closure and report wall-clock seconds on stderr.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    #[allow(clippy::disallowed_methods)]
    // hxlint: allow(D002) wall-clock benchmark chatter on stderr; simulation results never read it
    let t0 = Instant::now();
    let out = f();
    eprintln!("[{label}] {:.2}s", t0.elapsed().as_secs_f64());
    out
}

/// Human-readable byte size for axes.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}
