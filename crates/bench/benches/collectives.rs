//! Criterion benchmarks of schedule generation and the logical executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hammingmesh::hxcollect::allreduce::{
    disjoint_rings_allreduce, ring_allreduce, torus2d_allreduce,
};
use hammingmesh::hxcollect::logical::check_allreduce;
use hammingmesh::hxcollect::rings::disjoint_hamiltonian_cycles;

fn bench_schedule_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_gen");
    for p in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("ring", p), &p, |b, &p| {
            b.iter(|| ring_allreduce(p, 4 * p))
        });
        let side = (p as f64).sqrt() as usize;
        g.bench_with_input(BenchmarkId::new("torus2d", p), &p, |b, _| {
            b.iter(|| torus2d_allreduce(side, side, 4 * p, true))
        });
        g.bench_with_input(BenchmarkId::new("disjoint_rings", p), &p, |b, _| {
            b.iter(|| disjoint_rings_allreduce(side, side, 4 * p))
        });
    }
    g.finish();
}

fn bench_hamiltonian_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("hamiltonian");
    for (r, cc) in [(16usize, 8usize), (64, 8), (128, 16)] {
        g.bench_with_input(
            BenchmarkId::new("disjoint", r * cc),
            &(r, cc),
            |b, &(r, cc)| b.iter(|| disjoint_hamiltonian_cycles(r, cc).unwrap()),
        );
    }
    g.finish();
}

fn bench_logical_executor(c: &mut Criterion) {
    c.bench_function("logical_check_ring_32", |b| {
        let s = ring_allreduce(32, 128);
        b.iter(|| check_allreduce(&s).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_schedule_generation, bench_hamiltonian_cycles, bench_logical_executor
}
criterion_main!(benches);
