//! Criterion microbenchmarks of the packet simulator: event rate and
//! end-to-end collective runs on small topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hammingmesh::hxsim::apps::{Alltoall, UniformRandom};
use hammingmesh::prelude::*;

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_alltoall");
    for boards in [2usize, 4] {
        let net = HxMeshParams::square(2, boards).build();
        let n = net.num_ranks();
        g.throughput(Throughput::Elements((n * (n - 1)) as u64));
        g.bench_with_input(BenchmarkId::new("hx2mesh", n), &net, |b, net| {
            b.iter(|| {
                let mut app = Alltoall::new(net.num_ranks(), 16 << 10, 2);
                let stats = Engine::new(net, SimConfig::default()).run(&mut app);
                assert!(stats.clean());
                stats.finish_ps
            })
        });
    }
    g.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    let net = TorusParams {
        cols: 8,
        rows: 8,
        board: 2,
    }
    .build();
    c.bench_function("sim_uniform_random_64", |b| {
        b.iter(|| {
            let mut app = UniformRandom::new(net.num_ranks(), 32 << 10, 4, 1);
            let stats = Engine::new(&net, SimConfig::default()).run(&mut app);
            assert!(stats.clean());
            stats.events
        })
    });
}

fn bench_allreduce_measurement(c: &mut Criterion) {
    let net = HxMeshParams::square(2, 2).build();
    c.bench_function("sim_rings_allreduce_16x1MiB", |b| {
        b.iter(|| {
            let m = experiments::allreduce_bandwidth(&net, AllreduceAlgo::DisjointRings, 1 << 20);
            assert!(m.clean);
            m.time_ps
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_alltoall, bench_event_rate, bench_allreduce_measurement
}
criterion_main!(benches);
