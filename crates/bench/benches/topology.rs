//! Criterion benchmarks of topology construction and routing-table builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hammingmesh::hxnet::route::ZeroLoad;
use hammingmesh::prelude::*;
use rand::SeedableRng;

fn bench_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("build");
    g.bench_function("hx2mesh_16x16", |b| {
        b.iter(|| HxMeshParams::small_hx2().build())
    });
    g.bench_function("hx4mesh_8x8", |b| {
        b.iter(|| HxMeshParams::small_hx4().build())
    });
    g.bench_function("fat_tree_1k", |b| {
        b.iter(|| FatTreeParams::small_nonblocking().build())
    });
    g.bench_function("dragonfly_1k", |b| {
        b.iter(|| DragonflyParams::small().build())
    });
    g.bench_function("torus_1k", |b| b.iter(|| TorusParams::small().build()));
    g.finish();
}

fn bench_routing_walks(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_walk");
    for choice in [
        TopologyChoice::Hx2Mesh,
        TopologyChoice::FatTree,
        TopologyChoice::Torus,
    ] {
        let net = choice.build_scaled(256);
        g.bench_with_input(BenchmarkId::new("pairs", choice.name()), &net, |b, net| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| {
                use rand::Rng;
                let n = net.num_ranks();
                let (s, d) = (rng.random_range(0..n), (rng.random_range(1..n)));
                let (mut node, dst) = (net.endpoints[s], net.endpoints[(s + d) % n]);
                let mut vc = 0u8;
                let mut hops = 0u32;
                let mut cand = Vec::new();
                while node != dst && hops < 64 {
                    cand.clear();
                    net.router.candidates(&net.topo, node, vc, dst, &mut cand);
                    let h = cand[0];
                    node = net.topo.peer(node, h.port).node;
                    vc = h.vc;
                    hops += 1;
                }
                hops
            })
        });
    }
    g.finish();
}

fn bench_waypoint_selection(c: &mut Criterion) {
    let net = HxMeshParams::small_hx2().build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    c.bench_function("hxmesh_waypoint", |b| {
        b.iter(|| {
            net.router.select_waypoint(
                &net.topo,
                net.endpoints[0],
                net.endpoints[1023],
                &ZeroLoad,
                &mut rng,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_builders, bench_routing_walks, bench_waypoint_selection
}
criterion_main!(benches);
