//! Criterion benchmarks of the §IV-A greedy allocator: single placements
//! and whole job-mix traces (the paper's "1,000x1,000 HxMesh in under a
//! second" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hammingmesh::hxalloc::experiments::{allocate_mix, fig8_strategies};
use hammingmesh::hxalloc::workload::{JobMix, JobSizeDistribution};
use hammingmesh::prelude::*;

fn bench_single_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_single");
    for side in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::new("16x16_job", side), &side, |b, &side| {
            b.iter(|| {
                let mut mesh = BoardMesh::new(side, side);
                mesh.allocate(1, 16.min(side), 16.min(side), Heuristics::all())
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_trace(c: &mut Criterion) {
    let strat = fig8_strategies()[4]; // greedy+transpose+aspect+sort
    let mut g = c.benchmark_group("alloc_trace");
    for side in [16usize, 32] {
        let dist = JobSizeDistribution::for_cluster(side * side);
        let mix = JobMix::draw(&dist, side * side, 42);
        g.bench_with_input(BenchmarkId::new("full_mix", side), &mix, |b, mix| {
            b.iter(|| {
                let mut mesh = BoardMesh::new(side, side);
                allocate_mix(&mut mesh, mix, strat)
            })
        });
    }
    g.finish();
}

/// The paper's scalability claim: a 1,000x1,000 HxMesh allocates "in less
/// than one second"; we benchmark one large job on that mesh.
fn bench_paper_scale(c: &mut Criterion) {
    c.bench_function("alloc_1000x1000_single", |b| {
        b.iter(|| {
            let mut mesh = BoardMesh::new(1000, 1000);
            mesh.allocate(1, 100, 100, Heuristics::none()).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10);
    targets = bench_single_alloc, bench_trace, bench_paper_scale
}
criterion_main!(benches);
