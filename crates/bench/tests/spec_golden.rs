//! Byte-identical goldens for the spec-driven figure binaries.
//!
//! The stdout (and CSV, where the binary writes one) of every converted
//! binary was captured at the default seed *before* the hxserve redesign
//! and committed under `tests/golden/`. The conversion to declarative
//! scenario specs must not change a single byte of figure output — this
//! suite is the proof, and it keeps holding as the spec files and the
//! renderer evolve. Regenerate a golden only when a figure is *meant* to
//! change, and say so in the commit.

use std::path::Path;
use std::process::Command;

fn golden(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
}

/// Run `exe` with `args` (plus `--csv` when requested); return stdout and
/// the CSV body.
fn run(exe: &str, args: &[&str], csv: bool) -> (String, Option<String>) {
    let csv_path = std::env::temp_dir().join(format!(
        "hx_golden_{}_{}.csv",
        std::process::id(),
        Path::new(exe).file_name().unwrap().to_string_lossy()
    ));
    let mut cmd = Command::new(exe);
    cmd.args(args);
    if csv {
        cmd.args(["--csv", csv_path.to_str().unwrap()]);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );
    let body = csv.then(|| {
        let b = std::fs::read_to_string(&csv_path).expect("CSV written");
        std::fs::remove_file(&csv_path).ok();
        b
    });
    (
        String::from_utf8(out.stdout).expect("stdout is UTF-8"),
        body,
    )
}

fn assert_matches_golden(exe: &str, args: &[&str], stdout_golden: &str, csv_golden: Option<&str>) {
    let (stdout, csv) = run(exe, args, csv_golden.is_some());
    assert_eq!(
        stdout,
        golden(stdout_golden),
        "{exe} {args:?}: stdout drifted from {stdout_golden}"
    );
    if let Some(name) = csv_golden {
        assert_eq!(
            csv.unwrap(),
            golden(name),
            "{exe} {args:?}: CSV drifted from {name}"
        );
    }
}

#[test]
fn fig11_stdout_matches_pre_redesign_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig11_alltoall"),
        &[],
        "fig11.stdout",
        None,
    );
}

#[test]
fn fig12_stdout_matches_pre_redesign_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig12_permutation"),
        &[],
        "fig12.stdout",
        None,
    );
}

#[test]
fn fig13_stdout_matches_pre_redesign_golden() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig13_allreduce"),
        &[],
        "fig13.stdout",
        None,
    );
}

#[test]
fn fig14_stdout_and_csv_match_pre_redesign_goldens() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig14_reduction_scaling"),
        &[],
        "fig14.stdout",
        Some("fig14.csv"),
    );
}

#[test]
fn fig10_midrun_stdout_and_csv_match_goldens() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig10_midrun"),
        &[],
        "fig10_midrun.stdout",
        Some("fig10_midrun.csv"),
    );
}

#[test]
fn fig10_routed_stdout_and_csv_match_pre_redesign_goldens() {
    assert_matches_golden(
        env!("CARGO_BIN_EXE_fig10_failures"),
        &["--mode", "routed", "--traces", "2", "--engine", "flow"],
        "fig10_routed.stdout",
        Some("fig10_routed.csv"),
    );
}
