//! Smoke test: every figure binary must run to completion at quick scale.
//!
//! Each binary is invoked with `--traces 1` (one trace / repetition, quick
//! default sizes) and must exit 0. This keeps the figure harness from
//! silently rotting: a binary that panics, deadlocks in the simulator, or
//! drifts out of sync with a library API fails this suite.

use std::process::Command;

/// Run one compiled figure binary and assert a clean exit.
fn run_quick(exe: &str) {
    let out = Command::new(exe)
        .args(["--traces", "1"])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

macro_rules! smoke {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            run_quick(env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
        }
    )*};
}

smoke!(
    fig7_workload_cdf,
    fig8_utilization,
    fig9_upper_traffic,
    fig10_failures,
    fig11_alltoall,
    fig12_permutation,
    fig13_allreduce,
    fig15_dnn_savings,
    fig16_disjoint_rings,
    table2,
    ablations,
    dnn_iteration_times,
);

/// The routed cable-failure sweep (`fig10_failures --mode routed`) must
/// complete at quick scale on the flow engine — all five topologies
/// deliver their traffic around the failed cables — and emit its CSV.
#[test]
fn fig10_failures_routed() {
    let csv = std::env::temp_dir().join(format!("hx_fig10_routed_{}.csv", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_fig10_failures"))
        .args(["--traces", "1", "--mode", "routed", "--engine", "flow"])
        .args(["--csv", csv.to_str().unwrap()])
        .output()
        .expect("spawn fig10_failures");
    assert!(
        out.status.success(),
        "fig10_failures --mode routed exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let body = std::fs::read_to_string(&csv).expect("routed-mode CSV written");
    assert!(body.starts_with("topology,engine,failed_cables,draw,bw_fraction,sim_ps,clean"));
    // 5 topologies x 5 sweep points x 1 draw, all delivered cleanly.
    assert_eq!(body.lines().count(), 1 + 5 * 5, "{body}");
    assert!(body.lines().skip(1).all(|l| l.ends_with(",true")), "{body}");
    std::fs::remove_file(&csv).ok();
}

/// The CI perf-smoke harness must run and emit its three artifacts.
#[test]
fn perf_smoke() {
    let dir = std::env::temp_dir().join(format!("hx_perf_smoke_{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_perf_smoke"))
        .args(["--quick", "--out", dir.to_str().unwrap()])
        .output()
        .expect("spawn perf_smoke");
    assert!(
        out.status.success(),
        "perf_smoke exited with {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [
        "BENCH_sim.json",
        "fig11_alltoall.csv",
        "fig13_allreduce.csv",
    ] {
        let p = dir.join(f);
        assert!(p.exists(), "missing artifact {}", p.display());
    }
    let json = std::fs::read_to_string(dir.join("BENCH_sim.json")).unwrap();
    assert!(json.contains("\"fig11_alltoall\"") && json.contains("\"wall_speedup\""));
    std::fs::remove_dir_all(&dir).ok();
}
