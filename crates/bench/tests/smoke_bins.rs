//! Smoke test: every figure binary must run to completion at quick scale.
//!
//! Each binary is invoked with `--traces 1` (one trace / repetition, quick
//! default sizes) and must exit 0. This keeps the figure harness from
//! silently rotting: a binary that panics, deadlocks in the simulator, or
//! drifts out of sync with a library API fails this suite.

use std::process::Command;

/// Run one compiled figure binary and assert a clean exit.
fn run_quick(exe: &str) {
    let out = Command::new(exe)
        .args(["--traces", "1"])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

macro_rules! smoke {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            run_quick(env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
        }
    )*};
}

smoke!(
    fig7_workload_cdf,
    fig8_utilization,
    fig9_upper_traffic,
    fig10_failures,
    fig11_alltoall,
    fig12_permutation,
    fig13_allreduce,
    fig15_dnn_savings,
    fig16_disjoint_rings,
    table2,
    ablations,
    dnn_iteration_times,
);
