//! Smoke test: every figure binary must run to completion at quick scale.
//!
//! Each binary is invoked with `--traces 1` (one trace / repetition, quick
//! default sizes) and must exit 0. This keeps the figure harness from
//! silently rotting: a binary that panics, deadlocks in the simulator, or
//! drifts out of sync with a library API fails this suite.

use std::process::Command;

/// Run one compiled figure binary and assert a clean exit.
fn run_quick(exe: &str) {
    let out = Command::new(exe)
        .args(["--traces", "1"])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

macro_rules! smoke {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            run_quick(env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
        }
    )*};
}

smoke!(
    fig7_workload_cdf,
    fig8_utilization,
    fig9_upper_traffic,
    fig10_failures,
    fig11_alltoall,
    fig12_permutation,
    fig13_allreduce,
    fig14_reduction_scaling,
    fig15_dnn_savings,
    fig16_disjoint_rings,
    table2,
    ablations,
    dnn_iteration_times,
    cluster_sweep,
);

/// The routed cable-failure sweep (`fig10_failures --mode routed`) must
/// complete at quick scale on the flow engine — all five topologies
/// deliver their traffic around the failed cables — and emit its CSV.
#[test]
fn fig10_failures_routed() {
    let csv = std::env::temp_dir().join(format!("hx_fig10_routed_{}.csv", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_fig10_failures"))
        .args(["--traces", "1", "--mode", "routed", "--engine", "flow"])
        .args(["--csv", csv.to_str().unwrap()])
        .output()
        .expect("spawn fig10_failures");
    assert!(
        out.status.success(),
        "fig10_failures --mode routed exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let body = std::fs::read_to_string(&csv).expect("routed-mode CSV written");
    assert!(body.starts_with("topology,engine,failed_cables,draw,bw_fraction,sim_ps,clean"));
    // 5 topologies x 5 sweep points x 1 draw, all delivered cleanly.
    assert_eq!(body.lines().count(), 1 + 5 * 5, "{body}");
    assert!(body.lines().skip(1).all(|l| l.ends_with(",true")), "{body}");
    std::fs::remove_file(&csv).ok();
}

/// The cluster-lifetime sweep at quick scale: 64 boards, mid-run cable
/// fail + repair events at every load point, per-job wait/completion rows
/// and time-averaged fragmentation in the CSV — and the whole CSV is
/// byte-for-byte reproducible for a fixed seed.
#[test]
fn cluster_sweep_csv_is_complete_and_deterministic() {
    let run = |tag: &str| {
        let csv =
            std::env::temp_dir().join(format!("hx_cluster_sweep_{}_{tag}.csv", std::process::id()));
        let out = Command::new(env!("CARGO_BIN_EXE_cluster_sweep"))
            .args(["--traces", "12", "--seed", "12648430"])
            .args(["--csv", csv.to_str().unwrap()])
            .output()
            .expect("spawn cluster_sweep");
        assert!(
            out.status.success(),
            "cluster_sweep exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        let body = std::fs::read_to_string(&csv).expect("cluster_sweep CSV written");
        std::fs::remove_file(&csv).ok();
        body
    };

    let body = run("a");
    let header = body.lines().next().unwrap();
    for col in ["wait_ps", "jct_ps", "frag_avg", "fails", "repairs"] {
        assert!(header.contains(col), "missing column {col}: {header}");
    }
    // Three load points, each with one summary row; every load saw at
    // least one mid-run fail AND repair event (columns 16/17).
    let summaries: Vec<&str> = body.lines().filter(|l| l.starts_with("summary,")).collect();
    assert_eq!(summaries.len(), 3, "{body}");
    for s in &summaries {
        let f: Vec<&str> = s.split(',').collect();
        let fails: u32 = f[15].parse().unwrap();
        let repairs: u32 = f[16].parse().unwrap();
        assert!(fails >= 1, "no mid-run failure: {s}");
        assert!(repairs >= 1, "no mid-run repair: {s}");
    }
    // Per-job rows carry wait + completion times.
    let jobs = body.lines().filter(|l| l.starts_with("job,")).count();
    assert_eq!(
        jobs + body.lines().filter(|l| l.starts_with("rejected,")).count(),
        3 * 12
    );

    assert_eq!(body, run("b"), "same seed must reproduce the CSV exactly");
}

/// The CI perf-smoke harness must run and emit its three artifacts.
#[test]
fn perf_smoke() {
    let dir = std::env::temp_dir().join(format!("hx_perf_smoke_{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_perf_smoke"))
        .args(["--quick", "--out", dir.to_str().unwrap()])
        .output()
        .expect("spawn perf_smoke");
    assert!(
        out.status.success(),
        "perf_smoke exited with {:?}\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [
        "BENCH_sim.json",
        "fig11_alltoall.csv",
        "fig13_allreduce.csv",
    ] {
        let p = dir.join(f);
        assert!(p.exists(), "missing artifact {}", p.display());
    }
    let json = std::fs::read_to_string(dir.join("BENCH_sim.json")).unwrap();
    assert!(json.contains("\"fig11_alltoall\"") && json.contains("\"wall_speedup\""));
    std::fs::remove_dir_all(&dir).ok();
}
