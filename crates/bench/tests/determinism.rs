//! Thread-count determinism suite for the parallel sweep drivers.
//!
//! The vendored rayon thread pool promises **index-ordered collection**:
//! the results of a parallel sweep are byte-identical to sequential
//! execution at any thread count. These tests hold the headline drivers
//! to that promise end to end — each binary runs under
//! `RAYON_NUM_THREADS=1` and `=4` and the captured stdout (and CSV file,
//! where the binary writes one) must match byte for byte. Wall-clock
//! chatter goes to stderr, which is deliberately not compared.
//!
//! Panic propagation through the pool (a worker panic must fail the
//! caller, with every input item dropped exactly once) is pinned by the
//! shim's own tests in `vendor/rayon`.

use hxtelemetry::validate_chrome_trace;
use std::process::Command;

/// Run `exe` with `args` under the given thread count; returns (stdout,
/// CSV contents if `csv_args` requested one).
fn run(exe: &str, args: &[&str], threads: u32, csv: bool) -> (Vec<u8>, Option<String>) {
    let csv_path = std::env::temp_dir().join(format!(
        "hx_det_{}_{threads}_{}.csv",
        std::process::id(),
        std::path::Path::new(exe)
            .file_name()
            .unwrap()
            .to_string_lossy()
    ));
    let mut cmd = Command::new(exe);
    cmd.args(args).env("RAYON_NUM_THREADS", threads.to_string());
    if csv {
        cmd.args(["--csv", csv_path.to_str().unwrap()]);
    }
    let out = cmd
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} with {threads} thread(s) exited with {:?}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );
    let body = csv.then(|| {
        let b = std::fs::read_to_string(&csv_path).expect("CSV written");
        std::fs::remove_file(&csv_path).ok();
        b
    });
    (out.stdout, body)
}

/// Assert a binary produces byte-identical stdout (and CSV) at 1 vs 4
/// threads.
fn assert_thread_count_invariant(exe: &str, args: &[&str], csv: bool) {
    let (out1, csv1) = run(exe, args, 1, csv);
    let (out4, csv4) = run(exe, args, 4, csv);
    assert!(
        out1 == out4,
        "{exe}: stdout differs between 1 and 4 threads\n--- 1 thread ---\n{}\n--- 4 threads ---\n{}",
        String::from_utf8_lossy(&out1),
        String::from_utf8_lossy(&out4),
    );
    assert_eq!(csv1, csv4, "{exe}: CSV differs between 1 and 4 threads");
    // Guard against trivially-empty comparisons.
    assert!(!out1.is_empty(), "{exe} printed nothing");
}

/// Fig. 8's Monte-Carlo utilization sweep: the `into_par_iter` trace loop
/// in `hxalloc::experiments` must aggregate identically at any thread
/// count (the printed table is all that binary emits on stdout).
#[test]
fn fig8_utilization_is_thread_count_invariant() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_fig8_utilization"),
        &["--traces", "40"],
        false,
    );
}

/// The cluster-lifetime sweep: three load levels simulated in parallel,
/// with per-load output buffered and emitted in load order — stdout rows
/// and the per-job/summary CSV must not depend on completion order.
#[test]
fn cluster_sweep_is_thread_count_invariant() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_cluster_sweep"),
        &["--traces", "8", "--seed", "12648430"],
        true,
    );
}

/// The routed cable-failure sweep: every (topology, failures, engine,
/// draw) cell simulates independently on the pool; the table and the
/// per-draw CSV reassemble in grid order.
#[test]
fn fig10_routed_is_thread_count_invariant() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_fig10_failures"),
        &["--mode", "routed", "--traces", "2", "--engine", "flow"],
        true,
    );
}

/// The frozen-vs-mid-flight failure comparison: every cell runs a
/// mid-run [`FailureSchedule`] through one of the engines (flow re-route
/// and re-rate, packet drop and retransmit), and the whole recovery
/// machinery must still collect in grid order at any thread count. The
/// rate-solver leg extends the differential suite's bitwise claim to the
/// mid-run epoch path: re-rating flows around in-run link events with the
/// O(affected) incremental solver must not change a byte of the table or
/// the per-draw CSV relative to the full solver.
#[test]
fn fig10_midrun_is_thread_and_rate_solver_invariant() {
    let exe = env!("CARGO_BIN_EXE_fig10_midrun");
    assert_thread_count_invariant(exe, &["--rates", "incremental"], true);
    let (inc, csv_inc) = run(exe, &["--rates", "incremental"], 1, true);
    let (full, csv_full) = run(exe, &["--rates", "full"], 1, true);
    assert!(
        inc == full,
        "fig10_midrun: stdout differs between --rates incremental and --rates full\n\
         --- incremental ---\n{}\n--- full ---\n{}",
        String::from_utf8_lossy(&inc),
        String::from_utf8_lossy(&full),
    );
    assert_eq!(
        csv_inc, csv_full,
        "fig10_midrun: CSV differs between --rates incremental and --rates full"
    );
}

/// Fig. 11's (topology x message-size) alltoall grid: independent cells
/// on the pool, table reassembled in grid order. No CSV on this binary —
/// the printed table is the entire artifact.
#[test]
fn fig11_alltoall_is_thread_count_invariant() {
    assert_thread_count_invariant(env!("CARGO_BIN_EXE_fig11_alltoall"), &[], false);
}

/// Fig. 12's permutation distribution: one seeded permutation run per
/// topology in parallel; the percentile rows (and the float sums behind
/// the mean column) must not depend on completion order.
#[test]
fn fig12_permutation_is_thread_count_invariant() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_fig12_permutation"),
        &["--seed", "3735928559"],
        false,
    );
}

/// Fig. 13's (algorithm x topology x size) allreduce grid, the paper's
/// headline collective result.
#[test]
fn fig13_allreduce_is_thread_count_invariant() {
    assert_thread_count_invariant(env!("CARGO_BIN_EXE_fig13_allreduce"), &[], false);
}

/// The incremental max-min solver through the full driver stack: fig11
/// under `--rates incremental` must be thread-count invariant like every
/// other sweep, and — the differential suite's bitwise-equivalence claim,
/// held end to end at the stdout level — switching the solver to
/// `--rates full` must not change a single byte of the printed table.
#[test]
fn fig11_alltoall_is_rate_solver_invariant() {
    let exe = env!("CARGO_BIN_EXE_fig11_alltoall");
    assert_thread_count_invariant(exe, &["--rates", "incremental"], false);
    let (inc, _) = run(exe, &["--rates", "incremental"], 1, false);
    let (full, _) = run(exe, &["--rates", "full"], 1, false);
    assert!(
        inc == full,
        "fig11: stdout differs between --rates incremental and --rates full\n\
         --- incremental ---\n{}\n--- full ---\n{}",
        String::from_utf8_lossy(&inc),
        String::from_utf8_lossy(&full),
    );
}

/// Same two properties for fig13, the headline allreduce grid.
#[test]
fn fig13_allreduce_is_rate_solver_invariant() {
    let exe = env!("CARGO_BIN_EXE_fig13_allreduce");
    assert_thread_count_invariant(exe, &["--rates", "incremental"], false);
    let (inc, _) = run(exe, &["--rates", "incremental"], 1, false);
    let (full, _) = run(exe, &["--rates", "full"], 1, false);
    assert!(
        inc == full,
        "fig13: stdout differs between --rates incremental and --rates full",
    );
}

/// Run `exe` with `--metrics-out`/`--trace-out` under the given thread
/// count and rate-solver mode; returns the two artifact documents.
fn run_telemetry(exe: &str, args: &[&str], threads: u32, rates: &str) -> (String, String) {
    let stem = format!(
        "hx_tel_{}_{threads}_{rates}_{}",
        std::process::id(),
        std::path::Path::new(exe)
            .file_name()
            .unwrap()
            .to_string_lossy()
    );
    let metrics_path = std::env::temp_dir().join(format!("{stem}.metrics.json"));
    let trace_path = std::env::temp_dir().join(format!("{stem}.trace.json"));
    let out = Command::new(exe)
        .args(args)
        .args(["--rates", rates])
        .args(["--metrics-out", metrics_path.to_str().unwrap()])
        .args(["--trace-out", trace_path.to_str().unwrap()])
        .env("RAYON_NUM_THREADS", threads.to_string())
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} with {threads} thread(s), --rates {rates} exited with {:?}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics artifact written");
    let trace = std::fs::read_to_string(&trace_path).expect("trace artifact written");
    std::fs::remove_file(&metrics_path).ok();
    std::fs::remove_file(&trace_path).ok();
    (metrics, trace)
}

/// Assert `--metrics-out`/`--trace-out` artifacts are byte-identical at
/// 1 vs 4 threads AND under `--rates full` vs `incremental`, and that the
/// trace parses as Chrome trace-event JSON with events in it.
fn assert_telemetry_invariant(exe: &str, args: &[&str]) {
    let (m1, t1) = run_telemetry(exe, args, 1, "incremental");
    let (m4, t4) = run_telemetry(exe, args, 4, "incremental");
    assert!(
        m1 == m4,
        "{exe}: metrics artifact differs between 1 and 4 threads"
    );
    assert!(
        t1 == t4,
        "{exe}: trace artifact differs between 1 and 4 threads"
    );
    let (mf, tf) = run_telemetry(exe, args, 4, "full");
    assert!(
        m1 == mf,
        "{exe}: metrics artifact differs between --rates incremental and full"
    );
    assert!(
        t1 == tf,
        "{exe}: trace artifact differs between --rates incremental and full"
    );
    let events = validate_chrome_trace(&t1)
        .unwrap_or_else(|e| panic!("{exe}: trace artifact is not valid Chrome trace JSON: {e}"));
    assert!(events > 0, "{exe}: trace artifact holds no events");
    assert!(
        m1.contains("\"counters\""),
        "{exe}: metrics artifact holds no registry"
    );
}

/// The telemetry tentpole's determinism claim, held end to end for the
/// fig11 sweep: metrics and trace artifacts are byte-identical at any
/// thread count and under either max-min solver scope, and the trace
/// loads as Chrome trace-event JSON.
#[test]
fn fig11_telemetry_artifacts_are_thread_and_solver_invariant() {
    assert_telemetry_invariant(env!("CARGO_BIN_EXE_fig11_alltoall"), &[]);
}

/// Same artifact pins for the cluster-lifetime sweep, whose load points
/// run concurrently and nest engine runs inside the cluster event loop.
#[test]
fn cluster_sweep_telemetry_artifacts_are_thread_and_solver_invariant() {
    assert_telemetry_invariant(
        env!("CARGO_BIN_EXE_cluster_sweep"),
        &["--traces", "8", "--seed", "12648430"],
    );
}

/// The reduction-scaling grid (algorithm x topology; `--traces 1` caps
/// the sweep at the 64-endpoint cluster size so the debug-profile run
/// stays a smoke test — the grid indexing under test is identical).
#[test]
fn fig14_grid_is_thread_count_invariant() {
    assert_thread_count_invariant(
        env!("CARGO_BIN_EXE_fig14_reduction_scaling"),
        &["--traces", "1"],
        true,
    );
}
