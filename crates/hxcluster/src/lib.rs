//! # hxcluster — cluster-lifetime simulation over an HxMesh
//!
//! The top layer of the reproduction: where `hxalloc` packs one static job
//! mix and `hxsim` times one collective, this crate simulates a *cluster's
//! life*: jobs arrive over (simulated) hours, queue, get placed, train for
//! many iterations, and depart, while cables fail and are repaired **mid
//! run** — the time-varying failure model the static layers cannot
//! express. The architecture follows the host/scheduler split of
//! discrete-event cluster frameworks (DSLab): a deterministic event queue
//! drives a scheduler (FIFO + backfill + optional defragmentation) against
//! a placement substrate ([`hxalloc::BoardMesh`]) and a rate oracle (the
//! [`hxsim`] engines replaying each job's [`hxcollect`] schedule on its
//! virtual sub-HxMesh).
//!
//! What it models:
//! * job wait time, completion time, and their distributions,
//! * allocation fragmentation and utilization as *time averages*,
//! * cluster-wide link utilization from per-iteration busy time,
//! * graceful degradation: a failure epoch advancing mid-run re-rates
//!   every in-flight job on the degraded network (and a repair re-rates
//!   them back), with iteration times memoized per failure set.
//!
//! What it deliberately does **not** model: inter-job network
//! interference (exact for healthy HxMesh by the paper's §IV-A
//! no-interference property; approximate while failover detours are
//! active), checkpoint/restart cost of defragmentation (the paper argues
//! sub-second), board-level failures (covered by the static Fig. 10
//! sweeps), and preemption or priorities.
//!
//! ```
//! use hxcluster::{ClusterConfig, ClusterSim};
//!
//! let mut cfg = ClusterConfig::quick();
//! cfg.num_jobs = 6;
//! cfg.mean_fail_interval_ps = Some(20_000_000_000); // churn every ~20 ms
//! let report = ClusterSim::new(cfg).run();
//! assert_eq!(report.jobs.len(), 6);
//! assert!(report.makespan_ps > 0);
//! ```

pub mod events;
pub mod job;
pub mod metrics;
pub mod sim;

pub use job::JobSpec;
pub use metrics::{ClusterReport, JobRecord};
pub use sim::{iteration_ps, ClusterConfig, ClusterSim};
